//! Differential test for the two execution modes (ISSUE 6): the pipelined
//! layout (dedicated enrichment pool behind a PUSH/PULL hop) and the
//! run-to-completion layout (inline enrichment on each RX lcore, private
//! record logs rotated into the tsdb on a virtual-time interval) must be
//! observationally equivalent.
//!
//! Same seeded world + traffic in both modes ⇒
//!   * identical multiset of enriched line-protocol records on the PUB
//!     socket (sorted-vector comparison),
//!   * identical measurement counts and enrichment counters,
//!   * the counter-conservation invariants hold in each mode on its own
//!     (`points_ingested == measurements + telemetry_points`,
//!     `dp_records_out == enrich_enriched == tracker measurements`,
//!     detector in == out).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ruru_gen::{GenConfig, TrafficGen};
use ruru_nic::{PortConfig, Timestamp};
use ruru_pipeline::engine::Report;
use ruru_pipeline::{ExecutionMode, Pipeline, PipelineConfig};

fn config(mode: ExecutionMode) -> PipelineConfig {
    PipelineConfig {
        mode,
        port: PortConfig {
            num_queues: 4,
            queue_depth: 8192,
            pool_size: 16384,
            buf_size: 2048,
            symmetric_rss: true,
        },
        // 0 = auto-size to one enricher per RX queue (satellite 1); in
        // run-to-completion mode the field is ignored entirely.
        enrich_threads: 0,
        ..PipelineConfig::default()
    }
}

/// Run one full pipeline in `mode` over the deterministic synthetic world
/// and seeded traffic, returning the sorted PUB line multiset, the run
/// report and the generator's ground-truth count.
fn run_mode(mode: ExecutionMode) -> (Vec<String>, Report, u64) {
    let (mut pipeline, world) = Pipeline::with_synth_world(config(mode));
    // Subscribe before the run so both modes publish every record (the
    // run-to-completion worker skips line encoding with no subscribers).
    let sub = pipeline.subscribe_enriched(1 << 20);
    let mut gen = TrafficGen::with_world(
        GenConfig {
            seed: 77,
            flows_per_sec: 400.0,
            duration: Timestamp::from_secs(2),
            data_exchanges: (0, 2),
            ..GenConfig::default()
        },
        world,
    );
    pipeline.run(&mut gen);
    let truths = gen.truths().len() as u64;
    let report = pipeline.finish();

    let mut lines = Vec::new();
    while let Some(msg) = sub.try_recv() {
        lines.push(String::from_utf8(msg.payload.to_vec()).expect("utf8 line"));
    }
    lines.sort_unstable();
    (lines, report, truths)
}

/// The invariants each mode must satisfy independently.
fn assert_conservation(report: &Report, truths: u64, mode: &str) {
    assert_eq!(report.measurements(), truths, "{mode}: all flows measured");
    assert_eq!(report.pool.enriched, truths, "{mode}: all enriched");
    assert_eq!(report.pool.geo_misses, 0, "{mode}: clean world, no misses");
    assert_eq!(report.pool.decode_errors, 0, "{mode}");
    assert_eq!(report.dataplane.records_out, truths, "{mode}");
    // Every manifest identity, evaluated against the final snapshot. A
    // torn snapshot fails first, loudly, with the skipped shard ids.
    let violations = ruru_pipeline::conservation::check(
        &report.telemetry,
        &[
            ("tsdb_points_ingested", report.tsdb.points_ingested()),
            ("telemetry_points", report.telemetry_points),
        ],
    );
    assert!(
        violations.is_empty(),
        "{mode}: conservation violated:\n  {}",
        violations.join("\n  ")
    );
    // The identities prove internal consistency; anchor one stage to the
    // generator's ground truth so "consistently zero" cannot pass.
    let t = &report.telemetry;
    assert_eq!(t.counter("dp_records_out"), truths, "{mode}");
}

#[test]
fn pipelined_and_run_to_completion_are_equivalent() {
    let (lines_p, report_p, truths_p) = run_mode(ExecutionMode::Pipelined);
    let (lines_r, report_r, truths_r) = run_mode(ExecutionMode::RunToCompletion);

    // Same deterministic world + seed ⇒ same ground truth.
    assert_eq!(truths_p, truths_r, "generator is deterministic");
    assert!(truths_p > 100, "scenario is non-trivial: {truths_p}");

    assert_conservation(&report_p, truths_p, "pipelined");
    assert_conservation(&report_r, truths_r, "run-to-completion");

    // The tentpole equivalence: both modes publish the exact same multiset
    // of enriched records, independent of stage layout and scheduling.
    assert_eq!(lines_p.len() as u64, truths_p, "pipelined published all");
    assert_eq!(lines_r.len() as u64, truths_r, "rtc published all");
    assert_eq!(lines_p, lines_r, "identical enriched record multisets");

    // The sharded-ingest merge reconstructs the same measurement series
    // the shared-writer path produced.
    assert_eq!(
        report_p.tsdb.points_ingested() - report_p.telemetry_points,
        report_r.tsdb.points_ingested() - report_r.telemetry_points,
        "same measurement point count in both tsdbs"
    );
}

/// Satellite to the striped-ingest rework: mid-run record-log rotation.
/// With a rotation interval far below the run length, the lcores fold
/// their logs into the store many times while the run is live — and the
/// merge accounting must still balance exactly:
/// `points_ingested == measurements + telemetry_points`, with every
/// measurement arriving via a counted `tsdb_merge_points` merge.
#[test]
#[allow(clippy::disallowed_methods)] // sanctioned: bounded wall-clock poll deadline on the test side of an async drain; dataplane timing stays on the injected Clock
fn rtc_rotation_conserves_points_across_mid_run_merges() {
    let mut cfg = config(ExecutionMode::RunToCompletion);
    // ~20 rotations per worker over the 2 s run.
    cfg.tsdb_rotation_ns = 100_000_000;
    let (mut pipeline, world) = Pipeline::with_synth_world(cfg);
    let mut gen = TrafficGen::with_world(
        GenConfig {
            seed: 77,
            flows_per_sec: 400.0,
            duration: Timestamp::from_secs(2),
            data_exchanges: (0, 2),
            ..GenConfig::default()
        },
        world,
    );
    pipeline.run(&mut gen);
    let truths = gen.truths().len() as u64;

    // Witness that rotation really happened mid-run: the merge counter
    // must go positive while workers are still alive (before `finish`
    // triggers the exit rotations). Workers drain asynchronously, so poll
    // with a bounded wait.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let registry = std::sync::Arc::clone(pipeline.self_metrics().registry());
    let mut merged_mid_run = 0;
    while std::time::Instant::now() < deadline {
        merged_mid_run = registry.snapshot(0).counter("tsdb_merge_points");
        if merged_mid_run > 0 {
            break;
        }
        std::thread::yield_now();
    }
    assert!(merged_mid_run > 0, "no mid-run rotation ever merged");

    let report = pipeline.finish();
    assert_eq!(report.measurements(), truths);
    assert!(truths > 100, "scenario is non-trivial: {truths}");
    // Exact conservation across all rotations + exit rotations.
    assert_eq!(
        report.tsdb.points_ingested(),
        truths + report.telemetry_points,
        "rotation lost or duplicated points"
    );
    assert_eq!(report.pool.tsdb_merged, truths, "every measurement merged");
    assert_eq!(report.telemetry.counter("tsdb_merge_points"), truths);
    let violations = ruru_pipeline::conservation::check(
        &report.telemetry,
        &[
            ("tsdb_points_ingested", report.tsdb.points_ingested()),
            ("telemetry_points", report.telemetry_points),
        ],
    );
    assert!(violations.is_empty(), "{}", violations.join("\n"));
}
