//! Property tests for the frontend geometry and encodings.

use proptest::prelude::*;
use ruru_viz::arc::tessellate;
use ruru_viz::color::LatencyScale;
use ruru_viz::json::JsonWriter;
use ruru_viz::ws;

proptest! {
    /// Arc tessellation stays inside valid geographic coordinates, starts
    /// and ends on the endpoints, and keeps altitude non-negative — for any
    /// endpoint pair on the globe.
    #[test]
    fn arcs_are_geometrically_sane(lat1 in -89.0f32..89.0, lon1 in -180.0f32..180.0,
                                   lat2 in -89.0f32..89.0, lon2 in -180.0f32..180.0,
                                   latency in 0.0f64..10_000.0,
                                   segments in 1usize..64) {
        let arc = tessellate((lat1, lon1), (lat2, lon2), latency, segments, &LatencyScale::default());
        prop_assert_eq!(arc.points.len(), segments + 1);
        for &(lat, lon, alt) in &arc.points {
            prop_assert!((-90.0..=90.0).contains(&lat), "lat {lat}");
            prop_assert!((-180.0..=180.0).contains(&lon), "lon {lon}");
            prop_assert!(alt >= -1e-3, "altitude {alt}");
            prop_assert!(alt <= 1200.5, "altitude {alt}");
        }
        let first = arc.points[0];
        let last = arc.points[segments];
        prop_assert!((first.0 - lat1).abs() < 1e-2);
        prop_assert!((last.0 - lat2).abs() < 1e-2);
    }

    /// The colour scale is total (no panics) and yields full alpha.
    #[test]
    fn color_scale_total(ms in -1.0e6f64..1.0e9) {
        let c = LatencyScale::default().color(ms);
        prop_assert_eq!(c.a, 0xff);
        prop_assert_eq!(c.to_hex().len(), 9);
    }

    /// JSON string values always escape to parseable, quote-balanced text.
    #[test]
    fn json_strings_always_balanced(s in "\\PC*") {
        let mut w = JsonWriter::new();
        w.begin_object().key("k").string(&s).end_object();
        let doc = w.finish();
        let starts = doc.starts_with("{\"k\":\"");
        prop_assert!(starts, "bad prefix: {doc}");
        let ends = doc.ends_with("\"}");
        prop_assert!(ends, "bad suffix: {doc}");
        // No raw control characters survive.
        prop_assert!(!doc.chars().any(|c| (c as u32) < 0x20));
    }

    /// Fixed-point numbers round-trip to within half an ulp of the scale.
    #[test]
    fn json_fixed_accuracy(v in -1.0e9f64..1.0e9, decimals in 0u32..7) {
        let mut w = JsonWriter::new();
        w.fixed(v, decimals);
        let out = w.finish();
        let parsed: f64 = out.parse().unwrap();
        let scale = 10f64.powi(decimals as i32);
        prop_assert!((parsed - v).abs() <= 0.5 / scale + v.abs() * 1e-12,
                     "v {v} decimals {decimals} -> {out}");
    }

    /// WebSocket encode→decode round-trips arbitrary payloads (after
    /// client-side masking is applied to the encoded frame).
    #[test]
    fn ws_frames_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..70_000),
                           mask in any::<[u8; 4]>()) {
        // Take a server frame and re-mask it as a client would.
        let server = ws::encode_frame(ws::Opcode::Binary, &payload);
        let header_len = server.len() - payload.len();
        let mut client = Vec::with_capacity(server.len() + 4);
        client.extend_from_slice(&server[..header_len]);
        client[1] |= 0x80; // masked bit
        client.extend_from_slice(&mask);
        client.extend(payload.iter().enumerate().map(|(i, b)| b ^ mask[i % 4]));
        let (frame, used) = ws::decode_client_frame(&client).unwrap();
        prop_assert_eq!(used, client.len());
        prop_assert_eq!(frame.payload, payload);
        prop_assert!(frame.fin);
    }
}
