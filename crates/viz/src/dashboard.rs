//! Dashboards: named collections of panels evaluated together — the
//! "Grafana UI" of the paper, which shows latency statistics alongside the
//! live map.

use crate::json::JsonWriter;
use crate::panel::{Panel, PanelData, Stat};
use ruru_tsdb::TsDb;

/// A declarative dashboard.
#[derive(Debug, Clone)]
pub struct Dashboard {
    /// Dashboard title.
    pub title: String,
    /// The panels, in display order.
    pub panels: Vec<Panel>,
}

impl Dashboard {
    /// The Ruru operator dashboard: overall latency, internal vs external
    /// split, and per-destination views for the top cities in the store.
    pub fn operator_default(db: &TsDb, top_cities: usize) -> Dashboard {
        let mut panels = vec![
            Panel::latency_overview(),
            Panel {
                title: "Internal latency".into(),
                measurement: "latency".into(),
                field: "internal_ms".into(),
                tags: Vec::new(),
                stats: vec![Stat::Median, Stat::P95, Stat::Max],
            },
            Panel {
                title: "External latency".into(),
                measurement: "latency".into(),
                field: "external_ms".into(),
                tags: Vec::new(),
                stats: vec![Stat::Median, Stat::P95, Stat::Max],
            },
            Panel {
                title: "Connections".into(),
                measurement: "latency".into(),
                field: "total_ms".into(),
                tags: Vec::new(),
                stats: vec![Stat::Count],
            },
        ];
        for city in db.tag_values("latency", "dst_city").into_iter().take(top_cities) {
            panels.push(
                Panel {
                    title: format!("→ {city}"),
                    ..Panel::latency_overview()
                }
                .with_tag("dst_city", &city),
            );
        }
        Dashboard {
            title: "Ruru — end-to-end latency".into(),
            panels,
        }
    }

    /// The pipeline self-monitoring dashboard over the `ruru_self` export
    /// (see `ruru-telemetry`): stage throughput counters, flow-table
    /// occupancy, bus drops, stage-residency tails, and the snapshot
    /// health counter — the pipeline watching itself through the same
    /// tsdb + panel machinery the latency data uses.
    pub fn self_monitoring() -> Dashboard {
        Dashboard {
            title: "Ruru — pipeline self-telemetry".into(),
            panels: vec![
                Panel::self_metric("dp_records_in"),
                Panel::self_metric("dp_records_out"),
                Panel::self_metric("enrich_enriched"),
                Panel::self_metric("det_records_out"),
                Panel::self_metric("flow_table_occupancy"),
                Panel::self_metric("geo_cache_misses"),
                Panel::self_metric("mq_dropped"),
                Panel::self_metric("reject_bus_closed"),
                Panel::self_metric("snapshot_skipped_shards"),
                Panel::stage_residency("stage_rx_residency_ns"),
                Panel::stage_residency("stage_enrich_residency_ns"),
                Panel::stage_residency("stage_publish_residency_ns"),
            ],
        }
    }

    /// Evaluate every panel over the same window.
    pub fn evaluate(&self, db: &TsDb, start_ns: u64, end_ns: u64, buckets: usize) -> DashboardData {
        DashboardData {
            title: self.title.clone(),
            panels: self
                .panels
                .iter()
                .map(|p| p.evaluate(db, start_ns, end_ns, buckets))
                .collect(),
        }
    }
}

/// Evaluated dashboard data.
#[derive(Debug, Clone)]
pub struct DashboardData {
    /// Dashboard title.
    pub title: String,
    /// Evaluated panels, in display order.
    pub panels: Vec<PanelData>,
}

impl DashboardData {
    /// The JSON document the web UI consumes.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("title")
            .string(&self.title)
            .key("panels")
            .begin_array();
        for p in &self.panels {
            // PanelData::to_json produces a complete document; embed its
            // structure directly rather than re-stringifying.
            w.begin_object().key("title").string(&p.title).key("times").begin_array();
            for t in &p.times {
                w.number(*t as f64 / 1e9);
            }
            w.end_array().key("series").begin_object();
            for (stat, values) in &p.series {
                w.key(stat.name()).begin_array();
                for v in values {
                    match v {
                        Some(x) => w.number(*x),
                        None => w.null(),
                    };
                }
                w.end_array();
            }
            w.end_object().end_object();
        }
        w.end_array().end_object();
        w.finish()
    }

    /// A terminal rendering: one sparkline row per panel/stat.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        for p in &self.panels {
            out.push_str(&format!("{}\n", p.title));
            for (stat, _) in &p.series {
                out.push_str(&format!("  {:>6} {}\n", stat.name(), p.sparkline(*stat)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruru_tsdb::Point;

    fn seeded_db() -> TsDb {
        let db = TsDb::new();
        for (city, base) in [("Los Angeles", 130.0), ("Sydney", 35.0)] {
            for i in 0..50u64 {
                db.write(&Point::new(
                    "latency",
                    vec![("dst_city".into(), city.into())],
                    vec![
                        ("total_ms".into(), base + i as f64 * 0.1),
                        ("internal_ms".into(), 2.0),
                        ("external_ms".into(), base),
                    ],
                    i * 20_000_000,
                ));
            }
        }
        db
    }

    #[test]
    fn operator_default_builds_per_city_panels() {
        let db = seeded_db();
        let d = Dashboard::operator_default(&db, 2);
        assert_eq!(d.panels.len(), 4 + 2);
        assert!(d.panels.iter().any(|p| p.title == "→ Los Angeles"));
        assert!(d.panels.iter().any(|p| p.title == "→ Sydney"));
    }

    #[test]
    fn evaluate_and_encode() {
        let db = seeded_db();
        let d = Dashboard::operator_default(&db, 1);
        let data = d.evaluate(&db, 0, 1_000_000_000, 5);
        assert_eq!(data.panels.len(), d.panels.len());
        let json = data.to_json();
        assert!(json.contains("\"title\":\"Ruru — end-to-end latency\""));
        assert!(json.contains("\"panels\":["));
        assert!(json.contains("\"median\":["));
        let ascii = data.render_ascii();
        assert!(ascii.contains("Internal latency"));
        assert!(ascii.lines().count() > 10);
    }

    #[test]
    fn top_cities_limit_respected() {
        let db = seeded_db();
        let d = Dashboard::operator_default(&db, 0);
        assert_eq!(d.panels.len(), 4);
    }

    #[test]
    fn self_monitoring_reads_ruru_self_exports() {
        let db = TsDb::new();
        // Three collections of the shape ruru-telemetry exports: cumulative
        // scalars tagged by metric name, histogram tails as fields.
        for (i, ts) in [(1u64, 1_000_000_000u64), (2, 2_000_000_000), (3, 2_900_000_000)] {
            db.write(&Point::new(
                "ruru_self",
                vec![
                    ("metric".into(), "dp_records_in".into()),
                    ("kind".into(), "counter".into()),
                ],
                vec![("value".into(), (i * 100) as f64)],
                ts,
            ));
            db.write(&Point::new(
                "ruru_self",
                vec![
                    ("metric".into(), "stage_rx_residency_ns".into()),
                    ("kind".into(), "histogram".into()),
                ],
                vec![("p95".into(), (i * 1000) as f64), ("count".into(), i as f64)],
                ts,
            ));
        }
        let d = Dashboard::self_monitoring();
        assert!(d.panels.iter().any(|p| p.title == "self: dp_records_in"));
        let data = d.evaluate(&db, 0, 3_000_000_000, 3);
        let dp = data
            .panels
            .iter()
            .find(|p| p.title == "self: dp_records_in")
            .unwrap();
        // Cumulative counter: Max per bucket is the state at bucket end
        // (t=2.0s and t=2.9s both land in the last 1-second bucket).
        assert_eq!(dp.series_for(Stat::Max).unwrap()[1], Some(100.0));
        assert_eq!(dp.series_for(Stat::Max).unwrap()[2], Some(300.0));
        let rx = data
            .panels
            .iter()
            .find(|p| p.title == "residency: stage_rx_residency_ns")
            .unwrap();
        assert_eq!(rx.series_for(Stat::Max).unwrap()[2], Some(3000.0));
        // Scalar panels must not pick up histogram points of other metrics.
        assert!(data
            .panels
            .iter()
            .find(|p| p.title == "self: mq_dropped")
            .unwrap()
            .series_for(Stat::Max)
            .unwrap()
            .iter()
            .all(|v| v.is_none()));
    }
}
