//! Grafana-style panels over the time-series database.
//!
//! The paper: *"the Grafana UI also shows statistics and graphs of the
//! measured end-to-end latency (e.g., min, max, median, mean) for a
//! required time interval"*. A [`Panel`] is a declarative query; evaluating
//! it against a [`TsDb`] yields [`PanelData`] — time series of the chosen
//! statistic — renderable as JSON for the web UI or as an ASCII sparkline
//! for terminals.

use crate::json::JsonWriter;
use ruru_tsdb::{Query, TsDb};

/// Which statistic a panel plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stat {
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Mean.
    Mean,
    /// Median.
    Median,
    /// 95th percentile.
    P95,
    /// 99th percentile.
    P99,
    /// Sample count.
    Count,
}

impl Stat {
    /// The stat's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Stat::Min => "min",
            Stat::Max => "max",
            Stat::Mean => "mean",
            Stat::Median => "median",
            Stat::P95 => "p95",
            Stat::P99 => "p99",
            Stat::Count => "count",
        }
    }
}

/// A declarative panel.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Panel title.
    pub title: String,
    /// Measurement to read.
    pub measurement: String,
    /// Field to aggregate.
    pub field: String,
    /// Tag filters.
    pub tags: Vec<(String, String)>,
    /// Statistics to plot (one series each).
    pub stats: Vec<Stat>,
}

impl Panel {
    /// The paper's default latency panel: min/max/median/mean of total
    /// latency.
    pub fn latency_overview() -> Panel {
        Panel {
            title: "End-to-end latency".into(),
            measurement: "latency".into(),
            field: "total_ms".into(),
            tags: Vec::new(),
            stats: vec![Stat::Min, Stat::Max, Stat::Median, Stat::Mean],
        }
    }

    /// A self-monitoring panel over one `ruru_self` scalar export (counter
    /// or gauge): plots the exported running value over time. `Max` per
    /// bucket is the right statistic for cumulative counters — each export
    /// is a running total, so the bucket's last (= largest) value is the
    /// state at bucket end.
    pub fn self_metric(metric: &str) -> Panel {
        Panel {
            title: format!("self: {metric}"),
            measurement: "ruru_self".into(),
            field: "value".into(),
            tags: vec![("metric".into(), metric.into())],
            stats: vec![Stat::Max],
        }
    }

    /// A self-monitoring panel over one `ruru_self` stage-residency
    /// histogram export: plots the exported p95 (tail residency) per
    /// collection interval.
    pub fn stage_residency(metric: &str) -> Panel {
        Panel {
            title: format!("residency: {metric}"),
            measurement: "ruru_self".into(),
            field: "p95".into(),
            tags: vec![
                ("metric".into(), metric.into()),
                ("kind".into(), "histogram".into()),
            ],
            stats: vec![Stat::Mean, Stat::Max],
        }
    }

    /// Restrict the panel to a tag value.
    pub fn with_tag(mut self, key: &str, value: &str) -> Panel {
        self.tags.push((key.into(), value.into()));
        self
    }

    /// Evaluate over `[start_ns, end_ns)` in `buckets` windows.
    pub fn evaluate(&self, db: &TsDb, start_ns: u64, end_ns: u64, buckets: usize) -> PanelData {
        assert!(buckets > 0, "need at least one bucket");
        assert!(end_ns > start_ns, "empty time range");
        let bucket_ns = (end_ns - start_ns).div_ceil(buckets as u64).max(1);
        let mut query = Query::range(&self.measurement, &self.field, start_ns, end_ns)
            .with_buckets(bucket_ns);
        for (k, v) in &self.tags {
            query = query.with_tag(k, v);
        }
        let result = db.query(&query);
        let times: Vec<u64> = result.iter().map(|b| b.start_ns).collect();
        let series = self
            .stats
            .iter()
            .map(|stat| {
                let values = result
                    .iter()
                    .map(|b| {
                        b.agg.map(|a| match stat {
                            Stat::Min => a.min,
                            Stat::Max => a.max,
                            Stat::Mean => a.mean,
                            Stat::Median => a.median,
                            Stat::P95 => a.p95,
                            Stat::P99 => a.p99,
                            Stat::Count => a.count as f64,
                        })
                    })
                    .collect();
                (*stat, values)
            })
            .collect();
        PanelData {
            title: self.title.clone(),
            times,
            series,
        }
    }
}

/// Evaluated panel data: one optional value per bucket per statistic.
#[derive(Debug, Clone)]
pub struct PanelData {
    /// Panel title.
    pub title: String,
    /// Bucket start times (ns).
    pub times: Vec<u64>,
    /// Series per statistic.
    pub series: Vec<(Stat, Vec<Option<f64>>)>,
}

impl PanelData {
    /// The series for one statistic.
    pub fn series_for(&self, stat: Stat) -> Option<&[Option<f64>]> {
        self.series
            .iter()
            .find(|(s, _)| *s == stat)
            .map(|(_, v)| v.as_slice())
    }

    /// Encode as the JSON document the web panel consumes.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("title")
            .string(&self.title)
            .key("times")
            .begin_array();
        for t in &self.times {
            w.number(*t as f64 / 1e9);
        }
        w.end_array().key("series").begin_object();
        for (stat, values) in &self.series {
            w.key(stat.name()).begin_array();
            for v in values {
                match v {
                    Some(x) => w.number(*x),
                    None => w.null(),
                };
            }
            w.end_array();
        }
        w.end_object().end_object();
        w.finish()
    }

    /// Render one statistic as an ASCII sparkline (for terminal demos).
    /// Empty buckets render as spaces.
    pub fn sparkline(&self, stat: Stat) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let Some(values) = self.series_for(stat) else {
            return String::new();
        };
        let present: Vec<f64> = values.iter().flatten().copied().collect();
        if present.is_empty() {
            return " ".repeat(values.len());
        }
        let min = present.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = present.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = (max - min).max(1e-12);
        values
            .iter()
            .map(|v| match v {
                Some(x) => BARS[(((x - min) / span) * 7.0).round() as usize],
                None => ' ',
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruru_tsdb::Point;

    fn seed_db() -> TsDb {
        let db = TsDb::new();
        // 10 s of per-second samples: 130 ms baseline, spike at t=7s.
        for s in 0..10u64 {
            for i in 0..20u64 {
                let v = if s == 7 { 4000.0 } else { 130.0 + i as f64 * 0.1 };
                db.write(&Point::new(
                    "latency",
                    vec![("src_city".into(), "Auckland".into())],
                    vec![("total_ms".into(), v)],
                    s * 1_000_000_000 + i * 1_000_000,
                ));
            }
        }
        db
    }

    #[test]
    fn overview_panel_exposes_spike_in_max() {
        let db = seed_db();
        let data = Panel::latency_overview().evaluate(&db, 0, 10_000_000_000, 10);
        assert_eq!(data.times.len(), 10);
        let max = data.series_for(Stat::Max).unwrap();
        assert_eq!(max[6], Some(131.9));
        assert_eq!(max[7], Some(4000.0));
        let median = data.series_for(Stat::Median).unwrap();
        assert!(median[0].unwrap() < 132.0);
    }

    #[test]
    fn tag_filter_empties_foreign_series() {
        let db = seed_db();
        let data = Panel::latency_overview()
            .with_tag("src_city", "Tokyo")
            .evaluate(&db, 0, 10_000_000_000, 10);
        assert!(data.series_for(Stat::Mean).unwrap().iter().all(|v| v.is_none()));
    }

    #[test]
    fn count_stat_counts() {
        let db = seed_db();
        let panel = Panel {
            stats: vec![Stat::Count],
            ..Panel::latency_overview()
        };
        let data = panel.evaluate(&db, 0, 10_000_000_000, 10);
        let counts = data.series_for(Stat::Count).unwrap();
        assert!(counts.iter().all(|c| *c == Some(20.0)));
    }

    #[test]
    fn json_contains_all_series() {
        let db = seed_db();
        let json = Panel::latency_overview()
            .evaluate(&db, 0, 10_000_000_000, 5)
            .to_json();
        for name in ["min", "max", "median", "mean"] {
            assert!(json.contains(&format!("\"{name}\":[")), "{json}");
        }
        assert!(json.contains("\"title\":\"End-to-end latency\""));
    }

    #[test]
    fn sparkline_highlights_spike() {
        let db = seed_db();
        let data = Panel::latency_overview().evaluate(&db, 0, 10_000_000_000, 10);
        let line = data.sparkline(Stat::Max);
        let chars: Vec<char> = line.chars().collect();
        assert_eq!(chars.len(), 10);
        assert_eq!(chars[7], '█', "spike bucket maxes the scale: {line}");
        assert!(chars[0] == '▁', "baseline hugs the floor: {line}");
    }

    #[test]
    fn sparkline_handles_missing_buckets() {
        let db = TsDb::new();
        db.write(&Point::new(
            "latency",
            vec![],
            vec![("total_ms".into(), 100.0)],
            500_000_000,
        ));
        let data = Panel::latency_overview().evaluate(&db, 0, 2_000_000_000, 4);
        let line = data.sparkline(Stat::Mean);
        assert_eq!(line.chars().filter(|c| *c == ' ').count(), 3);
    }

    #[test]
    fn missing_stat_returns_none() {
        let db = seed_db();
        let panel = Panel {
            stats: vec![Stat::Mean],
            ..Panel::latency_overview()
        };
        let data = panel.evaluate(&db, 0, 1_000_000_000, 1);
        assert!(data.series_for(Stat::P99).is_none());
        assert_eq!(data.sparkline(Stat::P99), "");
    }
}
