//! The 30 fps frame batcher.
//!
//! Measurements arrive continuously; the browser draws at a fixed cadence.
//! The batcher accumulates arcs and cuts a [`Frame`] every `1/fps` of
//! simulated time, enforcing a per-frame arc budget (beyond it, arcs are
//! dropped and counted — the map saturates gracefully under load, exactly
//! like the real frontend).

use crate::arc::{tessellate, Arc3D};
use crate::color::LatencyScale;
use crate::json::JsonWriter;
use ruru_nic::Timestamp;

/// Frame batcher configuration.
#[derive(Debug, Clone)]
pub struct FrameConfig {
    /// Frames per second (paper: 30).
    pub fps: u32,
    /// Arc polyline segments (render quality).
    pub segments: usize,
    /// Maximum arcs accepted into one frame.
    pub max_arcs_per_frame: usize,
    /// The colour scale.
    pub scale: LatencyScale,
}

impl Default for FrameConfig {
    fn default() -> Self {
        FrameConfig {
            fps: 30,
            segments: 32,
            max_arcs_per_frame: 2000,
            scale: LatencyScale::default(),
        }
    }
}

/// One rendered frame: the arcs born in its window.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame sequence number.
    pub seq: u64,
    /// Window start time.
    pub start: Timestamp,
    /// Arcs to draw.
    pub arcs: Vec<Arc3D>,
    /// Arcs dropped over budget in this window.
    pub dropped: u64,
}

impl Frame {
    /// Encode the frame as the JSON document sent over the WebSocket.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("seq")
            .integer(self.seq as i64)
            .key("t")
            .number(self.start.as_secs_f64())
            .key("dropped")
            .integer(self.dropped as i64)
            .key("arcs")
            .begin_array();
        for arc in &self.arcs {
            w.begin_object()
                .key("color")
                .string(&arc.color.to_hex())
                .key("ms")
                .fixed(arc.latency_ms, 2)
                .key("path")
                .begin_array();
            // Fixed-point coordinates: 5 decimals ≈ 1 m of precision, and
            // an order of magnitude cheaper to format than full floats.
            for (lat, lon, alt) in &arc.points {
                w.begin_array()
                    .fixed(*lat as f64, 5)
                    .fixed(*lon as f64, 5)
                    .fixed(*alt as f64, 1)
                    .end_array();
            }
            w.end_array().end_object();
        }
        w.end_array().end_object();
        w.finish()
    }
}

/// Accumulates arcs and cuts frames on a fixed cadence of simulated time.
pub struct FrameBatcher {
    config: FrameConfig,
    frame_ns: u64,
    current_start: Timestamp,
    seq: u64,
    arcs: Vec<Arc3D>,
    dropped_this_frame: u64,
    total_arcs: u64,
    total_dropped: u64,
}

impl FrameBatcher {
    /// Create a batcher; the first frame window starts at `origin`.
    pub fn new(config: FrameConfig, origin: Timestamp) -> FrameBatcher {
        assert!(config.fps > 0, "fps must be positive");
        let frame_ns = 1_000_000_000 / config.fps as u64;
        FrameBatcher {
            config,
            frame_ns,
            current_start: origin,
            seq: 0,
            arcs: Vec::new(),
            dropped_this_frame: 0,
            total_arcs: 0,
            total_dropped: 0,
        }
    }

    /// The frame period in nanoseconds.
    pub fn frame_ns(&self) -> u64 {
        self.frame_ns
    }

    /// Add one connection arc at time `at`. Returns completed frames (all
    /// windows that closed strictly before `at`).
    pub fn add(
        &mut self,
        at: Timestamp,
        src: (f32, f32),
        dst: (f32, f32),
        latency_ms: f64,
    ) -> Vec<Frame> {
        let frames = self.advance_to(at);
        if self.arcs.len() < self.config.max_arcs_per_frame {
            self.arcs
                .push(tessellate(src, dst, latency_ms, self.config.segments, &self.config.scale));
            self.total_arcs += 1;
        } else {
            self.dropped_this_frame += 1;
            self.total_dropped += 1;
        }
        frames
    }

    /// Close every window ending at or before `now`, returning the frames.
    pub fn advance_to(&mut self, now: Timestamp) -> Vec<Frame> {
        let mut out = Vec::new();
        while now.saturating_nanos_since(self.current_start) >= self.frame_ns {
            out.push(Frame {
                seq: self.seq,
                start: self.current_start,
                arcs: std::mem::take(&mut self.arcs),
                dropped: std::mem::replace(&mut self.dropped_this_frame, 0),
            });
            self.seq += 1;
            self.current_start = self.current_start.advanced(self.frame_ns);
            // Don't emit unbounded empty frames after a long idle gap —
            // jump directly to the window containing `now` once the gap
            // exceeds one second of frames.
            let gap = now.saturating_nanos_since(self.current_start);
            if out.len() > self.config.fps as usize && gap > self.frame_ns {
                let skip = gap / self.frame_ns;
                self.seq += skip;
                self.current_start = self.current_start.advanced(skip * self.frame_ns);
            }
        }
        out
    }

    /// `(arcs accepted, arcs dropped)` overall.
    pub fn stats(&self) -> (u64, u64) {
        (self.total_arcs, self.total_dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AKL: (f32, f32) = (-36.85, 174.76);
    const LAX: (f32, f32) = (34.05, -118.24);

    fn batcher(max_arcs: usize) -> FrameBatcher {
        FrameBatcher::new(
            FrameConfig {
                fps: 30,
                segments: 8,
                max_arcs_per_frame: max_arcs,
                scale: LatencyScale::default(),
            },
            Timestamp::ZERO,
        )
    }

    #[test]
    fn frame_period_is_33ms_at_30fps() {
        let b = batcher(100);
        assert_eq!(b.frame_ns(), 33_333_333);
    }

    #[test]
    fn arcs_land_in_their_window() {
        let mut b = batcher(100);
        assert!(b.add(Timestamp::from_millis(1), AKL, LAX, 130.0).is_empty());
        assert!(b.add(Timestamp::from_millis(20), AKL, LAX, 131.0).is_empty());
        // Crossing 33.3 ms closes frame 0 with both arcs.
        let frames = b.add(Timestamp::from_millis(40), AKL, LAX, 132.0);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].seq, 0);
        assert_eq!(frames[0].arcs.len(), 2);
        assert_eq!(frames[0].dropped, 0);
    }

    #[test]
    fn budget_drops_over_limit() {
        let mut b = batcher(3);
        for i in 0..10 {
            b.add(Timestamp::from_millis(i), AKL, LAX, 130.0);
        }
        let frames = b.advance_to(Timestamp::from_millis(50));
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].arcs.len(), 3);
        assert_eq!(frames[0].dropped, 7);
        assert_eq!(b.stats(), (3, 7));
    }

    #[test]
    fn multiple_windows_close_in_order() {
        let mut b = batcher(100);
        let mut frames = b.add(Timestamp::from_millis(1), AKL, LAX, 1.0);
        // Adding at t=35ms closes window 0 immediately.
        frames.extend(b.add(Timestamp::from_millis(35), AKL, LAX, 2.0));
        frames.extend(b.advance_to(Timestamp::from_millis(70)));
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].seq, 0);
        assert_eq!(frames[1].seq, 1);
        assert_eq!(frames[0].arcs.len(), 1);
        assert_eq!(frames[1].arcs.len(), 1);
    }

    #[test]
    fn long_idle_gap_does_not_flood_empty_frames() {
        let mut b = batcher(100);
        b.add(Timestamp::from_millis(1), AKL, LAX, 1.0);
        // An hour of idle.
        let frames = b.advance_to(Timestamp::from_secs(3600));
        assert!(
            frames.len() < 80,
            "empty frames must be skipped, got {}",
            frames.len()
        );
        // Sequence numbers still advance past the gap.
        let next = b.advance_to(Timestamp::from_secs(3601));
        let last_seq = next.last().unwrap().seq;
        assert!(last_seq > 100_000, "seq {last_seq} reflects wall progress");
    }

    #[test]
    fn frame_json_shape() {
        let mut b = batcher(100);
        b.add(Timestamp::from_millis(1), AKL, LAX, 130.0);
        let frames = b.advance_to(Timestamp::from_millis(40));
        let json = frames[0].to_json();
        assert!(json.starts_with(r#"{"seq":0,"t":0,"dropped":0,"arcs":[{"#), "{json}");
        assert!(json.contains(r#""color":"#));
        assert!(json.contains(r#""path":[["#));
        // 9 vertices for 8 segments.
        assert_eq!(json.matches('[').count() - 2, 9, "{json}");
    }
}
