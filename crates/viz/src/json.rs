//! A minimal JSON writer.
//!
//! Frames and panels go to the browser as JSON over the WebSocket. The
//! sanctioned dependency set has no JSON crate, so this is a small,
//! correct-by-construction writer: strings are escaped per RFC 8259,
//! non-finite floats are emitted as `null` (matching what browsers'
//! `JSON.parse` can accept).

/// Incrementally builds a JSON document into a `String`.
pub struct JsonWriter {
    out: String,
    /// Stack of "needs a comma before the next item" flags.
    comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> JsonWriter {
        JsonWriter {
            out: String::with_capacity(256),
            comma: vec![false],
        }
    }

    fn pre_value(&mut self) {
        if let Some(top) = self.comma.last_mut() {
            if *top {
                self.out.push(',');
            }
            *top = true;
        }
    }

    /// Begin an object (as a value).
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.comma.push(false);
        self
    }

    /// End the current object.
    pub fn end_object(&mut self) -> &mut Self {
        self.comma.pop();
        self.out.push('}');
        self
    }

    /// Begin an array (as a value).
    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('[');
        self.comma.push(false);
        self
    }

    /// End the current array.
    pub fn end_array(&mut self) -> &mut Self {
        self.comma.pop();
        self.out.push(']');
        self
    }

    /// Write an object key (must be inside an object, before its value).
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre_value();
        self.write_escaped(k);
        self.out.push(':');
        // The value that follows must not emit a comma.
        if let Some(top) = self.comma.last_mut() {
            *top = false;
        }
        self
    }

    /// Write a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.pre_value();
        self.write_escaped(s);
        self
    }

    /// Write a float value (`null` if non-finite).
    pub fn number(&mut self, v: f64) -> &mut Self {
        use core::fmt::Write;
        self.pre_value();
        if v.is_finite() {
            // Trim floats that are exactly integral for compactness.
            // Formatting writes straight into the output buffer.
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(self.out, "{}", v as i64);
            } else {
                let _ = write!(self.out, "{v}");
            }
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Write an integer value.
    pub fn integer(&mut self, v: i64) -> &mut Self {
        use core::fmt::Write;
        self.pre_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Write a float with a fixed number of decimals via integer math —
    /// much cheaper than shortest-roundtrip float formatting, and exactly
    /// what coordinates/latencies need (a frame holds ~100k of them).
    /// Non-finite values become `null`; `decimals` must be ≤ 9.
    pub fn fixed(&mut self, v: f64, decimals: u32) -> &mut Self {
        assert!(decimals <= 9, "at most 9 decimals supported");
        self.pre_value();
        if !v.is_finite() {
            self.out.push_str("null");
            return self;
        }
        let scale = 10u64.pow(decimals);
        let scaled = (v.abs() * scale as f64).round();
        if scaled >= 9e18 {
            // Out of integer range: fall back to std formatting.
            use core::fmt::Write;
            let _ = write!(self.out, "{v}");
            return self;
        }
        let scaled = scaled as u64;
        if v < 0.0 && scaled > 0 {
            self.out.push('-');
        }
        let whole = scaled / scale;
        let frac = scaled % scale;
        let mut buf = [0u8; 20];
        let mut at = buf.len();
        let mut w = whole;
        loop {
            at -= 1;
            buf[at] = b'0' + (w % 10) as u8;
            w /= 10;
            if w == 0 {
                break;
            }
        }
        self.out
            .push_str(core::str::from_utf8(&buf[at..]).expect("digits"));
        if decimals > 0 {
            self.out.push('.');
            let mut f = frac;
            let start = self.out.len();
            for _ in 0..decimals {
                self.out.insert(start, char::from(b'0' + (f % 10) as u8));
                f /= 10;
            }
        }
        self
    }

    /// Write a boolean value.
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Write a null value.
    pub fn null(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push_str("null");
        self
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    use core::fmt::Write;
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Finish, returning the document.
    pub fn finish(self) -> String {
        debug_assert_eq!(self.comma.len(), 1, "unbalanced begin/end");
        self.out
    }
}

impl Default for JsonWriter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_object() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("name")
            .string("ruru")
            .key("count")
            .integer(3)
            .key("ok")
            .boolean(true)
            .key("ratio")
            .number(0.5)
            .end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"ruru","count":3,"ok":true,"ratio":0.5}"#
        );
    }

    #[test]
    fn nested_arrays_and_objects() {
        let mut w = JsonWriter::new();
        w.begin_object().key("arcs").begin_array();
        for i in 0..2 {
            w.begin_object().key("i").integer(i).end_object();
        }
        w.end_array().end_object();
        assert_eq!(w.finish(), r#"{"arcs":[{"i":0},{"i":1}]}"#);
    }

    #[test]
    fn string_escaping() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\te\u{1}");
        assert_eq!(w.finish(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn integral_floats_compact() {
        let mut w = JsonWriter::new();
        w.begin_array().number(2.0).number(2.5).number(f64::NAN).end_array();
        assert_eq!(w.finish(), "[2,2.5,null]");
    }

    #[test]
    fn top_level_array_of_numbers() {
        let mut w = JsonWriter::new();
        w.begin_array().integer(1).integer(2).integer(3).end_array();
        assert_eq!(w.finish(), "[1,2,3]");
    }

    #[test]
    fn fixed_point_formatting() {
        let mut w = JsonWriter::new();
        w.begin_array()
            .fixed(-36.8485, 5)
            .fixed(174.76, 2)
            .fixed(0.0, 3)
            .fixed(-0.0004, 3)
            .fixed(123.456789, 0)
            .fixed(f64::NAN, 2)
            .fixed(1e19, 2)
            .end_array();
        assert_eq!(
            w.finish(),
            "[-36.84850,174.76,0.000,0.000,123,null,10000000000000000000]"
        );
    }

    #[test]
    fn fixed_rounds_half_up() {
        let mut w = JsonWriter::new();
        w.begin_array().fixed(1.005, 2).fixed(-1.005, 2).end_array();
        // 1.005 is not exactly representable; accept either rounding of the
        // true binary value but require sign symmetry.
        let s = w.finish();
        assert!(s == "[1.01,-1.01]" || s == "[1.00,-1.00]", "{s}");
    }

    #[test]
    fn null_value() {
        let mut w = JsonWriter::new();
        w.begin_object().key("x").null().end_object();
        assert_eq!(w.finish(), r#"{"x":null}"#);
    }
}
