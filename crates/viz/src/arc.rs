//! Great-circle arc tessellation.
//!
//! Each connection becomes a 3D arc from source to destination: points
//! spherically interpolated along the great circle, lifted by a sine
//! altitude profile proportional to the arc's ground distance (what MapGL
//! renders as the glowing connection arcs).

use crate::color::{Color, LatencyScale};

/// One tessellated arc ready for the map.
#[derive(Debug, Clone, PartialEq)]
pub struct Arc3D {
    /// Polyline vertices as `(lat, lon, altitude_km)`.
    pub points: Vec<(f32, f32, f32)>,
    /// Render colour (from the latency scale).
    pub color: Color,
    /// The latency that coloured the arc, ms.
    pub latency_ms: f64,
}

fn to_unit(lat_deg: f32, lon_deg: f32) -> [f64; 3] {
    let lat = (lat_deg as f64).to_radians();
    let lon = (lon_deg as f64).to_radians();
    [lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin()]
}

fn from_unit(v: [f64; 3]) -> (f32, f32) {
    let lat = v[2].asin().to_degrees();
    let lon = v[1].atan2(v[0]).to_degrees();
    (lat as f32, lon as f32)
}

/// Spherical linear interpolation between two unit vectors.
fn slerp(a: [f64; 3], b: [f64; 3], t: f64) -> [f64; 3] {
    let dot = (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]).clamp(-1.0, 1.0);
    let omega = dot.acos();
    if omega.abs() < 1e-9 {
        return a;
    }
    let so = omega.sin();
    let ka = ((1.0 - t) * omega).sin() / so;
    let kb = (t * omega).sin() / so;
    let v = [
        ka * a[0] + kb * b[0],
        ka * a[1] + kb * b[1],
        ka * a[2] + kb * b[2],
    ];
    // Normalize to stay on the sphere.
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    [v[0] / n, v[1] / n, v[2] / n]
}

/// Central angle between two coordinates, radians.
fn central_angle(a: [f64; 3], b: [f64; 3]) -> f64 {
    (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]).clamp(-1.0, 1.0).acos()
}

/// Tessellate an arc with `segments` spans (`segments+1` vertices).
///
/// Peak altitude scales with ground distance, capped at 1200 km — long
/// trans-Pacific arcs rise high, metro arcs hug the ground.
pub fn tessellate(
    src: (f32, f32),
    dst: (f32, f32),
    latency_ms: f64,
    segments: usize,
    scale: &LatencyScale,
) -> Arc3D {
    assert!(segments >= 1, "need at least one segment");
    let a = to_unit(src.0, src.1);
    let b = to_unit(dst.0, dst.1);
    let angle = central_angle(a, b);
    let ground_km = angle * 6371.0;
    let peak_km = (ground_km * 0.12).min(1200.0);
    let mut points = Vec::with_capacity(segments + 1);
    for i in 0..=segments {
        let t = i as f64 / segments as f64;
        let (lat, lon) = from_unit(slerp(a, b, t));
        let alt = (std::f64::consts::PI * t).sin() * peak_km;
        points.push((lat, lon, alt as f32));
    }
    Arc3D {
        points,
        color: scale.color(latency_ms),
        latency_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AKL: (f32, f32) = (-36.85, 174.76);
    const LAX: (f32, f32) = (34.05, -118.24);

    #[test]
    fn endpoints_are_exact() {
        let arc = tessellate(AKL, LAX, 130.0, 64, &LatencyScale::default());
        assert_eq!(arc.points.len(), 65);
        let first = arc.points[0];
        let last = arc.points[64];
        assert!((first.0 - AKL.0).abs() < 1e-3 && (first.1 - AKL.1).abs() < 1e-3);
        assert!((last.0 - LAX.0).abs() < 1e-3 && (last.1 - LAX.1).abs() < 1e-3);
        assert_eq!(first.2, 0.0);
        assert!(last.2.abs() < 1e-3);
    }

    #[test]
    fn altitude_peaks_mid_arc() {
        let arc = tessellate(AKL, LAX, 130.0, 64, &LatencyScale::default());
        let mid_alt = arc.points[32].2;
        assert!(mid_alt > 500.0, "trans-Pacific arc flies high: {mid_alt}");
        assert!(mid_alt <= 1200.0);
        // Altitudes rise then fall.
        for i in 0..32 {
            assert!(arc.points[i].2 <= arc.points[i + 1].2 + 1e-3);
        }
        for i in 32..64 {
            assert!(arc.points[i].2 >= arc.points[i + 1].2 - 1e-3);
        }
    }

    #[test]
    fn short_arcs_stay_low() {
        // Auckland → Wellington (~480 km).
        let arc = tessellate(AKL, (-41.29, 174.78), 8.0, 16, &LatencyScale::default());
        let peak = arc.points.iter().map(|p| p.2).fold(0.0f32, f32::max);
        assert!(peak < 100.0, "short arc peak {peak}");
    }

    #[test]
    fn dateline_crossing_stays_on_great_circle() {
        // AKL→LAX crosses the antimeridian; every interpolated point must
        // stay on the unit sphere with sane coordinates.
        let arc = tessellate(AKL, LAX, 130.0, 128, &LatencyScale::default());
        for (lat, lon, _) in &arc.points {
            assert!((-90.0..=90.0).contains(lat));
            assert!((-180.0..=180.0).contains(lon));
        }
        // And consecutive points should be roughly evenly spaced: compare
        // first and middle span lengths via unit vectors.
        let d = |i: usize| {
            let p = to_unit(arc.points[i].0, arc.points[i].1);
            let q = to_unit(arc.points[i + 1].0, arc.points[i + 1].1);
            central_angle(p, q)
        };
        let a = d(0);
        let b = d(64);
        assert!((a - b).abs() / a < 0.05, "spans uneven: {a} vs {b}");
    }

    #[test]
    fn latency_sets_color() {
        let scale = LatencyScale::default();
        let green = tessellate(AKL, LAX, 50.0, 8, &scale);
        let red = tessellate(AKL, LAX, 4000.0, 8, &scale);
        assert_eq!(green.color, Color::GREEN);
        assert_eq!(red.color, Color::RED);
    }

    #[test]
    fn degenerate_same_point_arc() {
        let arc = tessellate(AKL, AKL, 1.0, 8, &LatencyScale::default());
        assert_eq!(arc.points.len(), 9);
        for (lat, lon, alt) in &arc.points {
            assert!((lat - AKL.0).abs() < 1e-3);
            assert!((lon - AKL.1).abs() < 1e-3);
            assert!(alt.abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_rejected() {
        tessellate(AKL, LAX, 1.0, 0, &LatencyScale::default());
    }
}
