#![warn(missing_docs)]

//! # ruru-viz — the frontend backend
//!
//! The paper's frontend *"visualizes multiple thousands of connections per
//! second on a live 3D map on-the-fly … multiple thousands of 3D arcs drawn
//! on a map with 30 fps"*, plus a Grafana UI showing *"min, max, median,
//! mean … for a required time interval"*. The browser-side WebGL raster
//! pass is out of scope (it runs on the client GPU); everything the Ruru
//! *server* does to feed it is here:
//!
//! * [`arc`] — great-circle arc tessellation (spherical interpolation with
//!   an altitude profile), the geometry uploaded to the map.
//! * [`color`] — the latency→colour scale ("red lines in areas where most
//!   lines are green show increased latency").
//! * [`frame`] — the 30 fps frame batcher with a per-frame arc budget.
//! * [`json`] — a minimal JSON writer (frames and panels are JSON on the
//!   WebSocket, as in the deployed system).
//! * [`ws`] — RFC 6455 WebSocket server framing, including the handshake
//!   accept-key computation (SHA-1 + Base64, implemented here).
//! * [`panel`] — Grafana-style stat panels evaluated against
//!   [`ruru_tsdb::TsDb`], with an ASCII sparkline renderer for terminal
//!   demos.

pub mod arc;
pub mod color;
pub mod dashboard;
pub mod frame;
pub mod json;
pub mod panel;
pub mod ws;

pub use arc::Arc3D;
pub use color::Color;
pub use frame::{Frame, FrameBatcher};
pub use dashboard::{Dashboard, DashboardData};
pub use panel::{Panel, PanelData};
