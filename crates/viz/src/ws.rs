//! RFC 6455 WebSocket server-side framing.
//!
//! The deployed frontend feed pushes frames to browsers over WebSockets.
//! This module implements the server half from scratch: the handshake
//! accept-key derivation (SHA-1 and Base64 included — the sanctioned crate
//! set has neither) and frame encode/decode. Client→server frames are
//! masked per the RFC; server→client frames are not.

/// The GUID from RFC 6455 §1.3.
const WS_GUID: &str = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11";

/// Compute the SHA-1 digest of `data` (RFC 3174).
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
    let ml = (data.len() as u64) * 8;
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&ml.to_be_bytes());
    for chunk in msg.chunks_exact(64) {
        let mut w = [0u32; 80];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(word.try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Standard Base64 (with padding).
pub fn base64(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = u32::from_be_bytes([0, b[0], b[1], b[2]]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Derive the `Sec-WebSocket-Accept` value from the client's key.
#[allow(clippy::disallowed_methods)] // sanctioned: one handshake per websocket connection
pub fn accept_key(client_key: &str) -> String {
    let mut input = client_key.trim().to_string();
    input.push_str(WS_GUID);
    base64(&sha1(input.as_bytes()))
}

/// WebSocket frame opcodes used by the feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Text (JSON frames).
    Text,
    /// Binary.
    Binary,
    /// Connection close.
    Close,
    /// Ping.
    Ping,
    /// Pong.
    Pong,
}

impl Opcode {
    fn to_u8(self) -> u8 {
        match self {
            Opcode::Text => 0x1,
            Opcode::Binary => 0x2,
            Opcode::Close => 0x8,
            Opcode::Ping => 0x9,
            Opcode::Pong => 0xa,
        }
    }

    fn from_u8(v: u8) -> Option<Opcode> {
        match v {
            0x1 => Some(Opcode::Text),
            0x2 => Some(Opcode::Binary),
            0x8 => Some(Opcode::Close),
            0x9 => Some(Opcode::Ping),
            0xa => Some(Opcode::Pong),
            _ => None,
        }
    }
}

/// Encode a single unfragmented server→client frame (unmasked).
pub fn encode_frame(opcode: Opcode, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 10);
    out.push(0x80 | opcode.to_u8()); // FIN + opcode
    match payload.len() {
        0..=125 => out.push(payload.len() as u8),
        126..=65535 => {
            out.push(126);
            out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
        }
        _ => {
            out.push(127);
            out.extend_from_slice(&(payload.len() as u64).to_be_bytes());
        }
    }
    out.extend_from_slice(payload);
    out
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WsFrame {
    /// Frame opcode.
    pub opcode: Opcode,
    /// Unmasked payload.
    pub payload: Vec<u8>,
    /// FIN bit.
    pub fin: bool,
}

/// Decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WsError {
    /// More bytes needed.
    Incomplete,
    /// Reserved/unknown opcode.
    BadOpcode,
    /// A client frame was not masked (protocol violation).
    Unmasked,
}

/// Decode one client→server frame from `data`. Returns the frame and how
/// many bytes it consumed.
pub fn decode_client_frame(data: &[u8]) -> Result<(WsFrame, usize), WsError> {
    if data.len() < 2 {
        return Err(WsError::Incomplete);
    }
    let fin = data[0] & 0x80 != 0;
    let opcode = Opcode::from_u8(data[0] & 0x0f).ok_or(WsError::BadOpcode)?;
    let masked = data[1] & 0x80 != 0;
    if !masked {
        return Err(WsError::Unmasked);
    }
    let (len, mut at) = match data[1] & 0x7f {
        126 => {
            if data.len() < 4 {
                return Err(WsError::Incomplete);
            }
            (u16::from_be_bytes([data[2], data[3]]) as usize, 4)
        }
        127 => {
            if data.len() < 10 {
                return Err(WsError::Incomplete);
            }
            (u64::from_be_bytes(data[2..10].try_into().unwrap()) as usize, 10)
        }
        n => (n as usize, 2),
    };
    if data.len() < at + 4 + len {
        return Err(WsError::Incomplete);
    }
    let mask: [u8; 4] = data[at..at + 4].try_into().unwrap();
    at += 4;
    let payload: Vec<u8> = data[at..at + len]
        .iter()
        .enumerate()
        .map(|(i, b)| b ^ mask[i % 4])
        .collect();
    Ok((
        WsFrame {
            opcode,
            payload,
            fin,
        },
        at + len,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha1_test_vectors() {
        // FIPS 180-1 examples.
        assert_eq!(
            sha1(b"abc"),
            [
                0xA9, 0x99, 0x3E, 0x36, 0x47, 0x06, 0x81, 0x6A, 0xBA, 0x3E, 0x25, 0x71, 0x78,
                0x50, 0xC2, 0x6C, 0x9C, 0xD0, 0xD8, 0x9D
            ]
        );
        assert_eq!(
            sha1(b""),
            [
                0xda, 0x39, 0xa3, 0xee, 0x5e, 0x6b, 0x4b, 0x0d, 0x32, 0x55, 0xbf, 0xef, 0x95,
                0x60, 0x18, 0x90, 0xaf, 0xd8, 0x07, 0x09
            ]
        );
    }

    #[test]
    fn sha1_long_input() {
        // FIPS 180-1: one million 'a's.
        let million = vec![b'a'; 1_000_000];
        assert_eq!(
            sha1(&million)[..4],
            [0x34, 0xaa, 0x97, 0x3c],
            "first bytes of the million-a digest"
        );
    }

    #[test]
    fn base64_test_vectors() {
        // RFC 4648 §10.
        assert_eq!(base64(b""), "");
        assert_eq!(base64(b"f"), "Zg==");
        assert_eq!(base64(b"fo"), "Zm8=");
        assert_eq!(base64(b"foo"), "Zm9v");
        assert_eq!(base64(b"foob"), "Zm9vYg==");
        assert_eq!(base64(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn rfc6455_accept_key_example() {
        // The worked example from RFC 6455 §1.3.
        assert_eq!(
            accept_key("dGhlIHNhbXBsZSBub25jZQ=="),
            "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        );
    }

    #[test]
    fn encode_small_text_frame() {
        let f = encode_frame(Opcode::Text, b"Hello");
        // The RFC's own example: a single-frame unmasked "Hello".
        assert_eq!(f, vec![0x81, 0x05, b'H', b'e', b'l', b'l', b'o']);
    }

    #[test]
    fn encode_length_encodings() {
        let medium = encode_frame(Opcode::Binary, &vec![0u8; 300]);
        assert_eq!(medium[1], 126);
        assert_eq!(u16::from_be_bytes([medium[2], medium[3]]), 300);
        assert_eq!(medium.len(), 4 + 300);

        let large = encode_frame(Opcode::Binary, &vec![0u8; 70_000]);
        assert_eq!(large[1], 127);
        assert_eq!(
            u64::from_be_bytes(large[2..10].try_into().unwrap()),
            70_000
        );
    }

    #[test]
    fn decode_masked_client_frame() {
        // The RFC's masked "Hello" example.
        let data = [
            0x81u8, 0x85, 0x37, 0xfa, 0x21, 0x3d, 0x7f, 0x9f, 0x4d, 0x51, 0x58,
        ];
        let (frame, used) = decode_client_frame(&data).unwrap();
        assert_eq!(used, data.len());
        assert_eq!(frame.opcode, Opcode::Text);
        assert!(frame.fin);
        assert_eq!(frame.payload, b"Hello");
    }

    #[test]
    fn decode_rejects_unmasked_client_frame() {
        let server_frame = encode_frame(Opcode::Text, b"x");
        assert_eq!(
            decode_client_frame(&server_frame).unwrap_err(),
            WsError::Unmasked
        );
    }

    #[test]
    fn decode_incomplete_frames() {
        assert_eq!(decode_client_frame(&[0x81]).unwrap_err(), WsError::Incomplete);
        let data = [0x81u8, 0x85, 0x37, 0xfa]; // header promises more
        assert_eq!(decode_client_frame(&data).unwrap_err(), WsError::Incomplete);
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let data = [0x83u8, 0x80, 0, 0, 0, 0]; // opcode 3 reserved
        assert_eq!(decode_client_frame(&data).unwrap_err(), WsError::BadOpcode);
    }

    #[test]
    fn mask_roundtrip() {
        // Hand-mask a payload and check the decoder recovers it.
        let payload = b"ruru latency frame";
        let mask = [0xde, 0xad, 0xbe, 0xef];
        let mut data = vec![0x82u8, 0x80 | payload.len() as u8];
        data.extend_from_slice(&mask);
        data.extend(
            payload
                .iter()
                .enumerate()
                .map(|(i, b)| b ^ mask[i % 4]),
        );
        let (frame, _) = decode_client_frame(&data).unwrap();
        assert_eq!(frame.payload, payload);
        assert_eq!(frame.opcode, Opcode::Binary);
    }
}
