//! The latency colour scale.
//!
//! §3: *"red lines in areas where most lines are green show increased
//! latency for some connections"*. Green below `lo`, red above `hi`, a
//! green→yellow→red gradient between.

/// An RGBA colour (8 bits per channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Color {
    /// Red.
    pub r: u8,
    /// Green.
    pub g: u8,
    /// Blue.
    pub b: u8,
    /// Alpha.
    pub a: u8,
}

impl Color {
    /// Fully-saturated green (the "healthy" end of the scale).
    pub const GREEN: Color = Color {
        r: 0x2e,
        g: 0xcc,
        b: 0x40,
        a: 0xff,
    };
    /// The "hot" end of the scale.
    pub const RED: Color = Color {
        r: 0xff,
        g: 0x41,
        b: 0x36,
        a: 0xff,
    };
    /// The midpoint yellow.
    pub const YELLOW: Color = Color {
        r: 0xff,
        g: 0xdc,
        b: 0x00,
        a: 0xff,
    };

    /// CSS hex form `#rrggbbaa`.
    pub fn to_hex(&self) -> String {
        format!("#{:02x}{:02x}{:02x}{:02x}", self.r, self.g, self.b, self.a)
    }

    /// Linear interpolation between two colours.
    pub fn lerp(a: Color, b: Color, t: f32) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |x: u8, y: u8| (x as f32 + (y as f32 - x as f32) * t).round() as u8;
        Color {
            r: mix(a.r, b.r),
            g: mix(a.g, b.g),
            b: mix(a.b, b.b),
            a: mix(a.a, b.a),
        }
    }
}

/// A piecewise-linear latency→colour scale.
#[derive(Debug, Clone, Copy)]
pub struct LatencyScale {
    /// At or below: pure green.
    pub lo_ms: f64,
    /// At or above: pure red.
    pub hi_ms: f64,
}

impl Default for LatencyScale {
    fn default() -> Self {
        // Tuned for an international link: <80 ms green, >400 ms red.
        LatencyScale {
            lo_ms: 80.0,
            hi_ms: 400.0,
        }
    }
}

impl LatencyScale {
    /// Map a latency to its colour.
    pub fn color(&self, latency_ms: f64) -> Color {
        if latency_ms <= self.lo_ms {
            return Color::GREEN;
        }
        if latency_ms >= self.hi_ms {
            return Color::RED;
        }
        let mid = (self.lo_ms + self.hi_ms) / 2.0;
        if latency_ms <= mid {
            let t = (latency_ms - self.lo_ms) / (mid - self.lo_ms);
            Color::lerp(Color::GREEN, Color::YELLOW, t as f32)
        } else {
            let t = (latency_ms - mid) / (self.hi_ms - mid);
            Color::lerp(Color::YELLOW, Color::RED, t as f32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_saturate() {
        let s = LatencyScale::default();
        assert_eq!(s.color(0.0), Color::GREEN);
        assert_eq!(s.color(80.0), Color::GREEN);
        assert_eq!(s.color(400.0), Color::RED);
        assert_eq!(s.color(4000.0), Color::RED, "firewall spike is red");
    }

    #[test]
    fn midpoint_is_yellow() {
        let s = LatencyScale::default();
        assert_eq!(s.color(240.0), Color::YELLOW);
    }

    #[test]
    fn gradient_is_monotonic_in_redness() {
        let s = LatencyScale::default();
        let mut last_r = 0;
        for ms in (80..=400).step_by(10) {
            let c = s.color(ms as f64);
            assert!(c.r >= last_r, "red must not decrease");
            last_r = c.r;
        }
    }

    #[test]
    fn lerp_boundaries() {
        assert_eq!(Color::lerp(Color::GREEN, Color::RED, 0.0), Color::GREEN);
        assert_eq!(Color::lerp(Color::GREEN, Color::RED, 1.0), Color::RED);
        assert_eq!(Color::lerp(Color::GREEN, Color::RED, -1.0), Color::GREEN);
        assert_eq!(Color::lerp(Color::GREEN, Color::RED, 2.0), Color::RED);
    }

    #[test]
    fn hex_format() {
        assert_eq!(Color::GREEN.to_hex(), "#2ecc40ff");
    }
}
