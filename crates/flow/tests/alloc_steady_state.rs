//! Steady-state allocation audit: after construction and a warm-up pass,
//! one million mixed operations against [`FlowTable`] — scalar inserts,
//! removals, burst inserts, burst lookups, and expiry sweeps — perform
//! **zero** heap allocations. This is the load-bearing property of the
//! slab/intrusive-FIFO design: the old `HashMap` + `VecDeque` store
//! allocated on rehash and deque growth at exactly the moment (a SYN
//! flood) the dataplane could least afford it.

// Tests are exempt from the panic-freedom policy (DESIGN.md §10).
#![allow(clippy::unwrap_used, clippy::expect_used)]

// Miri has its own allocator machinery and a 1M-op loop is far too slow
// under its interpreter; the property is native-allocator behaviour anyway.
#![cfg(not(miri))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use ruru_flow::table::FlowTable;
use ruru_nic::Timestamp;

/// Counts allocator hits while `ARMED`; defers everything to [`System`].
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the `System` allocator — identical layout
// contracts — plus two relaxed counter increments, which allocate nothing
// and cannot reenter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards `layout` unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: forwards `ptr`/`layout` unchanged to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards all arguments unchanged to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const CAPACITY: usize = 4096;
const TTL_NS: u64 = 10_000;
const BURST: usize = 32;
/// Mutating ops (inserts/removes/expiries) in the audit window.
const MUTATE_OPS: u64 = 600_000;
/// Burst-lookup probes in the audit window (phase two: `lookup_burst`
/// hands out borrows, so lookups run against the settled table).
const LOOKUP_OPS: u64 = 400_000;

/// Cheap deterministic key/hash mix (the table's correctness never depends
/// on hash quality, only its speed does).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z ^= z >> 29;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 32)
}

#[test]
fn one_million_mixed_ops_allocate_nothing() {
    let mut table: FlowTable<u64, u64> = FlowTable::new(CAPACITY, TTL_NS);

    // Scratch the burst APIs reuse — sized once, before arming. `found` is
    // declared here (so its backing store predates the audit window) but
    // only used in the post-mutation lookup phase, since its elements
    // borrow the table.
    let mut staged: Vec<(u32, u64, u64)> = Vec::with_capacity(BURST);
    let mut probes: Vec<(u32, u64)> = Vec::with_capacity(BURST);
    let mut outcomes = Vec::with_capacity(BURST);
    let mut found: Vec<Option<&u64>> = Vec::with_capacity(BURST);

    // Warm-up: touch every mutating code path once so lazy one-time setup
    // (if any) happens before the audit window.
    let mut now_ns = 1u64;
    for i in 0..(2 * CAPACITY as u64) {
        let key = mix(i);
        let hash = (key >> 32) as u32;
        now_ns += 1;
        table.insert(hash, key, i, Timestamp::from_nanos(now_ns));
    }
    table.expire(Timestamp::from_nanos(now_ns + TTL_NS), |_, _| {});

    ARMED.store(true, Ordering::Relaxed);

    // Phase one: mutation churn — scalar and burst inserts straight
    // through capacity eviction, removals, periodic expiry sweeps.
    let mut op = 0u64;
    let mut next_key = 0u64;
    let mut hits = 0u64;
    while op < MUTATE_OPS {
        now_ns += 1;
        let now = Timestamp::from_nanos(now_ns);
        match op % 4 {
            0 => {
                for _ in 0..BURST {
                    let key = mix(next_key);
                    next_key += 1;
                    table.insert((key >> 32) as u32, key, op, now);
                    op += 1;
                }
            }
            1 => {
                staged.clear();
                for _ in 0..BURST {
                    let key = mix(next_key);
                    next_key += 1;
                    staged.push(((key >> 32) as u32, key, op));
                }
                table.insert_burst(&mut staged, now, &mut outcomes);
                op += BURST as u64;
            }
            2 => {
                for j in 0..BURST as u64 {
                    let key = mix(next_key.saturating_sub(j * 3 + 1));
                    if table.remove((key >> 32) as u32, &key).is_some() {
                        hits += 1;
                    }
                    op += 1;
                }
            }
            _ => {
                now_ns += TTL_NS / 4;
                table.expire(Timestamp::from_nanos(now_ns), |_, _| {});
                op += 1;
            }
        }
    }

    // Phase two: burst lookups (present and absent keys) against the
    // settled table.
    let mut probed = 0u64;
    while probed < LOOKUP_OPS {
        probes.clear();
        for j in 0..BURST as u64 {
            let key = mix(next_key.saturating_sub(probed + j * 7 + 1));
            probes.push(((key >> 32) as u32, key));
        }
        table.lookup_burst(&probes, &mut found);
        hits += found.iter().filter(|f| f.is_some()).count() as u64;
        probed += BURST as u64;
    }

    ARMED.store(false, Ordering::Relaxed);

    let allocs = ALLOCS.load(Ordering::Relaxed);
    let reallocs = REALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        (allocs, reallocs),
        (0, 0),
        "steady-state flow table ops must not touch the heap"
    );
    // The audit window did real work.
    assert!(table.evictions() > 0, "audit window exercised eviction");
    assert!(table.expirations() > 0, "audit window exercised expiry");
    assert!(hits > 0, "audit window exercised hit paths");
}
