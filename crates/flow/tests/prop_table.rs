//! Model-based differential tests: the slab-backed open-addressing
//! [`FlowTable`] against the original `HashMap` + `VecDeque`
//! [`ExpiringTable`], driven through identical randomized operation
//! sequences. The baseline *is* the model — every observable (operation
//! results, membership, live count, eviction/expiry counters, expiry
//! callback order) must match exactly, including under adversarial hash
//! collisions the baseline never sees (its `HashMap` hashes keys itself).

// Tests are exempt from the panic-freedom policy (DESIGN.md §10):
// unwrap/expect on known-good fixtures is idiomatic here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

// Proptest exercises thousands of cases per property: far too slow under
// Miri's interpreter, and the properties are memory-safety-neutral anyway.
#![cfg(not(miri))]

use proptest::prelude::*;
use ruru_flow::baseline::expiring::ExpiringTable;
use ruru_flow::table::FlowTable;
use ruru_nic::Timestamp;

const CAPACITY: usize = 24;
const TTL_NS: u64 = 5_000;

/// The hash the caller presents to [`FlowTable`]. `modulus` squeezes the
/// key space onto that many distinct hashes: `modulus == 1` puts every key
/// on one probe chain (pure key-compare resolution), large moduli behave
/// like a real RSS hash. The multiplier spreads the surviving values over
/// the full 32 bits so home buckets and tags both vary.
fn hash_for(key: u32, modulus: u32) -> u32 {
    (key % modulus).wrapping_mul(0x9e37_79b1)
}

/// One scripted operation against both tables.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u32),
    Remove(u32),
    Get(u32),
    /// Advance time by `dt` ns and run expiry.
    Expire(u16),
}

fn op_strategy(key_space: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..key_space).prop_map(Op::Insert),
        2 => (0..key_space).prop_map(Op::Remove),
        2 => (0..key_space).prop_map(Op::Get),
        1 => any::<u16>().prop_map(Op::Expire),
    ]
}

/// Drive both tables through `ops`, asserting every observable matches.
fn run_differential(ops: &[Op], modulus: u32) -> Result<(), TestCaseError> {
    let mut table: FlowTable<u32, u64> = FlowTable::new(CAPACITY, TTL_NS);
    let mut model: ExpiringTable<u32, u64> = ExpiringTable::new(CAPACITY, TTL_NS);
    let mut now_ns = 0u64;
    let mut next_value = 0u64;

    for &op in ops {
        // Every packet of a flow carries the same RSS hash; time moves
        // forward one tick per packet.
        now_ns += 1;
        let now = Timestamp::from_nanos(now_ns);
        match op {
            Op::Insert(key) => {
                next_value += 1;
                let a = table.insert(hash_for(key, modulus), key, next_value, now);
                let b = model.insert(key, next_value, now);
                prop_assert_eq!(a, b, "insert({}) diverged", key);
            }
            Op::Remove(key) => {
                let a = table.remove(hash_for(key, modulus), &key);
                let b = model.remove(&key);
                prop_assert_eq!(a, b, "remove({}) diverged", key);
            }
            Op::Get(key) => {
                let a = table.get(hash_for(key, modulus), &key).copied();
                let b = model.get(&key).copied();
                prop_assert_eq!(a, b, "get({}) diverged", key);
                let at_a = table.inserted_at(hash_for(key, modulus), &key);
                let at_b = model.inserted_at(&key);
                prop_assert_eq!(at_a, at_b, "inserted_at({}) diverged", key);
            }
            Op::Expire(dt) => {
                now_ns += dt as u64;
                let now = Timestamp::from_nanos(now_ns);
                let mut out_a: Vec<(u32, u64)> = Vec::new();
                let mut out_b: Vec<(u32, u64)> = Vec::new();
                table.expire(now, |k, v| out_a.push((k, v)));
                model.expire(now, |k, v| out_b.push((k, v)));
                // Same victims, same FIFO order.
                prop_assert_eq!(out_a, out_b, "expiry order diverged");
            }
        }
        prop_assert_eq!(table.len(), model.len());
        prop_assert_eq!(table.evictions(), model.evictions());
        prop_assert_eq!(table.expirations(), model.expirations());
    }

    // Final full-state audit: identical membership, values, and insertion
    // timestamps.
    let mut live_a: Vec<(u32, u64)> = table.iter().map(|(k, v)| (*k, *v)).collect();
    let mut live_b: Vec<(u32, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    live_a.sort_unstable();
    live_b.sort_unstable();
    prop_assert_eq!(live_a, live_b, "surviving entries diverged");
    Ok(())
}

proptest! {
    /// Realistic regime: plenty of distinct hashes, churn well past the
    /// capacity so evictions and expiry interleave with removals.
    #[test]
    fn matches_baseline_with_spread_hashes(
        ops in proptest::collection::vec(op_strategy(128), 1..400),
    ) {
        run_differential(&ops, 1 << 16)?;
    }

    /// Adversarial regime: every key collides onto a handful of probe
    /// chains (down to a single chain), so backward-shift deletion and
    /// full-key comparison carry all the correctness weight.
    #[test]
    fn matches_baseline_under_forced_collisions(
        ops in proptest::collection::vec(op_strategy(64), 1..300),
        modulus in 1u32..8,
    ) {
        run_differential(&ops, modulus)?;
    }

    /// SYN-flood churn: an endless stream of brand-new keys hammering
    /// capacity eviction, with occasional expiry sweeps.
    #[test]
    fn matches_baseline_under_flood(
        extra in proptest::collection::vec(any::<u16>(), 1..60),
    ) {
        let mut ops: Vec<Op> = Vec::new();
        let mut key = 0u32;
        for dt in extra {
            for _ in 0..16 {
                ops.push(Op::Insert(key));
                key += 1;
            }
            ops.push(Op::Expire(dt));
        }
        run_differential(&ops, 1 << 16)?;
    }

    /// Burst lookups observe exactly what scalar lookups observe, and
    /// burst inserts leave the table in exactly the state sequential
    /// inserts produce.
    #[test]
    fn burst_ops_match_scalar_ops(
        keys in proptest::collection::vec(0u32..64, 1..200),
        probes in proptest::collection::vec(0u32..64, 1..64),
    ) {
        let mut burst: FlowTable<u32, u64> = FlowTable::new(CAPACITY, TTL_NS);
        let mut scalar: FlowTable<u32, u64> = FlowTable::new(CAPACITY, TTL_NS);
        let modulus = 1u32 << 16;

        let mut staged: Vec<(u32, u32, u64)> = Vec::new();
        let mut outcomes = Vec::new();
        let mut t = 0u64;
        for chunk in keys.chunks(16) {
            t += 1;
            let now = Timestamp::from_nanos(t);
            staged.clear();
            for (i, &k) in chunk.iter().enumerate() {
                staged.push((hash_for(k, modulus), k, i as u64));
            }
            let scalar_outcomes: Vec<_> = staged
                .iter()
                .map(|&(h, k, v)| scalar.insert(h, k, v, now))
                .collect();
            burst.insert_burst(&mut staged, now, &mut outcomes);
            prop_assert_eq!(&outcomes, &scalar_outcomes);
        }

        let probe_pairs: Vec<(u32, u32)> =
            probes.iter().map(|&k| (hash_for(k, modulus), k)).collect();
        let mut found = Vec::new();
        burst.lookup_burst(&probe_pairs, &mut found);
        prop_assert_eq!(found.len(), probe_pairs.len());
        for (&(h, k), got) in probe_pairs.iter().zip(found) {
            prop_assert_eq!(got.copied(), scalar.get(h, &k).copied());
        }
    }
}
