//! The open-addressing core of [`FlowTable`]: probe, insert with
//! backward-shift deletion, and the intrusive FIFO threaded through slab
//! links. Burst (bulk) operations live in the sibling `burst` module.
//!
//! Every method on the hot path is total: slab and bucket accesses go
//! through `get`/`get_mut` with benign fallbacks, probes are bounded by the
//! bucket count, and there is no indexing, division or unwrap anywhere —
//! `cargo xtask panic-check` roots here.

use super::InsertOutcome;
use ruru_nic::Timestamp;

/// Sentinel for "no slab slot": empty bucket, or end of a FIFO link.
const NIL: u32 = u32::MAX;

/// One slab entry. `prev`/`next` are the intrusive FIFO links (insertion
/// order, `NIL`-terminated); `hash` is retained so deletion can re-derive
/// the entry's home bucket without touching the key.
struct Slot<K, V> {
    key: K,
    value: V,
    hash: u32,
    inserted: Timestamp,
    prev: u32,
    next: u32,
}

/// What a combined duplicate-check/placement probe found.
enum Probe {
    /// The key is present, in this slab slot.
    Present,
    /// The key is absent; this is the first empty bucket on its chain.
    Vacant(usize),
    /// The probe wrapped the whole bucket array without finding an empty
    /// bucket. Unreachable while the ≤ 50 % load invariant holds; callers
    /// treat it as a dropped operation rather than a panic.
    Exhausted,
}

/// A bounded open-addressing hash table keyed by a caller-supplied 32-bit
/// hash (the NIC's RSS hash), with FIFO time-based expiry.
///
/// Collisions on the full 32-bit hash are resolved by comparing keys, so
/// correctness never depends on hash quality — only speed does. The caller
/// must present the *same* hash for the same key on every operation (the
/// tracker guarantees this: symmetric Toeplitz hashes are
/// direction-invariant, and the software fallback hashes the canonical
/// key).
pub struct FlowTable<K, V> {
    /// 1-byte tags, parallel to `buckets`. Only meaningful where the
    /// bucket is occupied.
    tags: Box<[u8]>,
    /// Slab index per bucket, `NIL` when empty. Power-of-two length.
    buckets: Box<[u32]>,
    /// Entry storage. Capacity is reserved up front (never reallocated);
    /// the vector *grows* lazily toward it so constructing a large table
    /// doesn't write hundreds of megabytes of `None`s — pages are touched
    /// the first time a slot is used.
    slab: Vec<Option<Slot<K, V>>>,
    /// Stack of freed slab indices (capacity reserved up front); fresh
    /// slots come from growing `slab` until it reaches `capacity`.
    free: Vec<u32>,
    /// `buckets.len() - 1`, for masked probe arithmetic.
    mask: usize,
    capacity: usize,
    ttl_ns: u64,
    len: usize,
    /// Oldest entry (next to expire/evict), `NIL` when empty.
    head: u32,
    /// Newest entry, `NIL` when empty.
    tail: u32,
    evictions: u64,
    expirations: u64,
}

#[inline]
fn tag_of(hash: u32) -> u8 {
    // Top byte: independent of the low bits consumed by the bucket mask,
    // so entries sharing a bucket neighborhood still differ in tag.
    (hash >> 24) as u8
}

impl<K: Eq, V> FlowTable<K, V> {
    /// A table holding at most `capacity` entries, each expiring `ttl_ns`
    /// after insertion. All storage is allocated here, once.
    pub fn new(capacity: usize, ttl_ns: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            capacity < (u32::MAX as usize) / 2,
            "capacity must fit u32 slab indices"
        );
        // ≥ 2 × capacity buckets keeps load ≤ 50 %, which both bounds probe
        // lengths and guarantees every chain terminates at an empty bucket.
        let nbuckets = capacity
            .saturating_mul(2)
            .max(8)
            .next_power_of_two();
        FlowTable {
            tags: vec![0u8; nbuckets].into_boxed_slice(),
            buckets: vec![NIL; nbuckets].into_boxed_slice(),
            slab: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            mask: nbuckets - 1,
            capacity,
            ttl_ns,
            len: 0,
            head: NIL,
            tail: NIL,
            evictions: 0,
            expirations: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table has no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of live entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries force-evicted due to capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Entries removed by TTL expiry.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// The home bucket of a hash.
    #[inline]
    pub(super) fn home(&self, hash: u32) -> usize {
        (hash as usize) & self.mask
    }

    /// The slab index stored in bucket `b` (`NIL` if empty or out of
    /// range — the latter cannot happen with masked indices).
    #[inline]
    pub(super) fn bucket(&self, b: usize) -> u32 {
        self.buckets.get(b).copied().unwrap_or(NIL)
    }

    #[inline]
    pub(super) fn tag_at(&self, b: usize) -> u8 {
        self.tags.get(b).copied().unwrap_or(0)
    }

    /// Borrow the bucket and tag cells at `b`, for prefetch staging.
    #[inline]
    pub(super) fn probe_lines(&self, b: usize) -> (Option<&u32>, Option<&u8>) {
        (self.buckets.get(b), self.tags.get(b))
    }

    #[inline]
    fn set_bucket(&mut self, b: usize, slot: u32, tag: u8) {
        if let Some(cell) = self.buckets.get_mut(b) {
            *cell = slot;
        }
        if let Some(cell) = self.tags.get_mut(b) {
            *cell = tag;
        }
    }

    #[inline]
    fn slot(&self, s: u32) -> Option<&Slot<K, V>> {
        self.slab.get(s as usize).and_then(|o| o.as_ref())
    }

    #[inline]
    fn slot_mut(&mut self, s: u32) -> Option<&mut Slot<K, V>> {
        self.slab.get_mut(s as usize).and_then(|o| o.as_mut())
    }

    /// Find the key's bucket and slab slot, tag-filtered linear probe.
    fn find(&self, hash: u32, key: &K) -> Option<(usize, u32)> {
        let tag = tag_of(hash);
        let mut b = self.home(hash);
        // Bounded by the bucket count for totality; in practice the ≤ 50 %
        // load factor ends every chain at an empty bucket much sooner.
        for _ in 0..=self.mask {
            let s = self.bucket(b);
            if s == NIL {
                // account-ok: probe miss — the key is not in the table; the
                // caller decides what a miss means and accounts there.
                return None;
            }
            if self.tag_at(b) == tag {
                if let Some(slot) = self.slot(s) {
                    if slot.hash == hash && slot.key == *key {
                        return Some((b, s));
                    }
                }
            }
            b = b.wrapping_add(1) & self.mask;
        }
        None
    }

    /// Combined duplicate-check / placement probe for insert.
    fn probe(&self, hash: u32, key: &K) -> Probe {
        let tag = tag_of(hash);
        let mut b = self.home(hash);
        for _ in 0..=self.mask {
            let s = self.bucket(b);
            if s == NIL {
                return Probe::Vacant(b);
            }
            if self.tag_at(b) == tag {
                if let Some(slot) = self.slot(s) {
                    if slot.hash == hash && slot.key == *key {
                        return Probe::Present;
                    }
                }
            }
            b = b.wrapping_add(1) & self.mask;
        }
        Probe::Exhausted
    }

    /// Insert `value` under `(hash, key)` at time `now` if absent. Never
    /// replaces an existing entry (the tracker keeps the *first* SYN
    /// timestamp). At capacity the oldest entry is evicted first.
    pub fn insert(&mut self, hash: u32, key: K, value: V, now: Timestamp) -> InsertOutcome {
        let mut evicted = false;
        let bucket = match self.probe(hash, &key) {
            Probe::Present => return InsertOutcome::AlreadyPresent,
            Probe::Vacant(b) => {
                if self.len >= self.capacity {
                    evicted = self.evict_oldest();
                    // The eviction's backward shift may have compacted a
                    // displaced entry into `b`; re-probe for the hole the
                    // removal opened.
                    match self.probe(hash, &key) {
                        Probe::Vacant(b2) => b2,
                        // Unreachable: the key was absent and eviction only
                        // removes entries. Dropping the insert keeps the
                        // path total.
                        Probe::Present | Probe::Exhausted => {
                            return InsertOutcome::AlreadyPresent
                        }
                    }
                } else {
                    b
                }
            }
            // Unreachable at ≤ 50 % load; drop rather than abort.
            Probe::Exhausted => return InsertOutcome::AlreadyPresent,
        };
        let Some(slot_idx) = self.alloc_slot() else {
            // Unreachable: len < capacity ⇒ a fresh or freed slot exists.
            return InsertOutcome::AlreadyPresent;
        };
        self.set_bucket(bucket, slot_idx, tag_of(hash));
        if let Some(cell) = self.slab.get_mut(slot_idx as usize) {
            *cell = Some(Slot {
                key,
                value,
                hash,
                inserted: now,
                prev: self.tail,
                next: NIL,
            });
        }
        // FIFO: append at the tail (newest).
        let old_tail = self.tail;
        if old_tail == NIL {
            self.head = slot_idx;
        } else if let Some(t) = self.slot_mut(old_tail) {
            t.next = slot_idx;
        }
        self.tail = slot_idx;
        self.len = self.len.saturating_add(1);
        if evicted {
            InsertOutcome::InsertedWithEviction
        } else {
            InsertOutcome::Inserted
        }
    }

    /// Hand out a slab slot: a previously freed one, else a fresh one
    /// grown within the reserved capacity (no reallocation, ever).
    /// `None` only if every slot is live — callers evict first.
    fn alloc_slot(&mut self) -> Option<u32> {
        if let Some(s) = self.free.pop() {
            return Some(s);
        }
        if self.slab.len() < self.capacity {
            self.slab.push(None);
            return Some(self.slab.len().saturating_sub(1) as u32);
        }
        None
    }

    /// Get the live entry for `(hash, key)`.
    pub fn get(&self, hash: u32, key: &K) -> Option<&V> {
        // account-ok: lookup miss propagation; no record is held here.
        let (_, s) = self.find(hash, key)?;
        self.slot(s).map(|slot| &slot.value)
    }

    /// Get a mutable reference to the live entry for `(hash, key)`.
    pub fn get_mut(&mut self, hash: u32, key: &K) -> Option<&mut V> {
        // account-ok: lookup miss propagation; no record is held here.
        let (_, s) = self.find(hash, key)?;
        self.slot_mut(s).map(|slot| &mut slot.value)
    }

    /// When the live entry for `(hash, key)` was inserted.
    pub fn inserted_at(&self, hash: u32, key: &K) -> Option<Timestamp> {
        let (_, s) = self.find(hash, key)?;
        self.slot(s).map(|slot| slot.inserted)
    }

    /// Remove and return the entry for `(hash, key)`.
    pub fn remove(&mut self, hash: u32, key: &K) -> Option<V> {
        // account-ok: removing an absent key is a no-op, not a loss.
        let (_, s) = self.find(hash, key)?;
        // account-ok: `find` just returned `s`, so detach cannot miss; the
        // detached value is returned to the caller either way.
        let slot = self.detach(s)?;
        self.free.push(s);
        Some(slot.value)
    }

    /// Drop the oldest live entry; returns whether anything was evicted.
    fn evict_oldest(&mut self) -> bool {
        let s = self.head;
        if s == NIL {
            return false;
        }
        if self.detach(s).is_some() {
            self.free.push(s);
            self.evictions = self.evictions.saturating_add(1);
            true
        } else {
            false
        }
    }

    /// Remove all entries older than the TTL at time `now`, invoking
    /// `on_expire` for each in insertion (= expiry) order.
    pub fn expire(&mut self, now: Timestamp, mut on_expire: impl FnMut(K, V)) {
        loop {
            let s = self.head;
            if s == NIL {
                return;
            }
            // A missing head slot would be a broken invariant; treating it
            // as "not old enough" terminates rather than loops.
            let old_enough = self
                .slot(s)
                .is_some_and(|slot| now.saturating_nanos_since(slot.inserted) >= self.ttl_ns);
            if !old_enough {
                return;
            }
            let Some(slot) = self.detach(s) else {
                return;
            };
            self.free.push(s);
            self.expirations = self.expirations.saturating_add(1);
            on_expire(slot.key, slot.value);
        }
    }

    /// Iterate over live `(key, value)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slab
            .iter()
            .filter_map(|o| o.as_ref())
            .map(|slot| (&slot.key, &slot.value))
    }

    /// Unlink slab slot `s` from the bucket array (backward-shift) and the
    /// FIFO list, take it out of the slab, and decrement `len`. Does NOT
    /// push `s` onto the free stack — callers do, so eviction can reuse the
    /// slot directly.
    fn detach(&mut self, s: u32) -> Option<Slot<K, V>> {
        let (hash, prev, next) = {
            // account-ok: detaching an already-vacant slot is a no-op.
            let slot = self.slot(s)?;
            (slot.hash, slot.prev, slot.next)
        };
        self.delete_bucket_of(hash, s);
        // FIFO unlink: O(1), no scanning, no generations.
        if prev == NIL {
            self.head = next;
        } else if let Some(p) = self.slot_mut(prev) {
            p.next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else if let Some(n) = self.slot_mut(next) {
            n.prev = prev;
        }
        let slot = self.slab.get_mut(s as usize).and_then(|o| o.take());
        self.len = self.len.saturating_sub(1);
        slot
    }

    /// Clear the bucket pointing at slab slot `s`, then backward-shift the
    /// probe chain so it stays gapless (no tombstones).
    fn delete_bucket_of(&mut self, hash: u32, s: u32) {
        // Locate the bucket holding `s` by probing from the hash's home.
        let mut b = self.home(hash);
        let mut found = false;
        for _ in 0..=self.mask {
            let cur = self.bucket(b);
            if cur == s {
                found = true;
                // account-ok: probe-loop exit on success; bucket bookkeeping
                // only, no record is held.
                break;
            }
            if cur == NIL {
                // account-ok: chain ended without `s`: nothing to clear.
                break;
            }
            b = b.wrapping_add(1) & self.mask;
        }
        if !found {
            return;
        }
        // Backward-shift deletion (Knuth 6.4 algorithm R): repeatedly pull
        // the next entry whose home bucket is at or before the hole into
        // the hole. An entry at bucket `j` with home `k` may fill hole `i`
        // iff its probe distance covers the hole:
        //   (j - k) mod nbuckets >= (j - i) mod nbuckets.
        let mut i = b;
        let mut j = b;
        loop {
            self.set_bucket(i, NIL, 0);
            loop {
                j = j.wrapping_add(1) & self.mask;
                let cur = self.bucket(j);
                if cur == NIL {
                    return; // chain ended: hole is final
                }
                let home = self.slot(cur).map_or(j, |slot| self.home(slot.hash));
                let dist_to_hole = j.wrapping_sub(i) & self.mask;
                let dist_from_home = j.wrapping_sub(home) & self.mask;
                if dist_from_home >= dist_to_hole {
                    // account-ok: backward-shift scan exit — the entry moves
                    // buckets; nothing is deleted here.
                    break;
                }
            }
            let (moved, tag) = (self.bucket(j), self.tag_at(j));
            self.set_bucket(i, moved, tag);
            i = j;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    /// A well-spread test hash.
    fn h(k: u32) -> u32 {
        k.wrapping_mul(0x9e37_79b1)
    }

    #[test]
    fn insert_get_remove() {
        let mut tbl: FlowTable<u32, &str> = FlowTable::new(4, 1_000_000);
        assert_eq!(tbl.insert(h(1), 1, "a", t(0)), InsertOutcome::Inserted);
        assert_eq!(tbl.get(h(1), &1), Some(&"a"));
        assert_eq!(tbl.inserted_at(h(1), &1), Some(t(0)));
        *tbl.get_mut(h(1), &1).unwrap() = "b";
        assert_eq!(tbl.remove(h(1), &1), Some("b"));
        assert_eq!(tbl.get(h(1), &1), None);
        assert!(tbl.is_empty());
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let mut tbl: FlowTable<u32, u32> = FlowTable::new(4, 1_000_000);
        tbl.insert(h(1), 1, 100, t(0));
        assert_eq!(tbl.insert(h(1), 1, 200, t(1)), InsertOutcome::AlreadyPresent);
        assert_eq!(tbl.get(h(1), &1), Some(&100));
        assert_eq!(tbl.len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut tbl: FlowTable<u32, u32> = FlowTable::new(2, u64::MAX);
        tbl.insert(h(1), 1, 1, t(0));
        tbl.insert(h(2), 2, 2, t(1));
        assert_eq!(
            tbl.insert(h(3), 3, 3, t(2)),
            InsertOutcome::InsertedWithEviction
        );
        assert_eq!(tbl.len(), 2);
        assert_eq!(tbl.get(h(1), &1), None, "oldest evicted");
        assert_eq!(tbl.get(h(2), &2), Some(&2));
        assert_eq!(tbl.get(h(3), &3), Some(&3));
        assert_eq!(tbl.evictions(), 1);
    }

    #[test]
    fn eviction_follows_live_fifo_order() {
        let mut tbl: FlowTable<u32, u32> = FlowTable::new(2, u64::MAX);
        tbl.insert(h(1), 1, 1, t(0));
        tbl.insert(h(2), 2, 2, t(1));
        tbl.remove(h(1), &1); // unlinks in O(1); no stale front to skip
        tbl.insert(h(3), 3, 3, t(2)); // no eviction needed: len was 1
        assert_eq!(tbl.len(), 2);
        // Next insert must evict key 2 (the oldest live entry).
        tbl.insert(h(4), 4, 4, t(3));
        assert_eq!(tbl.get(h(2), &2), None);
        assert_eq!(tbl.get(h(3), &3), Some(&3));
        assert_eq!(tbl.evictions(), 1);
    }

    #[test]
    fn expiry_removes_old_entries_in_order() {
        let mut tbl: FlowTable<u32, u32> = FlowTable::new(8, 1_000); // 1 µs TTL
        tbl.insert(h(1), 1, 1, Timestamp::from_nanos(0));
        tbl.insert(h(2), 2, 2, Timestamp::from_nanos(500));
        tbl.insert(h(3), 3, 3, Timestamp::from_nanos(1500));
        let mut expired = Vec::new();
        tbl.expire(Timestamp::from_nanos(1600), |k, v| expired.push((k, v)));
        assert_eq!(expired, vec![(1, 1), (2, 2)]);
        assert_eq!(tbl.len(), 1);
        assert_eq!(tbl.expirations(), 2);
        tbl.expire(Timestamp::from_nanos(2500), |k, _| expired.push((k, 0)));
        assert_eq!(expired.last(), Some(&(3, 0)));
        assert!(tbl.is_empty());
    }

    #[test]
    fn expire_skips_removed_entries() {
        let mut tbl: FlowTable<u32, u32> = FlowTable::new(8, 1_000);
        tbl.insert(h(1), 1, 1, t(0));
        tbl.remove(h(1), &1);
        let mut count = 0;
        tbl.expire(t(10), |_, _| count += 1);
        assert_eq!(count, 0);
        assert_eq!(tbl.expirations(), 0);
    }

    #[test]
    fn reinsert_after_remove_expires_at_new_time() {
        let mut tbl: FlowTable<u32, u32> = FlowTable::new(8, 1_000);
        tbl.insert(h(1), 1, 1, Timestamp::from_nanos(0));
        tbl.remove(h(1), &1);
        tbl.insert(h(1), 1, 2, Timestamp::from_nanos(900));
        let mut expired = Vec::new();
        tbl.expire(Timestamp::from_nanos(1000), |k, v| expired.push((k, v)));
        assert!(expired.is_empty());
        assert_eq!(tbl.get(h(1), &1), Some(&2));
        tbl.expire(Timestamp::from_nanos(1900), |k, v| expired.push((k, v)));
        assert_eq!(expired, vec![(1, 2)]);
    }

    #[test]
    fn iter_visits_live_entries() {
        let mut tbl: FlowTable<u32, u32> = FlowTable::new(8, 1_000);
        tbl.insert(h(1), 1, 10, t(0));
        tbl.insert(h(2), 2, 20, t(0));
        tbl.remove(h(1), &1);
        let mut items: Vec<(u32, u32)> = tbl.iter().map(|(k, v)| (*k, *v)).collect();
        items.sort_unstable();
        assert_eq!(items, vec![(2, 20)]);
    }

    #[test]
    fn flood_is_bounded() {
        let mut tbl: FlowTable<u32, ()> = FlowTable::new(1000, u64::MAX);
        for i in 0..100_000u32 {
            tbl.insert(h(i), i, (), t(i as u64));
        }
        assert_eq!(tbl.len(), 1000);
        assert_eq!(tbl.evictions(), 99_000);
        assert!(tbl.get(h(99_999), &99_999).is_some());
        assert!(tbl.get(h(0), &0).is_none());
    }

    #[test]
    fn full_hash_collisions_resolved_by_key_compare() {
        // Same 32-bit hash, different keys: worst case for any tag scheme.
        const H: u32 = 0x4242_4242;
        let mut tbl: FlowTable<u32, u32> = FlowTable::new(8, u64::MAX);
        for k in 0..5u32 {
            assert_eq!(tbl.insert(H, k, k * 10, t(k as u64)), InsertOutcome::Inserted);
        }
        for k in 0..5u32 {
            assert_eq!(tbl.get(H, &k), Some(&(k * 10)));
        }
        // Remove from the middle of the probe chain; the backward shift
        // must keep the rest findable.
        assert_eq!(tbl.remove(H, &2), Some(20));
        for k in [0u32, 1, 3, 4] {
            assert_eq!(tbl.get(H, &k), Some(&(k * 10)), "key {k} after shift");
        }
        assert_eq!(tbl.get(H, &2), None);
    }

    #[test]
    fn backward_shift_survives_wrapping_chains() {
        // Hashes that all land on the last bucket force the probe chain to
        // wrap around the array end, exercising the modular distance math.
        let mut tbl: FlowTable<u32, u32> = FlowTable::new(8, u64::MAX);
        let nbuckets = 16u32; // capacity 8 → 16 buckets
        let last = nbuckets - 1;
        // Distinct hashes, same home bucket (differ above the mask).
        let hs: Vec<u32> = (0..5u32).map(|i| last | (i << 8)).collect();
        for (k, &hh) in hs.iter().enumerate() {
            tbl.insert(hh, k as u32, k as u32, t(k as u64));
        }
        // Delete the chain head; everyone shifts back across the wrap.
        assert_eq!(tbl.remove(hs[0], &0), Some(0));
        for (k, &hh) in hs.iter().enumerate().skip(1) {
            assert_eq!(tbl.get(hh, &(k as u32)), Some(&(k as u32)));
        }
        // And a fresh insert reuses the reclaimed space.
        assert_eq!(tbl.insert(last, 99, 99, t(9)), InsertOutcome::Inserted);
        assert_eq!(tbl.get(last, &99), Some(&99));
    }

    #[test]
    fn interleaved_churn_keeps_table_consistent() {
        // Insert/remove churn at full capacity with a deliberately poor
        // hash (many collisions) — shapes the SYN-flood case E9 measures.
        let mut tbl: FlowTable<u32, u32> = FlowTable::new(64, u64::MAX);
        let bad_hash = |k: u32| (k & 7).wrapping_mul(0x0101_0101);
        for k in 0..64u32 {
            tbl.insert(bad_hash(k), k, k, t(k as u64));
        }
        assert_eq!(tbl.len(), 64);
        for k in (0..64u32).step_by(2) {
            assert_eq!(tbl.remove(bad_hash(k), &k), Some(k));
        }
        for k in (1..64u32).step_by(2) {
            assert_eq!(tbl.get(bad_hash(k), &k), Some(&k), "odd key {k} survives");
        }
        for k in 64..96u32 {
            assert_eq!(tbl.insert(bad_hash(k), k, k, t(k as u64)), InsertOutcome::Inserted);
        }
        assert_eq!(tbl.len(), 64);
        for k in 64..96u32 {
            assert_eq!(tbl.get(bad_hash(k), &k), Some(&k));
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = FlowTable::<u8, u8>::new(0, 1);
    }
}
