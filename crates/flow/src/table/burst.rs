//! Burst (bulk) operations over [`FlowTable`], mirroring DPDK's
//! `rte_hash_lookup_bulk`: a software-pipelined first stage touches every
//! probe's home bucket line, then the probe stage runs against warmed
//! lines.
//!
//! On x86_64 the staging issues real `prefetcht0` hints (DPDK's
//! `rte_prefetch0`), so the bucket/tag cache lines for the whole burst are
//! in flight before the first full probe executes, at the cost of one
//! no-fault hint instruction per probe. Elsewhere (and under Miri, which
//! does not model the intrinsic) it falls back to `core::hint::black_box`
//! forced loads — the compiler must materialize those, buying the same
//! memory-level parallelism portably.

use super::store::FlowTable;
use super::InsertOutcome;
use ruru_nic::Timestamp;

impl<K: Eq, V> FlowTable<K, V> {
    /// Stage the home bucket of `hash` into cache. Cheap enough to call
    /// once per packet at the head of a burst loop.
    #[inline]
    pub fn prefetch(&self, hash: u32) {
        let b = self.home(hash);
        let (bucket, tag) = self.probe_lines(b);
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            if let (Some(bucket), Some(tag)) = (bucket, tag) {
                // SAFETY: `_mm_prefetch` is a pure cache hint — it performs
                // no program-visible memory access and cannot fault even on
                // invalid addresses — and both pointers come from live
                // borrows of this table.
                unsafe {
                    _mm_prefetch::<_MM_HINT_T0>((bucket as *const u32).cast());
                    _mm_prefetch::<_MM_HINT_T0>((tag as *const u8).cast());
                }
            }
        }
        #[cfg(not(all(target_arch = "x86_64", not(miri))))]
        {
            // Forced loads of the bucket and tag lines; `black_box` keeps
            // the optimizer from discarding them. Tags are u8, so one line
            // covers the whole probe neighborhood.
            core::hint::black_box(bucket.copied());
            core::hint::black_box(tag.copied());
        }
    }

    /// Look up a whole burst: `out` is cleared and receives one
    /// `Option<&V>` per `(hash, key)` probe, in order.
    pub fn lookup_burst<'t>(&'t self, probes: &[(u32, K)], out: &mut Vec<Option<&'t V>>) {
        out.clear();
        // Stage 1: issue every home-bucket load up front.
        for (hash, _) in probes {
            self.prefetch(*hash);
        }
        // Stage 2: full tag-filtered probes against warmed lines.
        for (hash, key) in probes {
            out.push(self.get(*hash, key));
        }
    }

    /// Insert a whole burst, draining `staged`. `outcomes` is cleared and
    /// receives one [`InsertOutcome`] per staged `(hash, key, value)`, in
    /// order. Duplicate and capacity semantics are exactly those of
    /// [`FlowTable::insert`] applied sequentially.
    pub fn insert_burst(
        &mut self,
        staged: &mut Vec<(u32, K, V)>,
        now: Timestamp,
        outcomes: &mut Vec<InsertOutcome>,
    ) {
        outcomes.clear();
        for (hash, _, _) in staged.iter() {
            self.prefetch(*hash);
        }
        for (hash, key, value) in staged.drain(..) {
            outcomes.push(self.insert(hash, key, value, now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(k: u32) -> u32 {
        k.wrapping_mul(0x9e37_79b1)
    }

    #[test]
    fn lookup_burst_matches_scalar_gets() {
        let mut tbl: FlowTable<u32, u32> = FlowTable::new(64, u64::MAX);
        for k in 0..32u32 {
            tbl.insert(h(k), k, k + 100, Timestamp::from_nanos(k as u64));
        }
        let probes: Vec<(u32, u32)> = (0..48u32).map(|k| (h(k), k)).collect();
        let mut out = Vec::new();
        tbl.lookup_burst(&probes, &mut out);
        assert_eq!(out.len(), probes.len());
        for (i, (hash, key)) in probes.iter().enumerate() {
            assert_eq!(out[i], tbl.get(*hash, key), "probe {i}");
        }
        // Hits for the inserted half, misses for the rest.
        assert_eq!(out.iter().filter(|o| o.is_some()).count(), 32);
    }

    #[test]
    fn insert_burst_matches_sequential_inserts() {
        let mut burst_tbl: FlowTable<u32, u32> = FlowTable::new(16, u64::MAX);
        let mut seq_tbl: FlowTable<u32, u32> = FlowTable::new(16, u64::MAX);
        // 24 inserts into capacity 16, with one duplicate: exercises
        // AlreadyPresent and InsertedWithEviction inside one burst.
        let keys: Vec<u32> = (0..24u32).map(|k| if k == 5 { 4 } else { k }).collect();
        let mut staged: Vec<(u32, u32, u32)> = keys.iter().map(|&k| (h(k), k, k)).collect();
        let now = Timestamp::from_nanos(1);
        let mut outcomes = Vec::new();
        burst_tbl.insert_burst(&mut staged, now, &mut outcomes);
        assert!(staged.is_empty(), "burst drains its staging");
        let expected: Vec<InsertOutcome> = keys.iter().map(|&k| seq_tbl.insert(h(k), k, k, now)).collect();
        assert_eq!(outcomes, expected);
        assert_eq!(burst_tbl.len(), seq_tbl.len());
        assert_eq!(burst_tbl.evictions(), seq_tbl.evictions());
        for &k in &keys {
            assert_eq!(burst_tbl.get(h(k), &k), seq_tbl.get(h(k), &k));
        }
    }

    #[test]
    fn prefetch_is_a_pure_read() {
        let mut tbl: FlowTable<u32, u32> = FlowTable::new(8, u64::MAX);
        tbl.insert(h(1), 1, 1, Timestamp::ZERO);
        tbl.prefetch(h(1));
        tbl.prefetch(h(999)); // absent key: still fine
        assert_eq!(tbl.len(), 1);
        assert_eq!(tbl.get(h(1), &1), Some(&1));
    }
}
