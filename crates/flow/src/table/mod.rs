//! The RSS-native per-queue flow store: a slab-backed open-addressing hash
//! table with intrusive FIFO expiry and burst (bulk) operations.
//!
//! The paper tracks handshakes in "hash tables indexed by the RSS hash" —
//! the NIC already computed a 32-bit symmetric Toeplitz hash for every
//! packet (to pick its queue), so re-hashing the 4-tuple with SipHash on
//! every table operation is pure waste. [`FlowTable`] is keyed directly by
//! that carried hash, DPDK `rte_hash`-style:
//!
//! * **Bucket array** — power-of-two length (≥ 2 × capacity, so load stays
//!   ≤ 50 % and every probe chain ends at an empty bucket), linear probing,
//!   masked indexing. Each bucket holds a slab index plus a **1-byte tag**
//!   (the hash's top byte) checked before any slab access: a probe touches
//!   only the compact tag/bucket lines until the tag matches, and a full
//!   `FlowKey` compare then resolves genuine collisions.
//! * **Slab** — entries live in a fixed `capacity`-sized slab; free slots
//!   are a preallocated stack. No entry ever moves in memory, so the FIFO
//!   can thread raw `u32` links through the slab: an **intrusive doubly
//!   linked list** in insertion order replaces the baseline's `VecDeque` +
//!   generation counters. Handshake TTLs are uniform, so insertion order
//!   *is* expiry order; removal unlinks in O(1) with no stale ghosts to
//!   skip.
//! * **Deletion** — backward-shift (Knuth), not tombstones: probe chains
//!   stay gapless, lookups never slow down under churn, and a SYN flood's
//!   insert/evict cycling cannot poison the table.
//! * **Burst ops** — [`FlowTable::lookup_burst`] / [`FlowTable::insert_burst`]
//!   mirror `rte_hash_lookup_bulk`: a software-pipelined first stage touches
//!   every probe's home bucket line (via `core::hint::black_box`, the
//!   portable prefetch), then the probe stage runs against warmed lines.
//!
//! After construction the table performs **zero heap allocation**: insert,
//! lookup, remove, evict and expire all work within the preallocated slab,
//! bucket array and free stack (asserted by the counting-allocator test in
//! `tests/alloc_steady_state.rs`).
//!
//! Invariants (checked by the differential proptest against the baseline
//! [`crate::baseline::expiring::ExpiringTable`]) are documented in
//! DESIGN.md §11.

mod burst;
mod store;

pub use store::FlowTable;

/// The outcome of an insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// A fresh entry was created.
    Inserted,
    /// A fresh entry was created and the oldest entry was evicted for room.
    InsertedWithEviction,
    /// An entry with this key already existed; it was left untouched.
    AlreadyPresent,
}
