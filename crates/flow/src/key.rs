//! Direction-normalized flow keys.
//!
//! Ruru's hash tables must be addressable from *both* directions of a
//! connection: the SYN arrives as `(client, server)` and the SYN-ACK as
//! `(server, client)`. A [`FlowKey`] stores the 4-tuple in a canonical
//! order (smaller endpoint first) and [`FlowKey::from_tuple`] additionally
//! reports which [`Direction`] the observed packet travelled relative to
//! that canonical order.

use ruru_wire::IpAddress;

/// Which way a packet travelled relative to its flow's canonical key order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From the canonical first endpoint to the second.
    Forward,
    /// From the canonical second endpoint to the first.
    Reverse,
}

impl Direction {
    /// The opposite direction.
    pub fn flipped(&self) -> Direction {
        match self {
            Direction::Forward => Direction::Reverse,
            Direction::Reverse => Direction::Forward,
        }
    }
}

/// A canonical (direction-independent) TCP flow key.
///
/// Endpoints are ordered by `(address, port)`; the same physical connection
/// always produces the same key regardless of packet direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// The lexicographically smaller endpoint.
    pub a: (IpAddress, u16),
    /// The lexicographically larger endpoint.
    pub b: (IpAddress, u16),
}

impl FlowKey {
    /// Build the canonical key for a packet seen as `src → dst`, returning
    /// the direction the packet travelled relative to the canonical order.
    pub fn from_tuple(
        src: IpAddress,
        dst: IpAddress,
        src_port: u16,
        dst_port: u16,
    ) -> (FlowKey, Direction) {
        let s = (src, src_port);
        let d = (dst, dst_port);
        if s <= d {
            (FlowKey { a: s, b: d }, Direction::Forward)
        } else {
            (FlowKey { a: d, b: s }, Direction::Reverse)
        }
    }

    /// A cheap direction-invariant hash of the canonical key: the software
    /// fallback for packets carrying no NIC RSS hash (`rss_hash == 0`,
    /// e.g. raw `classify` callers and generator-driven tests).
    ///
    /// Both directions of a connection canonicalize to the same key, so
    /// they hash identically — the same guarantee the symmetric Toeplitz
    /// key gives the hardware hash. FNV-1a over both endpoints, finished
    /// with an avalanche so the low bits (consumed by the table's bucket
    /// mask) are well mixed.
    pub fn mix_hash(&self) -> u32 {
        let mut h: u32 = 0x811c_9dc5;
        for bytes in [
            self.a.0.as_u128().to_be_bytes(),
            self.b.0.as_u128().to_be_bytes(),
        ] {
            for &byte in bytes.iter() {
                h = (h ^ byte as u32).wrapping_mul(0x0100_0193);
            }
        }
        for port in [self.a.1, self.b.1] {
            for &byte in port.to_be_bytes().iter() {
                h = (h ^ byte as u32).wrapping_mul(0x0100_0193);
            }
        }
        // Final avalanche (xorshift-multiply) for bucket-mask quality.
        h ^= h >> 16;
        h = h.wrapping_mul(0x7feb_352d);
        h ^= h >> 15;
        h
    }

    /// The `(src, dst, src_port, dst_port)` tuple as seen travelling in
    /// `dir`.
    pub fn as_seen(&self, dir: Direction) -> (IpAddress, IpAddress, u16, u16) {
        match dir {
            Direction::Forward => (self.a.0, self.b.0, self.a.1, self.b.1),
            Direction::Reverse => (self.b.0, self.a.0, self.b.1, self.a.1),
        }
    }
}

impl core::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{} <-> {}:{}",
            self.a.0, self.a.1, self.b.0, self.b.1
        )
    }
}

#[cfg(test)]
mod tests {
    // Display/ToString in assertions is fine; the ban targets hot paths.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use ruru_wire::ipv4;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> IpAddress {
        IpAddress::V4(ipv4::Address([a, b, c, d]))
    }

    #[test]
    fn both_directions_share_a_key() {
        let (k1, d1) = FlowKey::from_tuple(ip(10, 0, 0, 1), ip(10, 0, 0, 2), 40000, 443);
        let (k2, d2) = FlowKey::from_tuple(ip(10, 0, 0, 2), ip(10, 0, 0, 1), 443, 40000);
        assert_eq!(k1, k2);
        assert_ne!(d1, d2);
        assert_eq!(d1.flipped(), d2);
    }

    #[test]
    fn same_hosts_different_ports_differ() {
        let (k1, _) = FlowKey::from_tuple(ip(10, 0, 0, 1), ip(10, 0, 0, 2), 40000, 443);
        let (k2, _) = FlowKey::from_tuple(ip(10, 0, 0, 1), ip(10, 0, 0, 2), 40001, 443);
        assert_ne!(k1, k2);
    }

    #[test]
    fn port_breaks_tie_on_same_address() {
        // Same address both sides (loopback-style): ports decide the order.
        let (k, dir) = FlowKey::from_tuple(ip(1, 1, 1, 1), ip(1, 1, 1, 1), 9999, 80);
        assert_eq!(dir, Direction::Reverse);
        assert_eq!(k.a.1, 80);
        assert_eq!(k.b.1, 9999);
    }

    #[test]
    fn as_seen_reconstructs_tuple() {
        let (k, dir) = FlowKey::from_tuple(ip(200, 1, 1, 1), ip(10, 0, 0, 1), 5000, 443);
        let (src, dst, sp, dp) = k.as_seen(dir);
        assert_eq!(src, ip(200, 1, 1, 1));
        assert_eq!(dst, ip(10, 0, 0, 1));
        assert_eq!(sp, 5000);
        assert_eq!(dp, 443);
        // And the other direction swaps.
        let (src, dst, sp, dp) = k.as_seen(dir.flipped());
        assert_eq!(src, ip(10, 0, 0, 1));
        assert_eq!(sp, 443);
        assert_eq!(dst, ip(200, 1, 1, 1));
        assert_eq!(dp, 5000);
    }

    #[test]
    fn mix_hash_is_direction_invariant() {
        let (k1, _) = FlowKey::from_tuple(ip(10, 0, 0, 1), ip(10, 0, 0, 2), 40000, 443);
        let (k2, _) = FlowKey::from_tuple(ip(10, 0, 0, 2), ip(10, 0, 0, 1), 443, 40000);
        assert_eq!(k1.mix_hash(), k2.mix_hash());
        // Distinct flows spread.
        let (k3, _) = FlowKey::from_tuple(ip(10, 0, 0, 1), ip(10, 0, 0, 2), 40001, 443);
        assert_ne!(k1.mix_hash(), k3.mix_hash());
    }

    #[test]
    fn display_formats_endpoints() {
        let (k, _) = FlowKey::from_tuple(ip(1, 2, 3, 4), ip(5, 6, 7, 8), 1, 2);
        assert_eq!(k.to_string(), "1.2.3.4:1 <-> 5.6.7.8:2");
    }
}
