//! Single-pass packet pre-parsing ("pre-parsing all TCP packet headers" in
//! the paper's pipeline).
//!
//! [`classify`] turns a raw Ethernet frame into the compact [`TcpMeta`] the
//! tracker and the baselines consume, rejecting everything that cannot carry
//! handshake information with a precise [`Reject`] reason (counted by the
//! pipeline's statistics).

use ruru_nic::Timestamp;
use ruru_wire::{ethernet, ipv4, ipv6, tcp, IpAddress};
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a frame was not classified as a usable TCP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reject {
    /// Not an IPv4/IPv6 Ethernet frame, or truncated below header sizes.
    NotIp,
    /// IP, but not TCP.
    NotTcp,
    /// A non-initial IP fragment (carries no TCP header).
    Fragment,
    /// The IPv4 header checksum failed.
    BadIpChecksum,
    /// The TCP checksum failed (only with [`ChecksumMode::Validate`]).
    BadTcpChecksum,
    /// The TCP header was malformed or truncated.
    BadTcp,
    /// Classified fine, but every downstream bus consumer was gone when the
    /// measurement was pushed: the record was dropped at the bus edge
    /// instead of panicking the dataplane worker.
    BusClosed,
}

/// Shared per-cause reject counters, updated lock-free by the dataplane
/// workers and snapshotted into a [`RejectStats`] for the run report.
#[derive(Debug, Default)]
pub struct RejectCounters {
    not_ip: AtomicU64,
    not_tcp: AtomicU64,
    fragment: AtomicU64,
    bad_ip_checksum: AtomicU64,
    bad_tcp_checksum: AtomicU64,
    bad_tcp: AtomicU64,
    bus_closed: AtomicU64,
}

impl RejectCounters {
    /// Count one rejected frame under its cause.
    pub fn record(&self, reject: Reject) {
        let counter = match reject {
            Reject::NotIp => &self.not_ip,
            Reject::NotTcp => &self.not_tcp,
            Reject::Fragment => &self.fragment,
            Reject::BadIpChecksum => &self.bad_ip_checksum,
            Reject::BadTcpChecksum => &self.bad_tcp_checksum,
            Reject::BadTcp => &self.bad_tcp,
            Reject::BusClosed => &self.bus_closed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` records dropped because the downstream bus closed.
    pub fn record_bus_closed(&self, n: u64) {
        self.bus_closed.fetch_add(n, Ordering::Relaxed);
    }

    /// Read a consistent-enough snapshot of every counter.
    pub fn snapshot(&self) -> RejectStats {
        RejectStats {
            not_ip: self.not_ip.load(Ordering::Relaxed),
            not_tcp: self.not_tcp.load(Ordering::Relaxed),
            fragment: self.fragment.load(Ordering::Relaxed),
            bad_ip_checksum: self.bad_ip_checksum.load(Ordering::Relaxed),
            bad_tcp_checksum: self.bad_tcp_checksum.load(Ordering::Relaxed),
            bad_tcp: self.bad_tcp.load(Ordering::Relaxed),
            bus_closed: self.bus_closed.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time reading of [`RejectCounters`]: how many frames each
/// [`Reject`] cause discarded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectStats {
    /// Frames rejected as [`Reject::NotIp`].
    pub not_ip: u64,
    /// Frames rejected as [`Reject::NotTcp`].
    pub not_tcp: u64,
    /// Frames rejected as [`Reject::Fragment`].
    pub fragment: u64,
    /// Frames rejected as [`Reject::BadIpChecksum`].
    pub bad_ip_checksum: u64,
    /// Frames rejected as [`Reject::BadTcpChecksum`].
    pub bad_tcp_checksum: u64,
    /// Frames rejected as [`Reject::BadTcp`].
    pub bad_tcp: u64,
    /// Measurements dropped as [`Reject::BusClosed`].
    pub bus_closed: u64,
}

impl RejectStats {
    /// Total rejected frames across every cause.
    pub fn total(&self) -> u64 {
        self.not_ip
            .saturating_add(self.not_tcp)
            .saturating_add(self.fragment)
            .saturating_add(self.bad_ip_checksum)
            .saturating_add(self.bad_tcp_checksum)
            .saturating_add(self.bad_tcp)
            .saturating_add(self.bus_closed)
    }

    /// The count for one cause.
    pub fn get(&self, reject: Reject) -> u64 {
        match reject {
            Reject::NotIp => self.not_ip,
            Reject::NotTcp => self.not_tcp,
            Reject::Fragment => self.fragment,
            Reject::BadIpChecksum => self.bad_ip_checksum,
            Reject::BadTcpChecksum => self.bad_tcp_checksum,
            Reject::BadTcp => self.bad_tcp,
            Reject::BusClosed => self.bus_closed,
        }
    }
}

/// Whether to validate TCP checksums during classification.
///
/// Hardware taps usually see checksums already verified by the NIC;
/// validating in software costs one pass over the payload. Ruru validates by
/// default because a corrupted header must never create a phantom flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChecksumMode {
    /// Verify IPv4 header and TCP checksums.
    #[default]
    Validate,
    /// Trust the frame (e.g. generator-produced traffic in benches).
    Trust,
}

/// Everything the measurement stages need from one TCP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpMeta {
    /// Source address.
    pub src: IpAddress,
    /// Destination address.
    pub dst: IpAddress,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// TCP flags.
    pub flags: tcp::Flags,
    /// TCP payload length in bytes.
    pub payload_len: usize,
    /// TCP timestamps option, if present: (TSval, TSecr).
    pub timestamps: Option<(u32, u32)>,
    /// Arrival timestamp from the RX path.
    pub timestamp: Timestamp,
    /// The NIC's 32-bit symmetric Toeplitz RSS hash for this packet, or 0
    /// when the frame did not come through an RX descriptor (raw
    /// [`classify`] callers). The flow table keys on this hash directly;
    /// consumers fall back to [`crate::key::FlowKey::mix_hash`] when it is
    /// 0, which is direction-consistent either way.
    pub rss_hash: u32,
}

impl TcpMeta {
    /// The RSS-style 4-tuple.
    pub fn tuple(&self) -> (IpAddress, IpAddress, u16, u16) {
        (self.src, self.dst, self.src_port, self.dst_port)
    }
}

fn parse_tcp_options(seg: &tcp::Packet<&[u8]>) -> Option<(u32, u32)> {
    for opt in seg.options() {
        match opt {
            Ok(tcp::TcpOption::Timestamps { tsval, tsecr }) => return Some((tsval, tsecr)),
            // account-ok: option-walk skip over non-timestamp kinds; the
            // packet itself is still classified.
            Ok(_) => continue,
            // account-ok: `None` means "no usable timestamps", not loss —
            // classification proceeds without the TS option.
            Err(_) => return None,
        }
    }
    None
}

fn classify_tcp(
    payload: &[u8],
    src: IpAddress,
    dst: IpAddress,
    ph: ruru_wire::checksum::PseudoHeader,
    mode: ChecksumMode,
    timestamp: Timestamp,
) -> Result<TcpMeta, Reject> {
    let seg = tcp::Packet::new_checked(payload).map_err(|_| Reject::BadTcp)?;
    if mode == ChecksumMode::Validate && !seg.verify_checksum(&ph) {
        return Err(Reject::BadTcpChecksum);
    }
    Ok(TcpMeta {
        src,
        dst,
        src_port: seg.src_port(),
        dst_port: seg.dst_port(),
        seq: seg.seq(),
        ack: seg.ack(),
        flags: seg.flag_set(),
        payload_len: payload.len() - seg.header_len(),
        timestamps: parse_tcp_options(&seg),
        timestamp,
        rss_hash: 0,
    })
}

/// Classify one Ethernet frame arriving at `timestamp`.
pub fn classify(frame: &[u8], timestamp: Timestamp, mode: ChecksumMode) -> Result<TcpMeta, Reject> {
    let eth = ethernet::Frame::new_checked(frame).map_err(|_| Reject::NotIp)?;
    match eth.ethertype() {
        ethernet::EtherType::Ipv4 => {
            let ip = ipv4::Packet::new_checked(eth.payload()).map_err(|_| Reject::NotIp)?;
            if mode == ChecksumMode::Validate && !ip.verify_header_checksum() {
                return Err(Reject::BadIpChecksum);
            }
            if ip.is_non_initial_fragment() {
                return Err(Reject::Fragment);
            }
            if ip.protocol() != ipv4::Protocol::Tcp {
                return Err(Reject::NotTcp);
            }
            classify_tcp(
                ip.payload(),
                IpAddress::V4(ip.src()),
                IpAddress::V4(ip.dst()),
                ip.pseudo_header(),
                mode,
                timestamp,
            )
        }
        ethernet::EtherType::Ipv6 => {
            let ip = ipv6::Packet::new_checked(eth.payload()).map_err(|_| Reject::NotIp)?;
            let (proto, payload) = ip.upper_layer().map_err(|_| Reject::NotIp)?;
            if proto == ipv4::Protocol::Unknown(44) {
                return Err(Reject::Fragment);
            }
            if proto != ipv4::Protocol::Tcp {
                return Err(Reject::NotTcp);
            }
            // The pseudo-header length must be the TCP segment length, which
            // differs from payload_len when extension headers are present.
            let ph = ruru_wire::checksum::PseudoHeader::v6(
                ip.src().0,
                ip.dst().0,
                ipv4::Protocol::Tcp.into(),
                payload.len() as u32,
            );
            classify_tcp(
                payload,
                IpAddress::V6(ip.src()),
                IpAddress::V6(ip.dst()),
                ph,
                mode,
                timestamp,
            )
        }
        _ => Err(Reject::NotIp),
    }
}

/// Classify a received [`ruru_nic::Mbuf`], carrying the NIC-computed RSS
/// hash from the RX descriptor into the [`TcpMeta`] so the flow table can
/// key on it directly instead of re-hashing the 4-tuple.
pub fn classify_mbuf(mbuf: &ruru_nic::Mbuf, mode: ChecksumMode) -> Result<TcpMeta, Reject> {
    // account-ok: the `?` propagates a typed `Reject` cause; the engine
    // catch-site records it per-cause before dropping the packet.
    let mut meta = classify(mbuf.data(), mbuf.timestamp, mode)?;
    meta.rss_hash = mbuf.rss_hash;
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruru_wire::checksum::PseudoHeader;

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build_v4_frame(
        src: [u8; 4],
        dst: [u8; 4],
        sport: u16,
        dport: u16,
        flags: tcp::Flags,
        seq: u32,
        ack: u32,
        payload: &[u8],
        ts_opt: Option<(u32, u32)>,
    ) -> Vec<u8> {
        let mut options = tcp::OptionList::default();
        if let Some((tsval, tsecr)) = ts_opt {
            options
                .push(tcp::TcpOption::Timestamps { tsval, tsecr })
                .unwrap();
        }
        let tcp_repr = tcp::Repr {
            src_port: sport,
            dst_port: dport,
            seq,
            ack,
            flags,
            window: 65535,
            options,
        };
        let ip_repr = ipv4::Repr {
            src: ipv4::Address(src),
            dst: ipv4::Address(dst),
            protocol: ipv4::Protocol::Tcp,
            ttl: 64,
            payload_len: tcp_repr.header_len() + payload.len(),
        };
        let mut buf = vec![0u8; ethernet::HEADER_LEN + ip_repr.total_len()];
        ethernet::Repr {
            src: ethernet::Address([2, 0, 0, 0, 0, 1]),
            dst: ethernet::Address([2, 0, 0, 0, 0, 2]),
            ethertype: ethernet::EtherType::Ipv4,
        }
        .emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
        let mut ip = ipv4::Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
        ip_repr.emit(&mut ip);
        let ph: PseudoHeader = ip_repr.pseudo_header();
        let hdr_len = tcp_repr.header_len();
        let tcp_buf = ip.payload_mut();
        tcp_buf[hdr_len..].copy_from_slice(payload);
        let mut seg = tcp::Packet::new_unchecked(tcp_buf);
        tcp_repr.emit(&mut seg, &ph);
        buf
    }

    #[test]
    fn reject_counters_count_per_cause() {
        let counters = RejectCounters::default();
        counters.record(Reject::NotTcp);
        counters.record(Reject::NotTcp);
        counters.record(Reject::Fragment);
        counters.record(Reject::BadTcpChecksum);
        counters.record_bus_closed(3);
        let stats = counters.snapshot();
        assert_eq!(stats.not_tcp, 2);
        assert_eq!(stats.get(Reject::NotTcp), 2);
        assert_eq!(stats.fragment, 1);
        assert_eq!(stats.bad_tcp_checksum, 1);
        assert_eq!(stats.not_ip, 0);
        assert_eq!(stats.bus_closed, 3);
        assert_eq!(stats.get(Reject::BusClosed), 3);
        assert_eq!(stats.total(), 7);
        assert_eq!(RejectStats::default().total(), 0);
    }

    #[test]
    fn classifies_a_syn() {
        let frame = build_v4_frame(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            40000,
            443,
            tcp::Flags::SYN,
            1000,
            0,
            &[],
            Some((111, 0)),
        );
        let meta = classify(&frame, Timestamp::from_micros(5), ChecksumMode::Validate).unwrap();
        assert!(meta.flags.is_syn_only());
        assert_eq!(meta.src_port, 40000);
        assert_eq!(meta.seq, 1000);
        assert_eq!(meta.payload_len, 0);
        assert_eq!(meta.timestamps, Some((111, 0)));
        assert_eq!(meta.timestamp.as_micros(), 5);
    }

    #[test]
    fn classify_mbuf_carries_the_rss_hash() {
        let frame = build_v4_frame(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            40000,
            443,
            tcp::Flags::SYN,
            1000,
            0,
            &[],
            None,
        );
        let mut mbuf = ruru_nic::Mbuf::from_bytes(&frame);
        mbuf.rss_hash = 0xdead_beef;
        mbuf.timestamp = Timestamp::from_micros(7);
        let meta = classify_mbuf(&mbuf, ChecksumMode::Validate).unwrap();
        assert_eq!(meta.rss_hash, 0xdead_beef);
        assert_eq!(meta.timestamp.as_micros(), 7);
        // The raw-frame path reports no hash.
        let raw = classify(&frame, Timestamp::ZERO, ChecksumMode::Validate).unwrap();
        assert_eq!(raw.rss_hash, 0);
    }

    #[test]
    fn payload_length_reported() {
        let frame = build_v4_frame(
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            1,
            2,
            tcp::Flags::ACK | tcp::Flags::PSH,
            5,
            6,
            b"hello",
            None,
        );
        let meta = classify(&frame, Timestamp::ZERO, ChecksumMode::Validate).unwrap();
        assert_eq!(meta.payload_len, 5);
        assert!(meta.flags.is_plain_ack());
    }

    #[test]
    fn corrupted_tcp_checksum_rejected_when_validating() {
        let mut frame = build_v4_frame(
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            1,
            2,
            tcp::Flags::SYN,
            0,
            0,
            &[],
            None,
        );
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert_eq!(
            classify(&frame, Timestamp::ZERO, ChecksumMode::Validate),
            Err(Reject::BadTcpChecksum)
        );
        // Trust mode lets it through.
        assert!(classify(&frame, Timestamp::ZERO, ChecksumMode::Trust).is_ok());
    }

    #[test]
    fn corrupted_ip_checksum_rejected() {
        let mut frame = build_v4_frame(
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            1,
            2,
            tcp::Flags::SYN,
            0,
            0,
            &[],
            None,
        );
        frame[ethernet::HEADER_LEN + 8] = 1; // ttl
        assert_eq!(
            classify(&frame, Timestamp::ZERO, ChecksumMode::Validate),
            Err(Reject::BadIpChecksum)
        );
    }

    #[test]
    fn non_ip_rejected() {
        assert_eq!(
            classify(&[0u8; 64], Timestamp::ZERO, ChecksumMode::Validate),
            Err(Reject::NotIp)
        );
        assert_eq!(
            classify(&[0u8; 5], Timestamp::ZERO, ChecksumMode::Validate),
            Err(Reject::NotIp)
        );
    }

    #[test]
    fn udp_rejected_as_not_tcp() {
        let mut frame = build_v4_frame(
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            1,
            2,
            tcp::Flags::SYN,
            0,
            0,
            &[],
            None,
        );
        // Flip protocol to UDP and fix the IP checksum.
        let ip_at = ethernet::HEADER_LEN;
        frame[ip_at + 9] = 17;
        let mut ip = ipv4::Packet::new_unchecked(&mut frame[ip_at..]);
        ip.fill_header_checksum();
        assert_eq!(
            classify(&frame, Timestamp::ZERO, ChecksumMode::Validate),
            Err(Reject::NotTcp)
        );
    }

    #[test]
    fn fragment_rejected() {
        let mut frame = build_v4_frame(
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            1,
            2,
            tcp::Flags::SYN,
            0,
            0,
            &[],
            None,
        );
        let ip_at = ethernet::HEADER_LEN;
        frame[ip_at + 6] = 0x00;
        frame[ip_at + 7] = 0x04; // fragment offset 32 bytes
        let mut ip = ipv4::Packet::new_unchecked(&mut frame[ip_at..]);
        ip.fill_header_checksum();
        assert_eq!(
            classify(&frame, Timestamp::ZERO, ChecksumMode::Validate),
            Err(Reject::Fragment)
        );
    }

    #[test]
    fn ipv6_tcp_classified() {
        // Build a v6 TCP SYN by hand.
        let tcp_repr = tcp::Repr {
            src_port: 50000,
            dst_port: 80,
            seq: 42,
            ack: 0,
            flags: tcp::Flags::SYN,
            window: 1000,
            options: tcp::OptionList::default(),
        };
        let ip_repr = ipv6::Repr {
            src: ipv6::Address::from_groups([0x2404, 1, 0, 0, 0, 0, 0, 1]),
            dst: ipv6::Address::from_groups([0x2607, 2, 0, 0, 0, 0, 0, 2]),
            protocol: ipv4::Protocol::Tcp,
            hop_limit: 64,
            payload_len: tcp_repr.header_len(),
        };
        let mut buf = vec![0u8; ethernet::HEADER_LEN + ip_repr.total_len()];
        ethernet::Repr {
            src: ethernet::Address([2, 0, 0, 0, 0, 1]),
            dst: ethernet::Address([2, 0, 0, 0, 0, 2]),
            ethertype: ethernet::EtherType::Ipv6,
        }
        .emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
        let mut ip = ipv6::Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
        ip_repr.emit(&mut ip);
        let ph = ip_repr.pseudo_header();
        let mut seg = tcp::Packet::new_unchecked(ip.payload_mut());
        tcp_repr.emit(&mut seg, &ph);

        let meta = classify(&buf, Timestamp::ZERO, ChecksumMode::Validate).unwrap();
        assert!(!meta.src.is_v4());
        assert_eq!(meta.dst_port, 80);
        assert!(meta.flags.is_syn_only());
    }

    #[test]
    fn truncated_tcp_rejected() {
        let frame = build_v4_frame(
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            1,
            2,
            tcp::Flags::SYN,
            0,
            0,
            &[],
            None,
        );
        // Shrink the IP total_len so the TCP header is cut to 10 bytes, and
        // re-checksum IP so we reach the TCP stage.
        let ip_at = ethernet::HEADER_LEN;
        let bad_total = (ruru_wire::ipv4::MIN_HEADER_LEN + 10) as u16;
        let mut frame2 = frame.clone();
        frame2[ip_at + 2..ip_at + 4].copy_from_slice(&bad_total.to_be_bytes());
        let mut ip = ipv4::Packet::new_unchecked(&mut frame2[ip_at..]);
        ip.fill_header_checksum();
        assert_eq!(
            classify(&frame2, Timestamp::ZERO, ChecksumMode::Validate),
            Err(Reject::BadTcp)
        );
    }
}
