//! Continuous in-flow RTT on the slab table — the fast-path promotion of
//! the [`crate::baseline::pping`] reference estimator.
//!
//! Ruru's handshake method samples each flow exactly once, at connection
//! setup — blind to mid-flow latency shifts, which is where production
//! latency lives. This module matches TCP timestamps (RFC 7323) the same
//! way `pping` does, but with the baseline's two scaling problems fixed:
//!
//! * **State** — the baseline keys a side `HashMap` by `(flow, dir, TSval)`
//!   so its footprint grows with every in-flight TSval. Here the
//!   outstanding TSvals live **inline in the slab [`FlowTable`] entry**: a
//!   fixed-size ring per direction ([`TSVAL_RING`] slots). One table entry
//!   per flow, bounded per-flow state, zero steady-state allocations, and
//!   the table reuses the NIC's RSS hash burst-style exactly like the
//!   handshake tracker.
//! * **Output** — the baseline emits one `RttSample` record per match. At
//!   line rate that is one record per ACK; instead samples fold into a
//!   per-queue log-bucket [`LatencyHistogram`] (P4TG-style data-plane
//!   histograms) and the engine forwards only bucket counts to the
//!   telemetry registry.
//!
//! Validity rules (shared with the fixed baseline, exercised by the
//! differential test in `tests/transport_and_edge.rs`):
//!
//! * TSecr is matched only on segments with ACK set (RFC 7323 §3.2 — a
//!   SYN's TSecr field is undefined garbage).
//! * TSecr 0 never matches and TSval 0 is never recorded: 0 is the
//!   "no echo yet" ambiguity value, so an entry for it could never be
//!   consumed and would only pin dead state.
//! * A TSval already outstanding (retransmit, repeated pure ACK) keeps the
//!   *first* send time and counts as a duplicate.
//! * An echo is consumed exactly once; a sample whose arrival precedes the
//!   recorded send time (severe reordering) is suppressed and counted.

use crate::classify::TcpMeta;
use crate::histogram::LatencyHistogram;
use crate::key::{Direction, FlowKey};
use crate::table::{FlowTable, InsertOutcome};
use ruru_nic::Timestamp;

/// Outstanding TSvals tracked per flow *per direction*. TSval granularity
/// is ≥ 1 ms on every mainstream stack while RTTs worth measuring are well
/// under the 10 s TTL, so a handful of in-flight values per direction
/// covers real traffic; overflow overwrites the oldest slot and is counted
/// in [`InflowStats::ring_evicted`].
pub const TSVAL_RING: usize = 4;

/// Configuration of a per-queue in-flow tracker.
#[derive(Debug, Clone)]
pub struct InflowConfig {
    /// Maximum flows with outstanding TSvals held (per queue).
    pub capacity: usize,
    /// Flow entries older than this are dropped (a long-lived flow is
    /// simply re-admitted by its next packet; up to one ring of
    /// outstanding TSvals is lost per reset).
    pub ttl_ns: u64,
    /// How many packets between expiry sweeps on the scalar
    /// [`InflowTracker::process`] path.
    pub expire_interval_packets: u64,
    /// Minimum simulated time between sweeps on the burst path
    /// ([`InflowTracker::process_burst`]).
    pub housekeep_interval_ns: u64,
}

impl Default for InflowConfig {
    fn default() -> Self {
        InflowConfig {
            capacity: 1 << 20,
            ttl_ns: 10_000_000_000,
            expire_interval_packets: 1024,
            housekeep_interval_ns: 1_000_000_000,
        }
    }
}

/// Counters exposed by an in-flow tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InflowStats {
    /// TCP packets processed.
    pub packets: u64,
    /// Packets without a TCP timestamps option (unusable).
    pub no_timestamp: u64,
    /// TSvals recorded into a ring slot.
    pub tsvals_recorded: u64,
    /// Packets whose TSval was already outstanding in its direction's ring
    /// (retransmits, repeated pure ACKs) — first send time kept.
    pub duplicate_tsvals: u64,
    /// Packets carrying the unmatchable TSval 0; skipped.
    pub zero_tsvals: u64,
    /// RTT samples folded into the histogram.
    pub samples: u64,
    /// Ring slots overwritten while still outstanding (more than
    /// [`TSVAL_RING`] in-flight TSvals in one direction).
    pub ring_evicted: u64,
    /// Echo arrivals that preceded the recorded send time (reordering /
    /// clock anomaly); sample suppressed.
    pub nonmonotonic: u64,
    /// Flow entries dropped by TTL expiry.
    pub expired_flows: u64,
    /// Flow entries force-evicted by capacity pressure.
    pub evicted_flows: u64,
}

/// One outstanding TSval. `sent_at == Timestamp::ZERO` never occurs for a
/// live slot because slot validity is tracked explicitly.
#[derive(Debug, Clone, Copy)]
struct TsSlot {
    tsval: u32,
    sent_at: Timestamp,
    live: bool,
}

const EMPTY_SLOT: TsSlot = TsSlot {
    tsval: 0,
    sent_at: Timestamp::ZERO,
    live: false,
};

/// Fixed-size ring of outstanding TSvals for one direction of one flow.
#[derive(Debug, Clone, Copy)]
struct TsRing {
    slots: [TsSlot; TSVAL_RING],
}

impl TsRing {
    const EMPTY: TsRing = TsRing {
        slots: [EMPTY_SLOT; TSVAL_RING],
    };

    /// Consume the slot holding `tsval`, returning its send time.
    #[inline]
    fn take(&mut self, tsval: u32) -> Option<Timestamp> {
        for slot in &mut self.slots {
            if slot.live && slot.tsval == tsval {
                slot.live = false;
                return Some(slot.sent_at);
            }
        }
        None
    }

    /// Record `tsval` at `sent_at`, keeping the first occurrence.
    #[inline]
    fn record(&mut self, tsval: u32, sent_at: Timestamp) -> RecordOutcome {
        // One pass finds a duplicate, a free slot, and the oldest live
        // slot (the overwrite victim) — TSVAL_RING is small enough that
        // this is a handful of register compares.
        let mut free: Option<usize> = None;
        let mut oldest = 0usize;
        let mut oldest_at = Timestamp::from_nanos(u64::MAX);
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.live {
                if slot.tsval == tsval {
                    return RecordOutcome::Duplicate;
                }
                if slot.sent_at < oldest_at {
                    oldest_at = slot.sent_at;
                    oldest = i;
                }
            } else if free.is_none() {
                free = Some(i);
            }
        }
        match free {
            Some(i) => {
                // panic-ok: `i` came from `enumerate()` over `slots`.
                self.slots[i] = TsSlot {
                    tsval,
                    sent_at,
                    live: true,
                };
                RecordOutcome::Recorded
            }
            // account-ok: the overwrite is reported as `RecordedWithOverwrite`
            // and tallied by the caller into `stats.ring_evicted`.
            None => {
                // panic-ok: `oldest` is 0 or an `enumerate()` index.
                self.slots[oldest] = TsSlot {
                    tsval,
                    sent_at,
                    live: true,
                };
                RecordOutcome::RecordedWithOverwrite
            }
        }
    }

    /// Live slots (for tests and `outstanding()`).
    fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.live).count()
    }
}

enum RecordOutcome {
    Recorded,
    RecordedWithOverwrite,
    Duplicate,
}

/// Per-flow in-flow state: one TSval ring per direction, inline in the
/// slab entry (no side allocation, `Copy`-moved on backward-shift).
#[derive(Debug, Clone, Copy)]
struct InflowEntry {
    /// Indexed by [`ring_index`]: 0 = Forward, 1 = Reverse.
    rings: [TsRing; 2],
}

#[inline]
fn ring_index(dir: Direction) -> usize {
    match dir {
        Direction::Forward => 0,
        Direction::Reverse => 1,
    }
}

/// The per-queue continuous in-flow RTT tracker.
pub struct InflowTracker {
    table: FlowTable<FlowKey, InflowEntry>,
    queue_id: u16,
    config: InflowConfig,
    stats: InflowStats,
    packets_since_expiry: u64,
    last_housekeep: Timestamp,
    histogram: LatencyHistogram,
    /// Per-burst staging for route hashes (same pattern as
    /// `HandshakeTracker::burst_scratch`): hash once, prefetch, reuse.
    burst_scratch: Vec<u32>,
}

impl InflowTracker {
    /// A tracker for queue `queue_id`.
    pub fn new(queue_id: u16, config: InflowConfig) -> InflowTracker {
        let table = FlowTable::new(config.capacity, config.ttl_ns);
        InflowTracker {
            table,
            queue_id,
            config,
            stats: InflowStats::default(),
            packets_since_expiry: 0,
            last_housekeep: Timestamp::ZERO,
            histogram: LatencyHistogram::for_latency(),
            burst_scratch: Vec::new(),
        }
    }

    /// The same direction-invariant route hash the handshake tracker keys
    /// by: the NIC's symmetric RSS hash when carried, else a software hash.
    #[inline]
    fn route_hash(meta: &TcpMeta, key: &FlowKey) -> u32 {
        if meta.rss_hash != 0 {
            meta.rss_hash
        } else {
            key.mix_hash()
        }
    }

    /// Process one packet; returns the RTT sample (ns) when this packet
    /// echoes an outstanding TSval. Runs packet-count-based housekeeping
    /// (the scalar path; the engine uses [`InflowTracker::process_burst`]).
    pub fn process(&mut self, meta: &TcpMeta) -> Option<u64> {
        self.packets_since_expiry += 1;
        if self.packets_since_expiry >= self.config.expire_interval_packets {
            self.housekeep(meta.timestamp);
        }
        self.process_at(meta)
    }

    /// Match + record for one packet, with no housekeeping trigger.
    pub fn process_at(&mut self, meta: &TcpMeta) -> Option<u64> {
        let (key, dir) = FlowKey::from_tuple(meta.src, meta.dst, meta.src_port, meta.dst_port);
        let hash = Self::route_hash(meta, &key);
        self.dispatch(hash, key, dir, meta)
    }

    /// Process a whole RX burst: stage every packet's home bucket into
    /// cache, then match/record per packet against warmed lines, folding
    /// each sample into the local histogram and handing its value to
    /// `on_sample` (the engine forwards these to the per-queue registry
    /// histogram), and finish with one time-guarded expiry sweep.
    pub fn process_burst(&mut self, metas: &[TcpMeta], mut on_sample: impl FnMut(u64)) {
        let mut staged = core::mem::take(&mut self.burst_scratch);
        staged.clear();
        // alloc-ok: burst_scratch is reused across bursts; reserve is a
        // no-op once it has grown to the largest burst seen.
        staged.reserve(metas.len());
        for meta in metas {
            let (key, _) = FlowKey::from_tuple(meta.src, meta.dst, meta.src_port, meta.dst_port);
            let hash = Self::route_hash(meta, &key);
            self.table.prefetch(hash);
            staged.push(hash);
        }
        for (&hash, meta) in staged.iter().zip(metas) {
            let (key, dir) = FlowKey::from_tuple(meta.src, meta.dst, meta.src_port, meta.dst_port);
            if let Some(rtt_ns) = self.dispatch(hash, key, dir, meta) {
                on_sample(rtt_ns);
            }
        }
        self.burst_scratch = staged;
        if let Some(last) = metas.last() {
            self.housekeep_guarded(last.timestamp);
        }
    }

    /// Match this packet's TSecr against the opposite ring, then record its
    /// TSval into its own ring — one table lookup covers both.
    fn dispatch(&mut self, hash: u32, key: FlowKey, dir: Direction, meta: &TcpMeta) -> Option<u64> {
        self.stats.packets += 1;
        let Some((tsval, tsecr)) = meta.timestamps else {
            self.stats.no_timestamp += 1;
            return None;
        };

        // RFC 7323 §3.2: TSecr is only valid on segments with ACK set, and
        // TSecr 0 is the "no echo yet" ambiguity value.
        let match_echo = tsecr != 0 && meta.flags.contains(ruru_wire::tcp::Flags::ACK);
        let record = tsval != 0;
        if !record {
            self.stats.zero_tsvals += 1;
        }

        let mut sample = None;
        match self.table.get_mut(hash, &key) {
            Some(entry) => {
                if match_echo {
                    // panic-ok: `ring_index` returns 0|1 into `[TsRing; 2]`.
                    if let Some(sent_at) = entry.rings[ring_index(dir.flipped())].take(tsecr) {
                        if meta.timestamp >= sent_at {
                            sample = Some(meta.timestamp - sent_at);
                        } else {
                            self.stats.nonmonotonic += 1;
                        }
                    }
                }
                if record {
                    // panic-ok: `ring_index` returns 0|1 into `[TsRing; 2]`.
                    match entry.rings[ring_index(dir)].record(tsval, meta.timestamp) {
                        RecordOutcome::Recorded => self.stats.tsvals_recorded += 1,
                        RecordOutcome::RecordedWithOverwrite => {
                            self.stats.tsvals_recorded += 1;
                            self.stats.ring_evicted += 1;
                        }
                        RecordOutcome::Duplicate => self.stats.duplicate_tsvals += 1,
                    }
                }
            }
            None if record => {
                let mut entry = InflowEntry {
                    rings: [TsRing::EMPTY; 2],
                };
                // panic-ok: `ring_index` returns 0|1 into `[TsRing; 2]`.
                entry.rings[ring_index(dir)] = {
                    let mut ring = TsRing::EMPTY;
                    let _ = ring.record(tsval, meta.timestamp);
                    ring
                };
                self.stats.tsvals_recorded += 1;
                if self.table.insert(hash, key, entry, meta.timestamp)
                    == InsertOutcome::InsertedWithEviction
                {
                    self.stats.evicted_flows += 1;
                }
            }
            // account-ok: untracked flow with nothing recordable — the
            // packet was already tallied in `packets` and its zero TSval in
            // `zero_tsvals` above; there is no state to lose.
            None => {}
        }

        if let Some(rtt_ns) = sample {
            self.stats.samples += 1;
            self.histogram.record(rtt_ns);
        }
        sample
    }

    /// Run an expiry sweep only if [`InflowConfig::housekeep_interval_ns`]
    /// has elapsed since the last one.
    pub fn housekeep_guarded(&mut self, now: Timestamp) {
        if now.saturating_nanos_since(self.last_housekeep) >= self.config.housekeep_interval_ns {
            self.housekeep(now);
        }
    }

    /// Run an expiry sweep at `now`.
    pub fn housekeep(&mut self, now: Timestamp) {
        self.packets_since_expiry = 0;
        self.last_housekeep = now;
        let before = self.table.expirations();
        self.table.expire(now, |_k, _v| {});
        self.stats.expired_flows += self.table.expirations() - before;
    }

    /// Flows with tracked in-flow state.
    pub fn flows_tracked(&self) -> usize {
        self.table.len()
    }

    /// Outstanding (unechoed) TSvals across all flows — an O(table) scan,
    /// for tests and reports, not the hot path.
    pub fn outstanding(&self) -> usize {
        self.table
            .iter()
            .map(|(_, e)| e.rings[0].live() + e.rings[1].live())
            .sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> InflowStats {
        let mut s = self.stats;
        // Capacity evictions are counted authoritatively by the table.
        s.evicted_flows = self.table.evictions();
        s
    }

    /// The queue this tracker serves.
    pub fn queue_id(&self) -> u16 {
        self.queue_id
    }

    /// Distribution of in-flow RTT samples folded on this queue.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruru_wire::tcp::Flags;
    use ruru_wire::{ipv4, IpAddress};

    fn ip(last: u8) -> IpAddress {
        IpAddress::V4(ipv4::Address([10, 0, 0, last]))
    }

    fn meta_flags(
        src: IpAddress,
        dst: IpAddress,
        sp: u16,
        dp: u16,
        ts: Option<(u32, u32)>,
        t_us: u64,
        flags: Flags,
    ) -> TcpMeta {
        TcpMeta {
            src,
            dst,
            src_port: sp,
            dst_port: dp,
            seq: 0,
            ack: 0,
            flags,
            payload_len: 100,
            timestamps: ts,
            timestamp: Timestamp::from_micros(t_us),
            rss_hash: 0,
        }
    }

    fn meta(
        src: IpAddress,
        dst: IpAddress,
        sp: u16,
        dp: u16,
        ts: Option<(u32, u32)>,
        t_us: u64,
    ) -> TcpMeta {
        meta_flags(src, dst, sp, dp, ts, t_us, Flags::ACK)
    }

    #[test]
    fn echo_produces_rtt_sample() {
        let mut tr = InflowTracker::new(0, InflowConfig::default());
        let c = ip(1);
        let s = ip(2);
        assert!(tr.process(&meta(c, s, 5000, 443, Some((100, 0)), 0)).is_none());
        let rtt = tr
            .process(&meta(s, c, 443, 5000, Some((900, 100)), 130_000))
            .unwrap();
        assert_eq!(rtt, 130_000_000);
        assert_eq!(tr.stats().samples, 1);
        assert_eq!(tr.histogram().count(), 1);
        assert_eq!(tr.flows_tracked(), 1, "one entry covers both directions");
    }

    #[test]
    fn echo_is_consumed_once() {
        let mut tr = InflowTracker::new(0, InflowConfig::default());
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 5000, 443, Some((100, 0)), 0));
        assert!(tr
            .process(&meta(s, c, 443, 5000, Some((900, 100)), 1_000))
            .is_some());
        assert!(tr
            .process(&meta(s, c, 443, 5000, Some((901, 100)), 2_000))
            .is_none());
        assert_eq!(tr.stats().samples, 1);
    }

    #[test]
    fn retransmission_keeps_first_send_time_and_counts_duplicate() {
        let mut tr = InflowTracker::new(0, InflowConfig::default());
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 5000, 443, Some((100, 0)), 0));
        tr.process(&meta(c, s, 5000, 443, Some((100, 0)), 50_000));
        let rtt = tr
            .process(&meta(s, c, 443, 5000, Some((900, 100)), 130_000))
            .unwrap();
        assert_eq!(rtt, 130_000_000, "measured from first send");
        assert_eq!(tr.stats().duplicate_tsvals, 1);
        assert_eq!(tr.stats().tsvals_recorded, 2, "one per direction-value");
    }

    #[test]
    fn syn_with_stale_tsecr_produces_no_sample() {
        let mut tr = InflowTracker::new(0, InflowConfig::default());
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(s, c, 443, 5000, Some((777, 0)), 0));
        let syn = meta_flags(c, s, 5000, 443, Some((100, 777)), 10_000, Flags::SYN);
        assert!(tr.process(&syn).is_none(), "RFC 7323: TSecr needs ACK");
        assert_eq!(tr.stats().samples, 0);
        assert!(tr
            .process(&meta(c, s, 5000, 443, Some((101, 777)), 20_000))
            .is_some());
    }

    #[test]
    fn zero_tsval_and_zero_tsecr_are_inert() {
        let mut tr = InflowTracker::new(0, InflowConfig::default());
        tr.process(&meta(ip(1), ip(2), 1, 2, Some((0, 0)), 0));
        assert_eq!(tr.flows_tracked(), 0, "TSval 0 creates no state");
        assert_eq!(tr.stats().zero_tsvals, 1);
        assert!(tr
            .process(&meta(ip(2), ip(1), 2, 1, Some((7, 0)), 10))
            .is_none());
    }

    #[test]
    fn tsval_wraparound_keeps_sampling() {
        let mut tr = InflowTracker::new(0, InflowConfig::default());
        let c = ip(1);
        let s = ip(2);
        let mut samples = 0;
        for (i, tsval) in [u32::MAX - 1, u32::MAX, 0, 1, 2].into_iter().enumerate() {
            let t0 = i as u64 * 1_000;
            tr.process(&meta(c, s, 5000, 443, Some((tsval, 9)), t0));
            if tr
                .process(&meta(s, c, 443, 5000, Some((10 + i as u32, tsval)), t0 + 130))
                .is_some()
            {
                samples += 1;
            }
        }
        assert_eq!(samples, 4, "exact matching survives the u32 wrap");
        assert_eq!(tr.stats().zero_tsvals, 1);
    }

    #[test]
    fn delayed_ack_inflation_is_measured_at_the_tap() {
        let mut tr = InflowTracker::new(0, InflowConfig::default());
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 5000, 443, Some((100, 0)), 0));
        // Path RTT 100 ms + 40 ms delayed-ACK hold at the receiver.
        let rtt = tr
            .process(&meta(s, c, 443, 5000, Some((900, 100)), 140_000))
            .unwrap();
        assert_eq!(rtt, 140_000_000);
    }

    #[test]
    fn ring_overflow_overwrites_oldest_and_counts() {
        let mut tr = InflowTracker::new(0, InflowConfig::default());
        let c = ip(1);
        let s = ip(2);
        // TSVAL_RING + 1 distinct unechoed TSvals in one direction.
        for i in 0..=TSVAL_RING as u32 {
            tr.process(&meta(c, s, 5000, 443, Some((100 + i, 0)), i as u64));
        }
        assert_eq!(tr.stats().ring_evicted, 1);
        assert_eq!(tr.outstanding(), TSVAL_RING);
        // The overwritten (oldest) TSval 100 no longer matches…
        assert!(tr
            .process(&meta(s, c, 443, 5000, Some((900, 100)), 10_000))
            .is_none());
        // …but the newest does.
        assert!(tr
            .process(&meta(s, c, 443, 5000, Some((901, 100 + TSVAL_RING as u32)), 11_000))
            .is_some());
    }

    #[test]
    fn reordered_echo_is_suppressed() {
        let mut tr = InflowTracker::new(0, InflowConfig::default());
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 5000, 443, Some((100, 0)), 1_000));
        // Echo timestamped BEFORE the send (tap-side reordering).
        assert!(tr
            .process(&meta(s, c, 443, 5000, Some((900, 100)), 500))
            .is_none());
        assert_eq!(tr.stats().nonmonotonic, 1);
        assert_eq!(tr.stats().samples, 0);
    }

    #[test]
    fn flow_entries_expire_and_flow_readmits() {
        let mut tr = InflowTracker::new(
            0,
            InflowConfig {
                ttl_ns: 1_000_000, // 1 ms
                ..InflowConfig::default()
            },
        );
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 5000, 443, Some((100, 0)), 0));
        tr.housekeep(Timestamp::from_micros(2_000));
        assert_eq!(tr.flows_tracked(), 0);
        assert_eq!(tr.stats().expired_flows, 1);
        // The flow's next exchange re-admits it and samples again.
        tr.process(&meta(c, s, 5000, 443, Some((200, 0)), 3_000));
        assert!(tr
            .process(&meta(s, c, 443, 5000, Some((900, 200)), 4_000))
            .is_some());
    }

    #[test]
    fn capacity_bounded_under_flow_churn() {
        let mut tr = InflowTracker::new(
            0,
            InflowConfig {
                capacity: 100,
                ..InflowConfig::default()
            },
        );
        for i in 0..10_000u32 {
            let src = IpAddress::V4(ipv4::Address([1, (i >> 16) as u8, (i >> 8) as u8, i as u8]));
            tr.process(&meta(src, ip(2), 4000, 443, Some((1 + i, 0)), i as u64));
        }
        assert_eq!(tr.flows_tracked(), 100);
        assert_eq!(tr.stats().evicted_flows, 9_900);
    }

    #[test]
    fn burst_matches_scalar_processing() {
        let mut scalar = InflowTracker::new(3, InflowConfig::default());
        let mut burst = InflowTracker::new(3, InflowConfig::default());
        let c = ip(1);
        let s = ip(2);
        let mut packets = Vec::new();
        for i in 0..64u32 {
            let t0 = i as u64 * 1_000;
            packets.push(meta(c, s, 5000, 443, Some((1000 + i, 500 + i)), t0));
            packets.push(meta(s, c, 443, 5000, Some((501 + i, 1000 + i)), t0 + 130));
        }
        let scalar_samples: Vec<u64> =
            packets.iter().filter_map(|m| scalar.process_at(m)).collect();
        let mut burst_samples = Vec::new();
        burst.process_burst(&packets, |rtt| burst_samples.push(rtt));
        assert_eq!(scalar_samples, burst_samples);
        // 64 server echoes of client TSvals + 63 client echoes of server
        // TSvals (the first client packet has nothing to echo yet).
        assert_eq!(scalar_samples.len(), 127);
        assert_eq!(scalar.stats(), burst.stats());
        assert_eq!(scalar.flows_tracked(), burst.flows_tracked());
    }

    #[test]
    fn burst_housekeeping_is_time_guarded() {
        let mut tr = InflowTracker::new(
            0,
            InflowConfig {
                ttl_ns: 1_000,                    // 1 µs
                housekeep_interval_ns: 1_000_000, // 1 ms between sweeps
                ..InflowConfig::default()
            },
        );
        let c = ip(1);
        let s = ip(2);
        tr.process_burst(&[meta(c, s, 5000, 443, Some((100, 0)), 0)], |_| {});
        tr.process_burst(&[meta(ip(3), ip(4), 1, 2, Some((5, 0)), 10)], |_| {});
        assert_eq!(tr.stats().expired_flows, 0, "guard suppressed the sweep");
        tr.process_burst(&[meta(ip(3), ip(4), 1, 3, Some((6, 0)), 2_000)], |_| {});
        assert!(tr.stats().expired_flows >= 1);
    }

    #[test]
    fn rss_hash_and_software_fallback_key_identically() {
        let mut tr = InflowTracker::new(0, InflowConfig::default());
        let c = ip(1);
        let s = ip(2);
        let mut send = meta(c, s, 5000, 443, Some((100, 0)), 0);
        let mut echo = meta(s, c, 443, 5000, Some((900, 100)), 1_000);
        send.rss_hash = 0x5a5a_1234;
        echo.rss_hash = 0x5a5a_1234; // symmetric RSS: same hash both ways
        tr.process(&send);
        assert!(tr.process(&echo).is_some());
    }

    #[test]
    fn histogram_folds_every_sample() {
        let mut tr = InflowTracker::new(0, InflowConfig::default());
        let c = ip(1);
        let s = ip(2);
        for i in 0..50u32 {
            let t0 = i as u64 * 10_000;
            tr.process(&meta(c, s, 5000, 443, Some((1000 + i, 0)), t0));
            tr.process(&meta(s, c, 443, 5000, Some((501 + i, 1000 + i)), t0 + 2_000));
        }
        let h = tr.histogram();
        assert_eq!(h.count(), tr.stats().samples);
        assert_eq!(h.count(), 50);
        // All samples are the same 2 ms RTT (to bucket precision).
        assert!(h.value_at_quantile(0.5) >= 1_900_000);
        assert!(h.max() < 2_100_000);
    }
}
