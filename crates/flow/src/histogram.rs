//! A log-linear latency histogram (HdrHistogram-style).
//!
//! Per-queue trackers and experiment harnesses need latency *distributions*
//! without retaining every sample. Buckets are log-linear: each power-of-two
//! magnitude is split into `2^precision` linear sub-buckets, giving a
//! bounded relative error of `2^-precision` across the whole range — the
//! scheme HdrHistogram popularized for exactly this job.
//!
//! The bucket geometry is exposed as free functions
//! ([`bucket_count`], [`bucket_index`], [`bucket_floor_of`]) so other
//! layers — notably `ruru-telemetry`'s sharded atomic histograms — can
//! share the exact same binning without duplicating the math.

/// Highest representable magnitude: values occupy at most 64 bits, so the
/// top power-of-two bucket row covers magnitude 63 (`1 << 63 ..= u64::MAX`).
const MAX_MAGNITUDE: u32 = 64;

/// Number of buckets a precision-`p` histogram needs.
///
/// The linear region holds values `0..2^p` exactly (one slot each); every
/// magnitude `p..=63` then contributes `2^p` sub-buckets, so the total is
/// `(65 − p)·2^p`. Sized exactly: [`bucket_index`] of `u64::MAX` is the
/// last slot, so the top bucket saturates instead of falling off the array.
pub fn bucket_count(precision: u32) -> usize {
    (MAX_MAGNITUDE as usize + 1 - precision as usize) << precision
}

/// The bucket index for `value` at the given precision.
///
/// Total over all of `u64` — the result is always `< bucket_count(p)`;
/// values at or above `1 << 63` land in the top (saturating) row. Uses
/// only shifts and masks: this runs on the dataplane hot path.
#[inline]
pub fn bucket_index(precision: u32, value: u64) -> usize {
    if value == 0 {
        return 0;
    }
    let magnitude = 63 - value.leading_zeros();
    if magnitude < precision {
        // Small values: fully linear region, exact.
        return value as usize;
    }
    let sub = (value >> (magnitude - precision)) as usize & ((1usize << precision) - 1);
    (((magnitude - precision) as usize + 1) << precision) + sub
}

/// The lower bound (representative value) of bucket `idx` at the given
/// precision — the value reported for anything recorded in that bucket.
///
/// Saturates on out-of-range indices instead of overflowing the shift.
#[inline]
pub fn bucket_floor_of(precision: u32, idx: usize) -> u64 {
    let per = 1usize << precision;
    if idx < per {
        return idx as u64;
    }
    // Widen before adding: a huge out-of-range `idx` would truncate in a
    // `u32` cast and overflow the add before `min(63)` could clamp it.
    let magnitude = ((idx >> precision) as u64)
        .saturating_add(u64::from(precision))
        .saturating_sub(1)
        .min(63) as u32;
    let sub = (idx & (per - 1)) as u64;
    (1u64 << magnitude) | (sub << (magnitude - precision))
}

/// A fixed-precision log-linear histogram over `u64` values (nanoseconds).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `2^precision` sub-buckets per magnitude; relative error ≤ 2⁻ᵖ.
    precision: u32,
    /// Bucket counts, indexed by [`bucket_index`].
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl LatencyHistogram {
    /// A histogram with `2^precision` sub-buckets per octave (precision
    /// 0–8; 5 ≈ 3 % relative error, 1.9 KiB of counters).
    pub fn new(precision: u32) -> LatencyHistogram {
        assert!(precision <= 8, "precision above 8 wastes memory");
        LatencyHistogram {
            precision,
            counts: vec![0; bucket_count(precision)],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// The conventional configuration for latencies (precision 5).
    pub fn for_latency() -> LatencyHistogram {
        Self::new(5)
    }

    fn index_of(&self, value: u64) -> usize {
        bucket_index(self.precision, value)
    }

    /// The lower bound of the bucket containing `value` — the value the
    /// histogram will report for anything recorded in that bucket.
    pub fn bucket_floor(&self, value: u64) -> u64 {
        bucket_floor_of(self.precision, self.index_of(value))
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let idx = self.index_of(value);
        // index_of() maps into 0..counts.len() by construction (the array
        // is sized so even u64::MAX hits the last, saturating bucket).
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact minimum recorded value (not bucketed).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` (0–1), accurate to the bucket's relative
    /// error.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= target {
                // Report the representative (floor) value of this bucket,
                // clamped into the recorded range. max/min (not `clamp`):
                // this stays total even if min/max are ever inconsistent
                // (e.g. a merged-then-cleared histogram mid-transition).
                let floor = bucket_floor_of(self.precision, idx);
                return floor.max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram (same precision) into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        if other.total == 0 {
            // An empty histogram contributes nothing; skipping keeps our
            // min/max untouched by the other's sentinel values.
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Reset all counters.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::for_latency();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_quantile(0.5), 0);
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut h = LatencyHistogram::for_latency();
        for v in [100u64, 200, 300, 400, 500] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 500);
        assert_eq!(h.mean(), 300.0);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LatencyHistogram::new(5);
        // 1..=100_000 — a wide range spanning many octaves.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.95, 95_000.0), (0.99, 99_000.0)] {
            let got = h.value_at_quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.04, "q{q}: got {got}, expect {expect}, rel {rel}");
        }
        assert_eq!(h.value_at_quantile(0.0), 1);
        assert_eq!(h.value_at_quantile(1.0), 100_000);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new(5);
        for v in 0..32u64 {
            h.record(v);
        }
        // The linear region holds values < 2^precision exactly.
        assert_eq!(h.bucket_floor(0), 0);
        assert_eq!(h.bucket_floor(17), 17);
        assert_eq!(h.bucket_floor(31), 31);
    }

    #[test]
    fn bucket_floor_never_exceeds_value() {
        let mut x = 0x243f6a8885a308d3u64;
        let h = LatencyHistogram::new(5);
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x >> (x % 50); // spread across magnitudes
            let floor = h.bucket_floor(v);
            assert!(floor <= v, "floor {floor} > value {v}");
            // Relative error bound: floor ≥ v × (1 − 2⁻ᵖ⁺¹) for v ≥ 2^p.
            if v >= 32 {
                assert!(
                    (v - floor) as f64 / v as f64 <= 1.0 / 32.0 + 1e-9,
                    "floor {floor} too far below {v}"
                );
            }
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new(5);
        let mut b = LatencyHistogram::new(5);
        let mut combined = LatencyHistogram::new(5);
        for v in 1..1000u64 {
            if v % 2 == 0 {
                a.record(v * 1000);
            } else {
                b.record(v * 1000);
            }
            combined.record(v * 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.value_at_quantile(q), combined.value_at_quantile(q));
        }
    }

    #[test]
    fn clear_resets() {
        let mut h = LatencyHistogram::new(4);
        h.record(12345);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.value_at_quantile(0.5), 0);
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_requires_same_precision() {
        let mut a = LatencyHistogram::new(4);
        let b = LatencyHistogram::new(5);
        a.merge(&b);
    }

    #[test]
    fn realistic_latency_distribution() {
        // 130 ms baseline with 1% at 4000 ms: the p99.5 exposes the spike.
        let mut h = LatencyHistogram::for_latency();
        for i in 0..10_000u64 {
            let v = if i % 100 == 0 {
                4_000_000_000
            } else {
                130_000_000 + (i % 997) * 10_000
            };
            h.record(v);
        }
        let p50 = h.value_at_quantile(0.5);
        let p995 = h.value_at_quantile(0.995);
        assert!((125_000_000..145_000_000).contains(&p50), "p50 {p50}");
        assert!(p995 >= 3_800_000_000, "p99.5 {p995}");
    }

    // ---- boundary behaviour at and above the top bucket ----

    #[test]
    fn top_bucket_values_are_counted_at_every_precision() {
        // Regression: precision 0 used to size the array one slot short,
        // so values at magnitude 63 incremented `total` but no bucket —
        // quantiles silently drifted from the count. Every recorded value
        // must land in a real bucket.
        for p in 0..=8u32 {
            let mut h = LatencyHistogram::new(p);
            for v in [1u64, 1 << 62, (1 << 63) - 1, 1 << 63, u64::MAX - 1, u64::MAX] {
                h.record(v);
            }
            let bucketed: u64 = h.counts.iter().sum();
            assert_eq!(
                bucketed,
                h.count(),
                "precision {p}: {bucketed} bucketed of {} recorded",
                h.count()
            );
        }
    }

    #[test]
    fn bucket_index_is_total_and_in_range() {
        for p in 0..=8u32 {
            let len = bucket_count(p);
            for v in [
                0u64,
                1,
                (1 << p) - 1,
                1 << p,
                u64::MAX >> 1,
                (u64::MAX >> 1) + 1,
                1 << 63,
                u64::MAX,
            ] {
                let idx = bucket_index(p, v);
                assert!(idx < len, "precision {p}: index {idx} out of {len} for {v}");
            }
            assert_eq!(
                bucket_index(p, u64::MAX),
                len - 1,
                "u64::MAX saturates into the last bucket"
            );
        }
    }

    #[test]
    fn bucket_floor_saturates_above_max_magnitude() {
        for p in 0..=8u32 {
            let h = LatencyHistogram::new(p);
            for v in [1u64 << 63, u64::MAX - 1, u64::MAX] {
                let floor = h.bucket_floor(v);
                assert!(floor <= v, "precision {p}: floor {floor} > {v}");
                assert!(
                    floor >= 1 << 63,
                    "precision {p}: top-row value {v} reported below its magnitude: {floor}"
                );
            }
            // Out-of-range indices saturate rather than overflow the shift.
            assert!(bucket_floor_of(p, usize::MAX >> 8) >= 1 << 63);
        }
    }

    #[test]
    fn quantile_of_extreme_values_stays_in_range() {
        let mut h = LatencyHistogram::new(0);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.value_at_quantile(0.5), u64::MAX);
        assert_eq!(h.value_at_quantile(1.0), u64::MAX);
        h.record(1);
        let p25 = h.value_at_quantile(0.25);
        assert_eq!(p25, 1, "low quantile finds the small value: {p25}");
    }

    // ---- merged-then-cleared sequences ----

    #[test]
    fn merge_with_empty_keeps_exact_min_max() {
        let mut h = LatencyHistogram::new(5);
        h.record(500);
        let empty = LatencyHistogram::new(5);
        h.merge(&empty);
        // The empty histogram's sentinel min (u64::MAX) must not leak.
        assert_eq!(h.min(), 500);
        assert_eq!(h.max(), 500);
        assert_eq!(h.count(), 1);

        // And merging *into* a cleared histogram restores the source.
        let mut cleared = LatencyHistogram::new(5);
        cleared.record(77);
        cleared.clear();
        cleared.merge(&h);
        assert_eq!(cleared.min(), 500);
        assert_eq!(cleared.value_at_quantile(0.5), h.value_at_quantile(0.5));
    }

    #[test]
    fn merged_then_cleared_histogram_recovers() {
        let mut a = LatencyHistogram::new(5);
        let mut b = LatencyHistogram::new(5);
        for v in 1..100u64 {
            b.record(v * 1_000);
        }
        a.merge(&b);
        a.clear();
        // After clearing a merged histogram, quantiles are empty-safe...
        assert_eq!(a.count(), 0);
        assert_eq!(a.value_at_quantile(0.5), 0);
        assert_eq!(a.value_at_quantile(1.0), 0);
        // ...and re-merging reproduces the source distribution exactly.
        a.merge(&b);
        assert_eq!(a.count(), b.count());
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(a.value_at_quantile(q), b.value_at_quantile(q));
        }
    }
}
