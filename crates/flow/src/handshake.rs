//! The SYN / SYN-ACK / ACK handshake state machine — Ruru's measurement
//! engine (the paper's Figure 1).
//!
//! One [`HandshakeTracker`] runs per RX queue. Because symmetric RSS
//! delivers both directions of a flow to the same queue, the tracker is
//! purely single-threaded: a hash table of in-flight handshakes, three state
//! transitions, and one emitted [`LatencyMeasurement`] per completed
//! handshake.
//!
//! Robustness rules (exercised by the fault-injection tests):
//!
//! * Retransmitted SYNs keep the *first* SYN timestamp (the paper measures
//!   from the first SYN) and are counted.
//! * A SYN with a *different* ISN on an in-flight tuple restarts the entry —
//!   it is a new connection attempt (port reuse).
//! * SYN-ACKs must acknowledge `ISN+1`; anything else is counted as stray
//!   and ignored (protects against spoofed/corrupted packets).
//! * The completing ACK must acknowledge the server's `ISN+1`.
//! * RST aborts the entry without a measurement.
//! * Entries expire after a TTL, and the table is capacity-bounded with
//!   oldest-first eviction, so SYN floods cannot exhaust memory.

use crate::classify::TcpMeta;
use crate::histogram::LatencyHistogram;
use crate::key::{Direction, FlowKey};
use crate::measurement::LatencyMeasurement;
use crate::table::{FlowTable, InsertOutcome};
use ruru_nic::Timestamp;

/// Configuration of a per-queue tracker.
#[derive(Debug, Clone)]
pub struct TrackerConfig {
    /// Maximum in-flight handshakes held (per queue).
    pub capacity: usize,
    /// Handshake time-to-live: entries older than this are dropped.
    pub ttl_ns: u64,
    /// How many packets between housekeeping (expiry) sweeps on the
    /// per-packet [`HandshakeTracker::process`] path.
    pub expire_interval_packets: u64,
    /// Minimum simulated time between housekeeping sweeps on the burst
    /// path ([`HandshakeTracker::process_burst`] /
    /// [`HandshakeTracker::housekeep_guarded`]): expiry is amortized to
    /// burst boundaries and skipped entirely while less than this has
    /// elapsed since the last sweep.
    pub housekeep_interval_ns: u64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            capacity: 1 << 20,
            ttl_ns: 10_000_000_000, // 10 s — covers several SYN retransmissions
            expire_interval_packets: 1024,
            housekeep_interval_ns: 1_000_000_000, // 1 s ≪ the 10 s TTL
        }
    }
}

/// Counters exposed by a tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrackerStats {
    /// TCP packets processed.
    pub packets: u64,
    /// Pure SYNs observed.
    pub syns: u64,
    /// SYN-ACKs observed.
    pub synacks: u64,
    /// Measurements emitted (completed handshakes).
    pub measurements: u64,
    /// Retransmitted SYNs (same ISN).
    pub syn_retransmissions: u64,
    /// Retransmitted SYN-ACKs.
    pub synack_retransmissions: u64,
    /// SYNs that restarted an entry with a new ISN (tuple reuse).
    pub restarts: u64,
    /// SYN-ACKs with no matching SYN, wrong direction or wrong ACK number.
    pub stray_synacks: u64,
    /// Handshakes aborted by RST.
    pub rst_aborts: u64,
    /// Entries dropped by TTL expiry (incomplete handshakes).
    pub expired: u64,
    /// Entries force-evicted by capacity pressure (SYN-flood shedding).
    pub evicted: u64,
    /// ACK timestamps that preceded the SYN-ACK timestamp (clock anomaly /
    /// severe reordering); measurement suppressed.
    pub nonmonotonic: u64,
}

#[derive(Debug, Clone, Copy)]
enum HsState {
    /// SYN seen; waiting for SYN-ACK.
    SynSeen {
        t_syn: Timestamp,
        client_isn: u32,
        syn_retx: u8,
    },
    /// SYN-ACK seen; waiting for the client's ACK.
    SynAckSeen {
        t_syn: Timestamp,
        t_synack: Timestamp,
        server_isn: u32,
        syn_retx: u8,
    },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    state: HsState,
    /// Direction (relative to the canonical key) the SYN travelled — i.e.
    /// which side is the client.
    client_dir: Direction,
}

/// The per-queue handshake tracker.
pub struct HandshakeTracker {
    table: FlowTable<FlowKey, Entry>,
    queue_id: u16,
    config: TrackerConfig,
    stats: TrackerStats,
    packets_since_expiry: u64,
    last_seen: Timestamp,
    last_housekeep: Timestamp,
    histogram: LatencyHistogram,
    /// Per-burst staging for route hashes, so the burst path computes each
    /// packet's hash exactly once (prefetch + state machine) without
    /// allocating per burst. Only the hash is staged: recomputing the
    /// canonical key is a couple of compares, while the software-hash
    /// fallback is the expensive part.
    burst_scratch: Vec<u32>,
}

impl HandshakeTracker {
    /// A tracker for queue `queue_id`.
    pub fn new(queue_id: u16, config: TrackerConfig) -> HandshakeTracker {
        let table = FlowTable::new(config.capacity, config.ttl_ns);
        HandshakeTracker {
            table,
            queue_id,
            config,
            stats: TrackerStats::default(),
            packets_since_expiry: 0,
            last_seen: Timestamp::ZERO,
            last_housekeep: Timestamp::ZERO,
            histogram: LatencyHistogram::for_latency(),
            burst_scratch: Vec::new(),
        }
    }

    /// The hash the flow table is keyed by: the NIC's symmetric Toeplitz
    /// RSS hash when the packet carries one, else a software hash of the
    /// canonical key. Both are direction-invariant, so the SYN and the
    /// SYN-ACK of one flow always key identically, and a flow whose
    /// packets carry no NIC hash falls back consistently.
    #[inline]
    fn route_hash(meta: &TcpMeta, key: &FlowKey) -> u32 {
        if meta.rss_hash != 0 {
            meta.rss_hash
        } else {
            key.mix_hash()
        }
    }

    /// Process one classified TCP packet; returns a measurement when this
    /// packet completed a handshake. Runs packet-count-based housekeeping
    /// (the scalar path; the engine's burst path uses
    /// [`HandshakeTracker::process_burst`], which amortizes expiry to
    /// burst boundaries behind a time-delta guard instead).
    pub fn process(&mut self, meta: &TcpMeta) -> Option<LatencyMeasurement> {
        self.packets_since_expiry += 1;
        if self.packets_since_expiry >= self.config.expire_interval_packets {
            self.housekeep(meta.timestamp);
        }
        self.process_at(meta)
    }

    /// The handshake state machine for one packet, with no housekeeping
    /// trigger — callers choose their expiry cadence.
    pub fn process_at(&mut self, meta: &TcpMeta) -> Option<LatencyMeasurement> {
        let (key, dir) = FlowKey::from_tuple(meta.src, meta.dst, meta.src_port, meta.dst_port);
        let hash = Self::route_hash(meta, &key);
        self.dispatch(hash, key, dir, meta)
    }

    /// The state machine proper, with the route already resolved — shared
    /// by the scalar path (which resolves per packet) and the burst path
    /// (which resolves once during prefetch staging).
    fn dispatch(
        &mut self,
        hash: u32,
        key: FlowKey,
        dir: Direction,
        meta: &TcpMeta,
    ) -> Option<LatencyMeasurement> {
        self.stats.packets += 1;
        self.last_seen = meta.timestamp;

        if meta.flags.contains(ruru_wire::tcp::Flags::RST) {
            if self.table.remove(hash, &key).is_some() {
                self.stats.rst_aborts += 1;
            }
            return None;
        }

        if meta.flags.is_syn_only() {
            self.on_syn(hash, key, dir, meta);
            return None;
        }

        if meta.flags.is_syn_ack() {
            self.on_synack(hash, key, dir, meta);
            return None;
        }

        if meta.flags.contains(ruru_wire::tcp::Flags::ACK) {
            return self.on_ack(hash, key, dir, meta);
        }

        None
    }

    /// Process a whole RX burst, `rte_hash_lookup_bulk`-style: stage every
    /// packet's home bucket into cache, then run the state machine per
    /// packet (emitting measurements through `emit`), and finish with one
    /// time-delta-guarded housekeeping sweep at the burst boundary.
    pub fn process_burst(
        &mut self,
        metas: &[TcpMeta],
        mut emit: impl FnMut(LatencyMeasurement),
    ) {
        // Stage 1: hash each packet's route once and prefetch its home
        // bucket.
        let mut staged = core::mem::take(&mut self.burst_scratch);
        staged.clear();
        // alloc-ok: burst_scratch is reused across bursts; reserve is a
        // no-op once it has grown to the largest burst seen.
        staged.reserve(metas.len());
        for meta in metas {
            let (key, _) = FlowKey::from_tuple(meta.src, meta.dst, meta.src_port, meta.dst_port);
            let hash = Self::route_hash(meta, &key);
            self.table.prefetch(hash);
            staged.push(hash);
        }
        // Stage 2: the per-packet state machine against warmed lines,
        // reusing the staged hashes instead of re-hashing.
        for (&hash, meta) in staged.iter().zip(metas) {
            let (key, dir) = FlowKey::from_tuple(meta.src, meta.dst, meta.src_port, meta.dst_port);
            if let Some(m) = self.dispatch(hash, key, dir, meta) {
                emit(m);
            }
        }
        self.burst_scratch = staged;
        // Stage 3: expiry amortized to the burst boundary.
        if let Some(last) = metas.last() {
            self.housekeep_guarded(last.timestamp);
        }
    }

    /// Run a housekeeping sweep only if at least
    /// [`TrackerConfig::housekeep_interval_ns`] has elapsed since the last
    /// one — the burst path's cheap per-burst guard (two u64 reads and a
    /// subtraction when it doesn't fire).
    pub fn housekeep_guarded(&mut self, now: Timestamp) {
        if now.saturating_nanos_since(self.last_housekeep) >= self.config.housekeep_interval_ns {
            self.housekeep(now);
        }
    }

    fn on_syn(&mut self, hash: u32, key: FlowKey, dir: Direction, meta: &TcpMeta) {
        self.stats.syns += 1;
        if let Some(entry) = self.table.get_mut(hash, &key) {
            match entry.state {
                HsState::SynSeen {
                    client_isn,
                    ref mut syn_retx,
                    ..
                } if entry.client_dir == dir && client_isn == meta.seq => {
                    // Retransmission: keep the first timestamp (Figure 1
                    // measures from the *first* SYN).
                    *syn_retx = syn_retx.saturating_add(1);
                    self.stats.syn_retransmissions += 1;
                    return;
                }
                _ => {
                    // New ISN or new direction on a live tuple: a fresh
                    // connection attempt. Restart the entry.
                    self.stats.restarts += 1;
                    self.table.remove(hash, &key);
                }
            }
        }
        let outcome = self.table.insert(
            hash,
            key,
            Entry {
                state: HsState::SynSeen {
                    t_syn: meta.timestamp,
                    client_isn: meta.seq,
                    syn_retx: 0,
                },
                client_dir: dir,
            },
            meta.timestamp,
        );
        if outcome == InsertOutcome::InsertedWithEviction {
            self.stats.evicted += 1;
        }
    }

    fn on_synack(&mut self, hash: u32, key: FlowKey, dir: Direction, meta: &TcpMeta) {
        self.stats.synacks += 1;
        let Some(entry) = self.table.get_mut(hash, &key) else {
            self.stats.stray_synacks += 1;
            return;
        };
        match entry.state {
            HsState::SynSeen {
                t_syn,
                client_isn,
                syn_retx,
            } => {
                // Must travel opposite to the SYN and ack the client's ISN+1.
                if dir == entry.client_dir || meta.ack != client_isn.wrapping_add(1) {
                    self.stats.stray_synacks += 1;
                    return;
                }
                entry.state = HsState::SynAckSeen {
                    t_syn,
                    t_synack: meta.timestamp,
                    server_isn: meta.seq,
                    syn_retx,
                };
            }
            HsState::SynAckSeen { server_isn, .. } => {
                if dir != entry.client_dir && meta.seq == server_isn {
                    // Retransmitted SYN-ACK: keep the first timestamp.
                    self.stats.synack_retransmissions += 1;
                } else {
                    self.stats.stray_synacks += 1;
                }
            }
        }
    }

    fn on_ack(
        &mut self,
        hash: u32,
        key: FlowKey,
        dir: Direction,
        meta: &TcpMeta,
    ) -> Option<LatencyMeasurement> {
        // Fast path: data packets of established flows miss the table.
        let entry = self.table.get(hash, &key).copied()?;
        let HsState::SynAckSeen {
            t_syn,
            t_synack,
            server_isn,
            syn_retx,
        } = entry.state
        else {
            // account-ok: tracked flow not yet past SYN+ACK — this ACK is
            // an ordinary data segment, counted in stats.packets upstream.
            return None;
        };
        // The completing ACK travels in the client's direction and
        // acknowledges the server's ISN+1 (it may carry data).
        if dir != entry.client_dir || meta.ack != server_isn.wrapping_add(1) {
            // account-ok: not the handshake-completing ACK; the flow stays
            // tracked and the packet was counted in stats.packets upstream.
            return None;
        }
        self.table.remove(hash, &key);
        if meta.timestamp < t_synack || t_synack < t_syn {
            self.stats.nonmonotonic += 1;
            return None;
        }
        self.stats.measurements += 1;
        self.histogram
            .record((meta.timestamp - t_synack) + (t_synack - t_syn));
        let (src, dst, src_port, dst_port) = key.as_seen(entry.client_dir);
        Some(LatencyMeasurement {
            src,
            dst,
            src_port,
            dst_port,
            internal_ns: meta.timestamp - t_synack,
            external_ns: t_synack - t_syn,
            completed_at: meta.timestamp,
            queue_id: self.queue_id,
            syn_retransmissions: syn_retx,
        })
    }

    /// Run an expiry sweep at `now` (also called automatically every
    /// `expire_interval_packets` packets on the scalar path, and behind
    /// the time-delta guard on the burst path).
    pub fn housekeep(&mut self, now: Timestamp) {
        self.packets_since_expiry = 0;
        self.last_housekeep = now;
        let before = self.table.expirations();
        self.table.expire(now, |_k, _v| {});
        self.stats.expired += self.table.expirations() - before;
    }

    /// In-flight (incomplete) handshakes currently tracked.
    pub fn in_flight(&self) -> usize {
        self.table.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TrackerStats {
        let mut s = self.stats;
        // Evictions can also happen inside ExpiringTable on insert; keep the
        // authoritative count from the table.
        s.evicted = self.table.evictions();
        s
    }

    /// The queue this tracker serves.
    pub fn queue_id(&self) -> u16 {
        self.queue_id
    }

    /// Timestamp of the most recent packet processed.
    pub fn last_seen(&self) -> Timestamp {
        self.last_seen
    }

    /// Distribution of total latencies measured by this queue.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruru_wire::tcp::Flags;
    use ruru_wire::{ipv4, IpAddress};

    fn ip(last: u8) -> IpAddress {
        IpAddress::V4(ipv4::Address([10, 0, 0, last]))
    }

    #[allow(clippy::too_many_arguments)]
    fn meta(
        src: IpAddress,
        dst: IpAddress,
        sp: u16,
        dp: u16,
        flags: Flags,
        seq: u32,
        ack: u32,
        t_us: u64,
    ) -> TcpMeta {
        TcpMeta {
            src,
            dst,
            src_port: sp,
            dst_port: dp,
            seq,
            ack,
            flags,
            payload_len: 0,
            timestamps: None,
            timestamp: Timestamp::from_micros(t_us),
            rss_hash: 0,
        }
    }

    /// Standard three-way handshake: SYN at t=0, SYN-ACK at t=130ms,
    /// ACK at t=131.2ms (external 130ms, internal 1.2ms).
    fn run_handshake(tr: &mut HandshakeTracker) -> Option<LatencyMeasurement> {
        let c = ip(1);
        let s = ip(2);
        assert!(tr
            .process(&meta(c, s, 51000, 443, Flags::SYN, 1000, 0, 0))
            .is_none());
        assert!(tr
            .process(&meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 1001, 130_000))
            .is_none());
        tr.process(&meta(c, s, 51000, 443, Flags::ACK, 1001, 9001, 131_200))
    }

    #[test]
    fn basic_handshake_measures_figure1_latencies() {
        let mut tr = HandshakeTracker::new(7, TrackerConfig::default());
        let m = run_handshake(&mut tr).expect("measurement");
        assert_eq!(m.external_ns, 130_000_000);
        assert_eq!(m.internal_ns, 1_200_000);
        assert_eq!(m.total_ns(), 131_200_000);
        assert_eq!(m.src, ip(1), "src is the SYN sender");
        assert_eq!(m.dst, ip(2));
        assert_eq!(m.src_port, 51000);
        assert_eq!(m.dst_port, 443);
        assert_eq!(m.queue_id, 7);
        assert_eq!(m.syn_retransmissions, 0);
        assert_eq!(tr.in_flight(), 0, "completed entry removed");
        let s = tr.stats();
        assert_eq!(s.measurements, 1);
        assert_eq!(s.syns, 1);
        assert_eq!(s.synacks, 1);
    }

    #[test]
    fn histogram_records_each_measurement() {
        let mut tr = HandshakeTracker::new(0, TrackerConfig::default());
        run_handshake(&mut tr).unwrap();
        let h = tr.histogram();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 131_200_000);
        // p50 of one sample is that sample (to bucket precision).
        assert!(h.value_at_quantile(0.5) >= 127_000_000);
    }

    #[test]
    fn syn_retransmission_keeps_first_timestamp() {
        let mut tr = HandshakeTracker::new(0, TrackerConfig::default());
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 51000, 443, Flags::SYN, 1000, 0, 0));
        // retransmit 1 s later, same ISN
        tr.process(&meta(c, s, 51000, 443, Flags::SYN, 1000, 0, 1_000_000));
        tr.process(&meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 1001, 1_130_000));
        let m = tr
            .process(&meta(c, s, 51000, 443, Flags::ACK, 1001, 9001, 1_131_000))
            .unwrap();
        // external measured from the FIRST SYN: 1.13 s
        assert_eq!(m.external_ns, 1_130_000_000);
        assert_eq!(m.syn_retransmissions, 1);
        assert_eq!(tr.stats().syn_retransmissions, 1);
    }

    #[test]
    fn new_isn_restarts_entry() {
        let mut tr = HandshakeTracker::new(0, TrackerConfig::default());
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 51000, 443, Flags::SYN, 1000, 0, 0));
        // Same tuple, different ISN: a fresh attempt (e.g. after app retry).
        tr.process(&meta(c, s, 51000, 443, Flags::SYN, 5000, 0, 10_000));
        tr.process(&meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 5001, 140_000));
        let m = tr
            .process(&meta(c, s, 51000, 443, Flags::ACK, 5001, 9001, 141_000))
            .unwrap();
        assert_eq!(m.external_ns, 130_000_000, "measured from the new SYN");
        assert_eq!(tr.stats().restarts, 1);
    }

    #[test]
    fn synack_must_ack_isn_plus_one() {
        let mut tr = HandshakeTracker::new(0, TrackerConfig::default());
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 51000, 443, Flags::SYN, 1000, 0, 0));
        // Wrong ack number: ignored as stray.
        tr.process(&meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 4242, 100));
        assert_eq!(tr.stats().stray_synacks, 1);
        // Correct one still completes.
        tr.process(&meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 1001, 130_000));
        assert!(tr
            .process(&meta(c, s, 51000, 443, Flags::ACK, 1001, 9001, 131_000))
            .is_some());
    }

    #[test]
    fn synack_without_syn_is_stray() {
        let mut tr = HandshakeTracker::new(0, TrackerConfig::default());
        tr.process(&meta(ip(2), ip(1), 443, 51000, Flags::SYN | Flags::ACK, 1, 1, 0));
        assert_eq!(tr.stats().stray_synacks, 1);
        assert_eq!(tr.in_flight(), 0);
    }

    #[test]
    fn synack_retransmission_keeps_first_timestamp() {
        let mut tr = HandshakeTracker::new(0, TrackerConfig::default());
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 51000, 443, Flags::SYN, 1000, 0, 0));
        tr.process(&meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 1001, 130_000));
        tr.process(&meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 1001, 230_000));
        assert_eq!(tr.stats().synack_retransmissions, 1);
        let m = tr
            .process(&meta(c, s, 51000, 443, Flags::ACK, 1001, 9001, 231_000))
            .unwrap();
        // internal measured from the FIRST SYN-ACK
        assert_eq!(m.internal_ns, 101_000_000);
    }

    #[test]
    fn ack_with_wrong_number_does_not_complete() {
        let mut tr = HandshakeTracker::new(0, TrackerConfig::default());
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 51000, 443, Flags::SYN, 1000, 0, 0));
        tr.process(&meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 1001, 130_000));
        assert!(tr
            .process(&meta(c, s, 51000, 443, Flags::ACK, 1001, 7777, 131_000))
            .is_none());
        assert_eq!(tr.in_flight(), 1, "entry remains until the right ACK");
    }

    #[test]
    fn ack_from_server_side_does_not_complete() {
        let mut tr = HandshakeTracker::new(0, TrackerConfig::default());
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 51000, 443, Flags::SYN, 1000, 0, 0));
        tr.process(&meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 1001, 130_000));
        // A (bogus) plain ACK from the server direction must not complete.
        assert!(tr
            .process(&meta(s, c, 443, 51000, Flags::ACK, 9001, 9001, 131_000))
            .is_none());
        assert_eq!(tr.stats().measurements, 0);
    }

    #[test]
    fn rst_aborts_handshake() {
        let mut tr = HandshakeTracker::new(0, TrackerConfig::default());
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 51000, 443, Flags::SYN, 1000, 0, 0));
        tr.process(&meta(s, c, 443, 51000, Flags::RST | Flags::ACK, 0, 1001, 50));
        assert_eq!(tr.stats().rst_aborts, 1);
        assert_eq!(tr.in_flight(), 0);
        // Late SYN-ACK is now stray.
        tr.process(&meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 1001, 100));
        assert_eq!(tr.stats().stray_synacks, 1);
    }

    #[test]
    fn data_packets_of_established_flows_are_cheap_misses() {
        let mut tr = HandshakeTracker::new(0, TrackerConfig::default());
        let c = ip(1);
        let s = ip(2);
        run_handshake(&mut tr).unwrap();
        // Data flows after completion: no state, no measurements.
        for i in 0..100u32 {
            assert!(tr
                .process(&meta(c, s, 51000, 443, Flags::ACK | Flags::PSH, 2000 + i, 9001, 200_000))
                .is_none());
        }
        assert_eq!(tr.stats().measurements, 1);
        assert_eq!(tr.in_flight(), 0);
    }

    #[test]
    fn expiry_drops_half_open_handshakes() {
        let mut tr = HandshakeTracker::new(
            0,
            TrackerConfig {
                ttl_ns: 1_000_000, // 1 ms
                ..TrackerConfig::default()
            },
        );
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 51000, 443, Flags::SYN, 1000, 0, 0));
        assert_eq!(tr.in_flight(), 1);
        tr.housekeep(Timestamp::from_micros(2_000));
        assert_eq!(tr.in_flight(), 0);
        assert_eq!(tr.stats().expired, 1);
        // A SYN-ACK arriving after expiry is stray; no measurement results.
        tr.process(&meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 1001, 2_100));
        assert_eq!(tr.stats().stray_synacks, 1);
    }

    #[test]
    fn automatic_housekeeping_runs_by_packet_count() {
        let mut tr = HandshakeTracker::new(
            0,
            TrackerConfig {
                ttl_ns: 1_000, // 1 µs
                expire_interval_packets: 10,
                ..TrackerConfig::default()
            },
        );
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 51000, 443, Flags::SYN, 1, 0, 0));
        // 10 unrelated packets at t=1s trigger housekeeping.
        for i in 0..10u16 {
            tr.process(&meta(ip(3), ip(4), 1000 + i, 80, Flags::ACK, 1, 1, 1_000_000));
        }
        assert_eq!(tr.stats().expired, 1);
    }

    #[test]
    fn capacity_bound_sheds_oldest_under_synflood() {
        let mut tr = HandshakeTracker::new(
            0,
            TrackerConfig {
                capacity: 100,
                ..TrackerConfig::default()
            },
        );
        // 10k distinct spoofed SYNs.
        for i in 0..10_000u32 {
            let src = IpAddress::V4(ipv4::Address([
                (i >> 24) as u8 | 1,
                (i >> 16) as u8,
                (i >> 8) as u8,
                i as u8,
            ]));
            tr.process(&meta(src, ip(2), 4000, 443, Flags::SYN, i, 0, i as u64));
        }
        assert_eq!(tr.in_flight(), 100);
        assert_eq!(tr.stats().evicted, 9_900);
        // A real handshake still completes under flood.
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 51000, 443, Flags::SYN, 1000, 0, 20_000));
        tr.process(&meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 1001, 21_000));
        assert!(tr
            .process(&meta(c, s, 51000, 443, Flags::ACK, 1001, 9001, 22_000))
            .is_some());
    }

    #[test]
    fn process_burst_matches_per_packet_processing() {
        let mut scalar = HandshakeTracker::new(3, TrackerConfig::default());
        let mut burst = HandshakeTracker::new(3, TrackerConfig::default());
        let c = ip(1);
        let s = ip(2);
        let packets = vec![
            meta(c, s, 51000, 443, Flags::SYN, 1000, 0, 0),
            meta(ip(5), s, 52000, 443, Flags::SYN, 7, 0, 10),
            meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 1001, 130_000),
            meta(c, s, 51000, 443, Flags::ACK, 1001, 9001, 131_200),
            meta(s, ip(5), 443, 52000, Flags::RST, 0, 8, 131_500),
        ];
        let scalar_ms: Vec<_> = packets.iter().filter_map(|m| scalar.process_at(m)).collect();
        let mut burst_ms = Vec::new();
        burst.process_burst(&packets, |m| burst_ms.push(m));
        assert_eq!(scalar_ms, burst_ms);
        assert_eq!(scalar_ms.len(), 1);
        assert_eq!(scalar.stats(), burst.stats());
        assert_eq!(scalar.in_flight(), burst.in_flight());
    }

    #[test]
    fn burst_housekeeping_is_time_guarded() {
        let mut tr = HandshakeTracker::new(
            0,
            TrackerConfig {
                ttl_ns: 1_000, // 1 µs
                housekeep_interval_ns: 1_000_000, // 1 ms between sweeps
                ..TrackerConfig::default()
            },
        );
        let c = ip(1);
        let s = ip(2);
        tr.process_burst(&[meta(c, s, 51000, 443, Flags::SYN, 1, 0, 0)], |_| {});
        // A burst 10 µs later: the entry is past its TTL but the guard
        // hasn't elapsed, so no sweep runs.
        tr.process_burst(&[meta(ip(3), ip(4), 1000, 80, Flags::ACK, 1, 1, 10)], |_| {});
        assert_eq!(tr.stats().expired, 0, "guard suppressed the sweep");
        assert_eq!(tr.in_flight(), 1);
        // A burst 2 ms later clears the guard and expires the entry.
        tr.process_burst(&[meta(ip(3), ip(4), 1001, 80, Flags::ACK, 1, 1, 2_000)], |_| {});
        assert_eq!(tr.stats().expired, 1);
        assert_eq!(tr.in_flight(), 0);
    }

    #[test]
    fn nic_rss_hash_and_software_fallback_key_identically_per_flow() {
        // A flow whose packets all carry the same NIC hash completes, and
        // an (independent) flow with no NIC hash completes via mix_hash —
        // both through the same table.
        let mut tr = HandshakeTracker::new(0, TrackerConfig::default());
        let c = ip(1);
        let s = ip(2);
        let mut syn = meta(c, s, 51000, 443, Flags::SYN, 1000, 0, 0);
        let mut synack = meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 1001, 130_000);
        let mut ack = meta(c, s, 51000, 443, Flags::ACK, 1001, 9001, 131_200);
        // Symmetric RSS: both directions carry the same hash.
        syn.rss_hash = 0x5a5a_1234;
        synack.rss_hash = 0x5a5a_1234;
        ack.rss_hash = 0x5a5a_1234;
        assert!(tr.process(&syn).is_none());
        assert!(tr.process(&synack).is_none());
        let m = tr.process(&ack).expect("NIC-hashed flow measured");
        assert_eq!(m.external_ns, 130_000_000);
        // Software-fallback flow (rss_hash == 0 via the meta() helper).
        let mut tr2 = HandshakeTracker::new(0, TrackerConfig::default());
        assert!(run_handshake(&mut tr2).is_some());
    }

    #[test]
    fn wrapping_isn_handled() {
        let mut tr = HandshakeTracker::new(0, TrackerConfig::default());
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 51000, 443, Flags::SYN, u32::MAX, 0, 0));
        tr.process(&meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, u32::MAX, 0, 1_000));
        let m = tr.process(&meta(c, s, 51000, 443, Flags::ACK, 0, 0, 2_000));
        assert!(m.is_some(), "ISN+1 wraps to 0");
    }

    #[test]
    fn nonmonotonic_timestamps_suppressed() {
        let mut tr = HandshakeTracker::new(0, TrackerConfig::default());
        let c = ip(1);
        let s = ip(2);
        tr.process(&meta(c, s, 51000, 443, Flags::SYN, 1000, 0, 5_000));
        tr.process(&meta(s, c, 443, 51000, Flags::SYN | Flags::ACK, 9000, 1001, 6_000));
        // ACK timestamped BEFORE the SYN-ACK (pathological reorder).
        let m = tr.process(&meta(c, s, 51000, 443, Flags::ACK, 1001, 9001, 5_500));
        assert!(m.is_none());
        assert_eq!(tr.stats().nonmonotonic, 1);
        assert_eq!(tr.in_flight(), 0, "entry consumed either way");
    }

    #[test]
    fn simultaneous_flows_tracked_independently() {
        let mut tr = HandshakeTracker::new(0, TrackerConfig::default());
        let s = ip(100);
        // Interleave 50 handshakes.
        for i in 0..50u16 {
            let c = ip((i + 1) as u8);
            tr.process(&meta(c, s, 50_000 + i, 443, Flags::SYN, i as u32, 0, i as u64 * 10));
        }
        for i in 0..50u16 {
            let c = ip((i + 1) as u8);
            tr.process(&meta(
                s, c, 443, 50_000 + i,
                Flags::SYN | Flags::ACK,
                1000 + i as u32,
                i as u32 + 1,
                100_000 + i as u64 * 10,
            ));
        }
        let mut measured = 0;
        for i in 0..50u16 {
            let c = ip((i + 1) as u8);
            if tr
                .process(&meta(
                    c, s, 50_000 + i, 443,
                    Flags::ACK,
                    i as u32 + 1,
                    1001 + i as u32,
                    200_000 + i as u64 * 10,
                ))
                .is_some()
            {
                measured += 1;
            }
        }
        assert_eq!(measured, 50);
        assert_eq!(tr.stats().measurements, 50);
    }
}
