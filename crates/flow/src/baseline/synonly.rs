//! SYN→SYN-ACK-only RTT estimation.
//!
//! The simplest passive latency estimator (what many flow monitors and IDSes
//! implement): the delta between a SYN and its SYN-ACK. It measures only the
//! *external* side of the path — from the tap to the responder — and is
//! blind to the client-side (internal) latency, which is half of what Ruru
//! reports. Used as the weak baseline in experiment E7.

use crate::baseline::RttSample;
use crate::classify::TcpMeta;
use crate::key::{Direction, FlowKey};
use crate::baseline::expiring::ExpiringTable;
use ruru_nic::Timestamp;

/// Counters for the SYN-only estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynOnlyStats {
    /// Packets processed.
    pub packets: u64,
    /// SYNs recorded.
    pub syns: u64,
    /// Samples emitted.
    pub samples: u64,
}

#[derive(Clone, Copy)]
struct Pending {
    t_syn: Timestamp,
    client_isn: u32,
    client_dir: Direction,
}

/// The SYN-only estimator.
pub struct SynOnly {
    table: ExpiringTable<FlowKey, Pending>,
    stats: SynOnlyStats,
}

impl SynOnly {
    /// Create an estimator bounded to `capacity` in-flight SYNs with the
    /// given TTL.
    pub fn new(capacity: usize, ttl_ns: u64) -> SynOnly {
        SynOnly {
            table: ExpiringTable::new(capacity, ttl_ns),
            stats: SynOnlyStats::default(),
        }
    }

    /// Process a packet; returns an external-RTT sample when a SYN-ACK
    /// matches a recorded SYN.
    pub fn process(&mut self, meta: &TcpMeta) -> Option<RttSample> {
        self.stats.packets += 1;
        let (key, dir) = FlowKey::from_tuple(meta.src, meta.dst, meta.src_port, meta.dst_port);
        if meta.flags.is_syn_only() {
            self.stats.syns += 1;
            self.table.insert(
                key,
                Pending {
                    t_syn: meta.timestamp,
                    client_isn: meta.seq,
                    client_dir: dir,
                },
                meta.timestamp,
            );
            return None;
        }
        if meta.flags.is_syn_ack() {
            let pending = self.table.get(&key).copied()?;
            if dir == pending.client_dir || meta.ack != pending.client_isn.wrapping_add(1) {
                return None;
            }
            self.table.remove(&key);
            if meta.timestamp < pending.t_syn {
                return None;
            }
            self.stats.samples += 1;
            return Some(RttSample {
                key,
                rtt_ns: meta.timestamp - pending.t_syn,
                at: meta.timestamp,
            });
        }
        None
    }

    /// Expire stale SYNs.
    pub fn housekeep(&mut self, now: Timestamp) {
        self.table.expire(now, |_k, _v| {});
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SynOnlyStats {
        self.stats
    }

    /// In-flight SYNs awaiting a SYN-ACK.
    pub fn in_flight(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruru_wire::tcp::Flags;
    use ruru_wire::{ipv4, IpAddress};

    fn ip(last: u8) -> IpAddress {
        IpAddress::V4(ipv4::Address([10, 0, 0, last]))
    }

    #[allow(clippy::too_many_arguments)]
    fn meta(
        src: IpAddress,
        dst: IpAddress,
        sp: u16,
        dp: u16,
        flags: Flags,
        seq: u32,
        ack: u32,
        t_us: u64,
    ) -> TcpMeta {
        TcpMeta {
            src,
            dst,
            src_port: sp,
            dst_port: dp,
            seq,
            ack,
            flags,
            payload_len: 0,
            timestamps: None,
            timestamp: Timestamp::from_micros(t_us),
            rss_hash: 0,
        }
    }

    #[test]
    fn measures_external_rtt_only() {
        let mut e = SynOnly::new(1024, 10_000_000_000);
        let c = ip(1);
        let s = ip(2);
        e.process(&meta(c, s, 5000, 443, Flags::SYN, 100, 0, 0));
        let sample = e
            .process(&meta(s, c, 443, 5000, Flags::SYN | Flags::ACK, 900, 101, 130_000))
            .unwrap();
        assert_eq!(sample.rtt_ns, 130_000_000);
        // The client ACK produces nothing — internal latency is invisible.
        assert!(e
            .process(&meta(c, s, 5000, 443, Flags::ACK, 101, 901, 131_200))
            .is_none());
        assert_eq!(e.stats().samples, 1);
    }

    #[test]
    fn wrong_ack_number_rejected() {
        let mut e = SynOnly::new(1024, 10_000_000_000);
        let c = ip(1);
        let s = ip(2);
        e.process(&meta(c, s, 5000, 443, Flags::SYN, 100, 0, 0));
        assert!(e
            .process(&meta(s, c, 443, 5000, Flags::SYN | Flags::ACK, 900, 77, 130_000))
            .is_none());
        assert_eq!(e.in_flight(), 1);
    }

    #[test]
    fn synack_without_syn_is_ignored() {
        let mut e = SynOnly::new(1024, 10_000_000_000);
        assert!(e
            .process(&meta(ip(2), ip(1), 443, 5000, Flags::SYN | Flags::ACK, 1, 1, 0))
            .is_none());
    }

    #[test]
    fn expiry_clears_pending() {
        let mut e = SynOnly::new(1024, 1_000_000);
        e.process(&meta(ip(1), ip(2), 1, 2, Flags::SYN, 1, 0, 0));
        e.housekeep(Timestamp::from_micros(2_000));
        assert_eq!(e.in_flight(), 0);
    }
}
