//! The original `HashMap` + `VecDeque` flow store, kept as the
//! differential baseline for [`crate::table::FlowTable`].
//!
//! Because handshake timeouts are uniform, insertion order equals expiry
//! order, so expiry is a deque scan from the front: O(1) amortized, no
//! timer wheel needed. Capacity is bounded; at capacity the oldest entry is
//! force-evicted (SYN floods therefore degrade gracefully instead of
//! exhausting memory — experiment E4 measures this).
//!
//! Entries removed or replaced before expiry are invalidated through a
//! generation counter rather than scanning the deque.
//!
//! This implementation re-hashes every key with SipHash and pays one
//! `VecDeque` bookkeeping entry per insert; the production store
//! ([`crate::table::FlowTable`]) reuses the NIC's Toeplitz hash and threads
//! its FIFO through slab links instead. The old contains-then-insert
//! double lookup and per-insert `key.clone()` were fixed here (entry API,
//! `Copy` keys) so E9's old-vs-new comparison isolates the structural win.

use crate::table::InsertOutcome;
use ruru_nic::Timestamp;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

struct Slot<V> {
    value: V,
    inserted: Timestamp,
    generation: u64,
}

/// A bounded hash map with FIFO time-based expiry.
pub struct ExpiringTable<K: Eq + Hash + Copy, V> {
    map: HashMap<K, Slot<V>>,
    fifo: VecDeque<(K, Timestamp, u64)>,
    capacity: usize,
    ttl_ns: u64,
    next_generation: u64,
    evictions: u64,
    expirations: u64,
}

impl<K: Eq + Hash + Copy, V> ExpiringTable<K, V> {
    /// A table holding at most `capacity` entries, each expiring `ttl_ns`
    /// after insertion.
    pub fn new(capacity: usize, ttl_ns: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ExpiringTable {
            map: HashMap::with_capacity(capacity),
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            ttl_ns,
            next_generation: 0,
            evictions: 0,
            expirations: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the table has no live entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries force-evicted due to capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Entries removed by TTL expiry.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// Insert `value` under `key` at time `now` if absent. Never replaces an
    /// existing entry (the tracker keeps the *first* SYN timestamp).
    pub fn insert(&mut self, key: K, value: V, now: Timestamp) -> InsertOutcome {
        let generation = self.next_generation;
        // One entry-API probe doubles as the duplicate check and the
        // placement (the old code paid contains_key + insert, plus a
        // key.clone(); keys are Copy now).
        // alloc-ok: bounded table — eviction keeps len <= cap, so the map
        // grows to cap once and then recycles its storage.
        match self.map.entry(key) {
            MapEntry::Occupied(_) => return InsertOutcome::AlreadyPresent,
            MapEntry::Vacant(v) => {
                v.insert(Slot {
                    value,
                    inserted: now,
                    generation,
                });
            }
        }
        self.next_generation += 1;
        // alloc-ok: fifo mirrors the bounded map — reaches cap once, then
        // pop_front/push_back reuse the ring's storage.
        self.fifo.push_back((key, now, generation));
        // Evict after the insert instead of before: same observable
        // semantics (an eviction happens iff the table was full and the key
        // absent), and the just-inserted entry sits at the deque *back*, so
        // with len > capacity ≥ 1 the oldest live entry popped from the
        // front can never be it.
        if self.map.len() > self.capacity && self.evict_oldest() {
            return InsertOutcome::InsertedWithEviction;
        }
        InsertOutcome::Inserted
    }

    /// Get a mutable reference to the live entry for `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.map.get_mut(key).map(|s| &mut s.value)
    }

    /// Get the live entry for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|s| &s.value)
    }

    /// When the live entry for `key` was inserted.
    pub fn inserted_at(&self, key: &K) -> Option<Timestamp> {
        self.map.get(key).map(|s| s.inserted)
    }

    /// Remove and return the entry for `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        // The deque entry becomes stale and is skipped when reached.
        self.map.remove(key).map(|s| s.value)
    }

    /// Drop the oldest live entry; returns whether anything was evicted.
    fn evict_oldest(&mut self) -> bool {
        while let Some((key, _, generation)) = self.fifo.pop_front() {
            let live = matches!(self.map.get(&key), Some(slot) if slot.generation == generation);
            if live {
                self.map.remove(&key);
                self.evictions += 1;
                return true;
            }
            // stale deque entry (removed or re-inserted); skip
        }
        false
    }

    /// Remove all entries older than the TTL at time `now`, invoking
    /// `on_expire` for each.
    pub fn expire(&mut self, now: Timestamp, mut on_expire: impl FnMut(K, V)) {
        loop {
            // Pop the front only once its age is known to exceed the TTL;
            // popping directly (instead of peek-then-expect) keeps this
            // total without a second lookup.
            match self.fifo.front() {
                Some(&(_, inserted, _)) if now.saturating_nanos_since(inserted) >= self.ttl_ns => {}
                _ => break,
            }
            let Some((key, _, generation)) = self.fifo.pop_front() else {
                break;
            };
            let live = matches!(self.map.get(&key), Some(slot) if slot.generation == generation);
            if !live {
                continue; // stale deque entry (removed or re-inserted)
            }
            let Some(slot) = self.map.remove(&key) else {
                continue;
            };
            self.expirations += 1;
            on_expire(key, slot.value);
        }
    }

    /// Iterate over live `(key, value)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, s)| (k, &s.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    #[test]
    fn insert_get_remove() {
        let mut tbl: ExpiringTable<u32, &str> = ExpiringTable::new(4, 1_000_000);
        assert_eq!(tbl.insert(1, "a", t(0)), InsertOutcome::Inserted);
        assert_eq!(tbl.get(&1), Some(&"a"));
        assert_eq!(tbl.inserted_at(&1), Some(t(0)));
        *tbl.get_mut(&1).unwrap() = "b";
        assert_eq!(tbl.remove(&1), Some("b"));
        assert_eq!(tbl.get(&1), None);
        assert!(tbl.is_empty());
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let mut tbl: ExpiringTable<u32, u32> = ExpiringTable::new(4, 1_000_000);
        tbl.insert(1, 100, t(0));
        assert_eq!(tbl.insert(1, 200, t(1)), InsertOutcome::AlreadyPresent);
        assert_eq!(tbl.get(&1), Some(&100));
        assert_eq!(tbl.len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut tbl: ExpiringTable<u32, u32> = ExpiringTable::new(2, u64::MAX);
        tbl.insert(1, 1, t(0));
        tbl.insert(2, 2, t(1));
        assert_eq!(tbl.insert(3, 3, t(2)), InsertOutcome::InsertedWithEviction);
        assert_eq!(tbl.len(), 2);
        assert_eq!(tbl.get(&1), None, "oldest evicted");
        assert_eq!(tbl.get(&2), Some(&2));
        assert_eq!(tbl.get(&3), Some(&3));
        assert_eq!(tbl.evictions(), 1);
    }

    #[test]
    fn eviction_skips_stale_deque_entries() {
        let mut tbl: ExpiringTable<u32, u32> = ExpiringTable::new(2, u64::MAX);
        tbl.insert(1, 1, t(0));
        tbl.insert(2, 2, t(1));
        tbl.remove(&1); // deque front now stale
        tbl.insert(3, 3, t(2)); // no eviction needed: len was 1
        assert_eq!(tbl.len(), 2);
        // Next insert must evict key 2 (the oldest LIVE entry), not key 1.
        tbl.insert(4, 4, t(3));
        assert_eq!(tbl.get(&2), None);
        assert_eq!(tbl.get(&3), Some(&3));
        assert_eq!(tbl.evictions(), 1);
    }

    #[test]
    fn expiry_removes_old_entries_in_order() {
        let mut tbl: ExpiringTable<u32, u32> = ExpiringTable::new(8, 1_000); // 1 µs TTL
        tbl.insert(1, 1, Timestamp::from_nanos(0));
        tbl.insert(2, 2, Timestamp::from_nanos(500));
        tbl.insert(3, 3, Timestamp::from_nanos(1500));
        let mut expired = Vec::new();
        tbl.expire(Timestamp::from_nanos(1600), |k, v| expired.push((k, v)));
        assert_eq!(expired, vec![(1, 1), (2, 2)]);
        assert_eq!(tbl.len(), 1);
        assert_eq!(tbl.expirations(), 2);
        // Key 3 expires later.
        tbl.expire(Timestamp::from_nanos(2500), |k, _| expired.push((k, 0)));
        assert_eq!(expired.last(), Some(&(3, 0)));
        assert!(tbl.is_empty());
    }

    #[test]
    fn expire_skips_removed_entries() {
        let mut tbl: ExpiringTable<u32, u32> = ExpiringTable::new(8, 1_000);
        tbl.insert(1, 1, t(0));
        tbl.remove(&1);
        let mut count = 0;
        tbl.expire(t(10), |_, _| count += 1);
        assert_eq!(count, 0);
        assert_eq!(tbl.expirations(), 0);
    }

    #[test]
    fn reinsert_after_remove_uses_new_generation() {
        let mut tbl: ExpiringTable<u32, u32> = ExpiringTable::new(8, 1_000);
        tbl.insert(1, 1, Timestamp::from_nanos(0));
        tbl.remove(&1);
        tbl.insert(1, 2, Timestamp::from_nanos(900));
        // Expiring at t=1000 reaches the stale deque entry for gen 0 but must
        // not remove the live gen-1 entry (inserted at 900, not yet expired).
        let mut expired = Vec::new();
        tbl.expire(Timestamp::from_nanos(1000), |k, v| expired.push((k, v)));
        assert!(expired.is_empty());
        assert_eq!(tbl.get(&1), Some(&2));
        // At t=1900 it does expire.
        tbl.expire(Timestamp::from_nanos(1900), |k, v| expired.push((k, v)));
        assert_eq!(expired, vec![(1, 2)]);
    }

    #[test]
    fn iter_visits_live_entries() {
        let mut tbl: ExpiringTable<u32, u32> = ExpiringTable::new(8, 1_000);
        tbl.insert(1, 10, t(0));
        tbl.insert(2, 20, t(0));
        tbl.remove(&1);
        let mut items: Vec<(u32, u32)> = tbl.iter().map(|(k, v)| (*k, *v)).collect();
        items.sort_unstable();
        assert_eq!(items, vec![(2, 20)]);
    }

    #[test]
    fn flood_is_bounded() {
        let mut tbl: ExpiringTable<u64, ()> = ExpiringTable::new(1000, u64::MAX);
        for i in 0..100_000u64 {
            tbl.insert(i, (), t(i));
        }
        assert_eq!(tbl.len(), 1000);
        assert_eq!(tbl.evictions(), 99_000);
        // The survivors are the newest 1000.
        assert!(tbl.get(&99_999).is_some());
        assert!(tbl.get(&0).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ExpiringTable::<u8, u8>::new(0, 1);
    }
}
