//! Baseline passive RTT estimators, for experiment E7's comparison.
//!
//! * [`pping`] — the TCP-timestamp-matching approach of Kathie Nichols'
//!   `pping` (and `tcptrace`): every data packet carrying a TSval that is
//!   later echoed in a TSecr yields an RTT sample. Continuous per-packet
//!   samples, but higher per-packet cost and state.
//! * [`synonly`] — the minimal approach: SYN→SYN-ACK delta only. One sample
//!   per flow, *external* latency only — it cannot see the internal side,
//!   which is exactly the gap Ruru's three-timestamp method closes.
//! * [`expiring`] — the original `HashMap` + `VecDeque` flow store, the
//!   differential baseline experiment E9 and the model-based property
//!   tests compare [`crate::table::FlowTable`] against.

pub mod expiring;
pub mod pping;
pub mod synonly;

use crate::key::FlowKey;
use ruru_nic::Timestamp;

/// One RTT sample produced by a baseline estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttSample {
    /// The flow the sample belongs to.
    pub key: FlowKey,
    /// The measured round-trip time in nanoseconds.
    pub rtt_ns: u64,
    /// When the sample completed.
    pub at: Timestamp,
}
