//! `pping`-style passive RTT from TCP timestamps.
//!
//! For every packet we record `(flow, direction, TSval) → arrival time` the
//! first time that TSval is seen. When a packet travels the *opposite*
//! direction echoing that TSval in its TSecr, the difference of arrival
//! times is an RTT sample through the measurement point.
//!
//! Compared to Ruru's handshake method this produces samples continuously
//! over a flow's life (detecting mid-flow latency changes) at the price of
//! state per in-flight TSval and a table operation on *every* packet rather
//! than only on handshake packets — experiment E7 quantifies the trade.

use crate::baseline::RttSample;
use crate::classify::TcpMeta;
use crate::key::{Direction, FlowKey};
use crate::baseline::expiring::ExpiringTable;
use crate::table::InsertOutcome;
use ruru_nic::Timestamp;

/// Configuration for the pping estimator.
#[derive(Debug, Clone)]
pub struct PpingConfig {
    /// Maximum outstanding (unechoed) TSvals tracked.
    pub capacity: usize,
    /// Drop unechoed TSvals after this long.
    pub ttl_ns: u64,
    /// Housekeeping interval in packets.
    pub expire_interval_packets: u64,
}

impl Default for PpingConfig {
    fn default() -> Self {
        PpingConfig {
            capacity: 1 << 20,
            ttl_ns: 10_000_000_000,
            expire_interval_packets: 1024,
        }
    }
}

/// Counters for the pping estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PpingStats {
    /// Packets processed.
    pub packets: u64,
    /// Packets without a TCP timestamps option (unusable).
    pub no_timestamp: u64,
    /// TSvals recorded.
    pub tsvals_recorded: u64,
    /// Packets whose TSval was already outstanding (retransmits, repeated
    /// pure ACKs) — not re-recorded, not counted in `tsvals_recorded`.
    pub duplicate_tsvals: u64,
    /// Packets carrying TSval 0, which the `tsecr != 0` ambiguity guard
    /// makes unmatchable; skipped instead of left to rot until TTL.
    pub zero_tsvals: u64,
    /// RTT samples emitted.
    pub samples: u64,
    /// Outstanding TSvals dropped by TTL.
    pub expired: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TsKey {
    flow: FlowKey,
    dir: Direction,
    tsval: u32,
}

/// The passive-ping estimator (single-threaded, one per queue).
pub struct Pping {
    table: ExpiringTable<TsKey, Timestamp>,
    config: PpingConfig,
    stats: PpingStats,
    packets_since_expiry: u64,
}

impl Pping {
    /// Create an estimator.
    pub fn new(config: PpingConfig) -> Pping {
        let table = ExpiringTable::new(config.capacity, config.ttl_ns);
        Pping {
            table,
            config,
            stats: PpingStats::default(),
            packets_since_expiry: 0,
        }
    }

    /// Process one packet; returns an RTT sample when this packet echoes a
    /// previously recorded TSval.
    pub fn process(&mut self, meta: &TcpMeta) -> Option<RttSample> {
        self.stats.packets += 1;
        self.packets_since_expiry += 1;
        if self.packets_since_expiry >= self.config.expire_interval_packets {
            self.housekeep(meta.timestamp);
        }
        let Some((tsval, tsecr)) = meta.timestamps else {
            self.stats.no_timestamp += 1;
            return None;
        };
        let (flow, dir) = FlowKey::from_tuple(meta.src, meta.dst, meta.src_port, meta.dst_port);

        // 1. Try to match this packet's TSecr against a TSval recorded in
        //    the opposite direction. RFC 7323 §3.2: TSecr is only valid on
        //    segments with ACK set — a SYN's TSecr field is undefined
        //    garbage and must not be matched.
        let mut sample = None;
        if tsecr != 0 && meta.flags.contains(ruru_wire::tcp::Flags::ACK) {
            let probe = TsKey {
                flow,
                dir: dir.flipped(),
                tsval: tsecr,
            };
            if let Some(sent_at) = self.table.remove(&probe) {
                // Severe reordering can make this negative; skip such samples.
                if meta.timestamp >= sent_at {
                    self.stats.samples += 1;
                    sample = Some(RttSample {
                        key: flow,
                        rtt_ns: meta.timestamp - sent_at,
                        at: meta.timestamp,
                    });
                }
            }
        }

        // 2. Record this packet's TSval (first occurrence only: retransmits
        //    and ACK-only repeats keep the original send time). Pure ACKs
        //    with no payload do not advance TSval meaningfully but are still
        //    echoed by peers, so pping records them too. TSval 0 is skipped:
        //    the `tsecr != 0` ambiguity guard above means an echo of it can
        //    never match, so recording it would only pin a dead entry in the
        //    table until TTL.
        if tsval == 0 {
            self.stats.zero_tsvals += 1;
            return sample;
        }
        let record = TsKey { flow, dir, tsval };
        match self.table.insert(record, meta.timestamp, meta.timestamp) {
            InsertOutcome::AlreadyPresent => self.stats.duplicate_tsvals += 1,
            InsertOutcome::Inserted | InsertOutcome::InsertedWithEviction => {
                self.stats.tsvals_recorded += 1;
            }
        }

        sample
    }

    /// Expire outstanding TSvals at `now`.
    pub fn housekeep(&mut self, now: Timestamp) {
        self.packets_since_expiry = 0;
        let before = self.table.expirations();
        self.table.expire(now, |_k, _v| {});
        self.stats.expired += self.table.expirations() - before;
    }

    /// Outstanding (unechoed) TSvals.
    pub fn outstanding(&self) -> usize {
        self.table.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PpingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruru_wire::tcp::Flags;
    use ruru_wire::{ipv4, IpAddress};

    fn ip(last: u8) -> IpAddress {
        IpAddress::V4(ipv4::Address([10, 0, 0, last]))
    }

    fn meta_flags(
        src: IpAddress,
        dst: IpAddress,
        sp: u16,
        dp: u16,
        ts: Option<(u32, u32)>,
        t_us: u64,
        flags: Flags,
    ) -> TcpMeta {
        TcpMeta {
            src,
            dst,
            src_port: sp,
            dst_port: dp,
            seq: 0,
            ack: 0,
            flags,
            payload_len: 100,
            timestamps: ts,
            timestamp: Timestamp::from_micros(t_us),
            rss_hash: 0,
        }
    }

    fn meta(
        src: IpAddress,
        dst: IpAddress,
        sp: u16,
        dp: u16,
        ts: Option<(u32, u32)>,
        t_us: u64,
    ) -> TcpMeta {
        meta_flags(src, dst, sp, dp, ts, t_us, Flags::ACK)
    }

    #[test]
    fn echo_produces_rtt_sample() {
        let mut p = Pping::new(PpingConfig::default());
        let c = ip(1);
        let s = ip(2);
        // Client sends TSval=100 at t=0.
        assert!(p.process(&meta(c, s, 5000, 443, Some((100, 0)), 0)).is_none());
        // Server echoes TSecr=100 at t=130ms.
        let sample = p
            .process(&meta(s, c, 443, 5000, Some((900, 100)), 130_000))
            .unwrap();
        assert_eq!(sample.rtt_ns, 130_000_000);
        assert_eq!(p.stats().samples, 1);
    }

    #[test]
    fn echo_is_consumed_once() {
        let mut p = Pping::new(PpingConfig::default());
        let c = ip(1);
        let s = ip(2);
        p.process(&meta(c, s, 5000, 443, Some((100, 0)), 0));
        assert!(p
            .process(&meta(s, c, 443, 5000, Some((900, 100)), 1_000))
            .is_some());
        // Second echo of the same TSval: no double-count.
        assert!(p
            .process(&meta(s, c, 443, 5000, Some((901, 100)), 2_000))
            .is_none());
        assert_eq!(p.stats().samples, 1);
    }

    #[test]
    fn retransmission_keeps_first_send_time() {
        let mut p = Pping::new(PpingConfig::default());
        let c = ip(1);
        let s = ip(2);
        p.process(&meta(c, s, 5000, 443, Some((100, 0)), 0));
        // Retransmission with same TSval at t=50ms is not re-recorded.
        p.process(&meta(c, s, 5000, 443, Some((100, 0)), 50_000));
        let sample = p
            .process(&meta(s, c, 443, 5000, Some((900, 100)), 130_000))
            .unwrap();
        assert_eq!(sample.rtt_ns, 130_000_000, "measured from first send");
    }

    #[test]
    fn samples_flow_continuously() {
        let mut p = Pping::new(PpingConfig::default());
        let c = ip(1);
        let s = ip(2);
        let mut samples = 0;
        // 100 data/ack exchanges, each a distinct TSval.
        for i in 0..100u32 {
            let t0 = i as u64 * 1_000;
            p.process(&meta(c, s, 5000, 443, Some((1000 + i, 500 + i)), t0));
            if p
                .process(&meta(s, c, 443, 5000, Some((501 + i, 1000 + i)), t0 + 130))
                .is_some()
            {
                samples += 1;
            }
        }
        assert_eq!(samples, 100, "pping samples every exchange");
    }

    #[test]
    fn packets_without_timestamps_are_skipped() {
        let mut p = Pping::new(PpingConfig::default());
        assert!(p.process(&meta(ip(1), ip(2), 1, 2, None, 0)).is_none());
        assert_eq!(p.stats().no_timestamp, 1);
        assert_eq!(p.outstanding(), 0);
    }

    #[test]
    fn tsecr_zero_is_not_matched() {
        let mut p = Pping::new(PpingConfig::default());
        let c = ip(1);
        let s = ip(2);
        // A TSval of 0 recorded…
        p.process(&meta(c, s, 5000, 443, Some((0, 0)), 0));
        // …must not be "echoed" by an unrelated TSecr=0 packet.
        assert!(p.process(&meta(s, c, 443, 5000, Some((7, 0)), 10)).is_none());
    }

    #[test]
    fn same_direction_echo_does_not_match() {
        let mut p = Pping::new(PpingConfig::default());
        let c = ip(1);
        let s = ip(2);
        p.process(&meta(c, s, 5000, 443, Some((100, 0)), 0));
        // Another client-side packet claiming TSecr=100 (its own direction).
        assert!(p
            .process(&meta(c, s, 5000, 443, Some((101, 100)), 1_000))
            .is_none());
    }

    #[test]
    fn outstanding_tsvals_expire() {
        let mut p = Pping::new(PpingConfig {
            ttl_ns: 1_000_000, // 1ms
            ..PpingConfig::default()
        });
        p.process(&meta(ip(1), ip(2), 1, 2, Some((1, 0)), 0));
        assert_eq!(p.outstanding(), 1);
        p.housekeep(Timestamp::from_micros(2_000));
        assert_eq!(p.outstanding(), 0);
        assert_eq!(p.stats().expired, 1);
    }

    /// Regression: retransmits hit `InsertOutcome::AlreadyPresent` and used
    /// to bump `tsvals_recorded` anyway, over-counting recorded state.
    #[test]
    fn retransmit_counts_duplicate_not_recorded() {
        let mut p = Pping::new(PpingConfig::default());
        let c = ip(1);
        let s = ip(2);
        p.process(&meta(c, s, 5000, 443, Some((100, 0)), 0));
        // Two retransmissions of the same segment (same TSval).
        p.process(&meta(c, s, 5000, 443, Some((100, 0)), 50_000));
        p.process(&meta(c, s, 5000, 443, Some((100, 0)), 100_000));
        assert_eq!(p.stats().tsvals_recorded, 1, "recorded once, not thrice");
        assert_eq!(p.stats().duplicate_tsvals, 2);
        assert_eq!(p.outstanding(), 1);
    }

    /// Regression: RFC 7323 §3.2 — TSecr is only valid on segments with ACK
    /// set. A SYN's TSecr field is undefined garbage (e.g. stale state from
    /// a previous connection on the same tuple) and must not match.
    #[test]
    fn syn_with_stale_tsecr_produces_no_sample() {
        let mut p = Pping::new(PpingConfig::default());
        let c = ip(1);
        let s = ip(2);
        // Server-side TSval 777 outstanding from earlier traffic.
        p.process(&meta(s, c, 443, 5000, Some((777, 0)), 0));
        // Client "SYN" (no ACK flag) whose TSecr bytes happen to hold 777.
        let syn = meta_flags(c, s, 5000, 443, Some((100, 777)), 10_000, Flags::SYN);
        assert!(p.process(&syn).is_none(), "garbage TSecr must not match");
        assert_eq!(p.stats().samples, 0);
        // The recorded TSval survives for a *valid* echo later.
        assert!(p
            .process(&meta(c, s, 5000, 443, Some((101, 777)), 20_000))
            .is_some());
    }

    /// Regression: TSval 0 can never be matched (the `tsecr != 0` ambiguity
    /// guard filters legitimate echoes of it), so recording it only pinned a
    /// dead entry in the table until TTL, inflating `outstanding()`.
    #[test]
    fn zero_tsval_is_skipped_and_counted() {
        let mut p = Pping::new(PpingConfig::default());
        p.process(&meta(ip(1), ip(2), 1, 2, Some((0, 0)), 0));
        assert_eq!(p.outstanding(), 0, "dead entry not recorded");
        assert_eq!(p.stats().zero_tsvals, 1);
        assert_eq!(p.stats().tsvals_recorded, 0);
    }

    /// TSval is a free-running 32-bit clock: it wraps u32::MAX → 0 → 1.
    /// Matching is exact (no ordering comparison), so samples keep flowing
    /// across the wrap; the single unusable TSval 0 tick is counted.
    #[test]
    fn tsval_wraparound_keeps_sampling() {
        let mut p = Pping::new(PpingConfig::default());
        let c = ip(1);
        let s = ip(2);
        let mut samples = 0;
        for (i, tsval) in [u32::MAX - 1, u32::MAX, 0, 1, 2].into_iter().enumerate() {
            let t0 = i as u64 * 1_000;
            p.process(&meta(c, s, 5000, 443, Some((tsval, 9)), t0));
            if p
                .process(&meta(s, c, 443, 5000, Some((10 + i as u32, tsval)), t0 + 130))
                .is_some()
            {
                samples += 1;
            }
        }
        assert_eq!(samples, 4, "every wrap-spanning exchange except TSval 0");
        assert_eq!(p.stats().zero_tsvals, 1);
    }

    /// Delayed ACKs inflate pping RTT: the receiver may sit on the echo for
    /// up to the delayed-ACK timer, and the sample measures arrival delta at
    /// the tap — the inflation is inherent to the method, not a bug.
    #[test]
    fn delayed_ack_inflates_sample() {
        let mut p = Pping::new(PpingConfig::default());
        let c = ip(1);
        let s = ip(2);
        // Data at t=0; path RTT is 100ms but the server holds the ACK 40ms.
        p.process(&meta(c, s, 5000, 443, Some((100, 0)), 0));
        let sample = p
            .process(&meta(s, c, 443, 5000, Some((900, 100)), 140_000))
            .unwrap();
        assert_eq!(sample.rtt_ns, 140_000_000, "path RTT + delayed-ACK hold");
    }

    #[test]
    fn capacity_bounded_under_load() {
        let mut p = Pping::new(PpingConfig {
            capacity: 100,
            ..PpingConfig::default()
        });
        for i in 0..10_000u32 {
            p.process(&meta(ip(1), ip(2), 1, 2, Some((i, 0)), i as u64));
        }
        assert_eq!(p.outstanding(), 100);
    }
}
