#![warn(missing_docs)]

//! # ruru-flow — Ruru's core: flow-level passive latency measurement
//!
//! The paper's contribution (its Figure 1): for every TCP flow crossing the
//! tap, record three sub-microsecond timestamps — the first **SYN**, the
//! following **SYN-ACK**, and the first **ACK** — and derive
//!
//! * **external latency** = `t(SYN-ACK) − t(SYN)` — tap → server → tap,
//! * **internal latency** = `t(ACK) − t(SYN-ACK)` — tap → client → tap,
//! * **total latency** = external + internal — the full client↔server RTT,
//!
//! one measurement per connection, entirely passively.
//!
//! Modules:
//!
//! * [`classify`] — single-pass pre-parsing of a frame into the
//!   [`classify::TcpMeta`] the tracker consumes (with optional checksum
//!   validation so corrupted packets can't pollute the tables).
//! * [`key`] — direction-normalized flow keys, so both directions of a
//!   connection address the same table entry.
//! * [`table`] — the per-queue storage: a slab-backed open-addressing
//!   table keyed directly by the NIC's symmetric Toeplitz RSS hash, with
//!   intrusive-FIFO expiry and `rte_hash_lookup_bulk`-style burst
//!   operations (per-queue sharding via symmetric RSS is what makes it
//!   lock-free; reusing the RSS hash is what makes it allocation- and
//!   SipHash-free).
//! * [`handshake`] — the SYN / SYN-ACK / ACK state machine and
//!   [`handshake::HandshakeTracker`], the paper's measurement engine.
//! * [`inflow`] — continuous in-flow RTT ([`inflow::InflowTracker`]):
//!   RFC 7323 TCP-timestamp matching promoted to the slab table, with
//!   bounded per-flow TSval rings inline in the entry and samples folded
//!   into per-queue log-bucket histograms (catches mid-flow latency
//!   shifts the one-shot handshake measurement is blind to).
//! * [`measurement`] — the [`measurement::LatencyMeasurement`] record and
//!   its compact binary wire form used on the message bus.
//! * [`baseline`] — comparison implementations: `pping`-style TCP-timestamp
//!   matching (per-packet RTTs), a SYN-only estimator (external RTT only),
//!   and the original `HashMap`-based flow store
//!   ([`baseline::expiring::ExpiringTable`]) kept as the differential
//!   reference for the new table; used by experiments E7 and E9.

pub mod baseline;
pub mod classify;
pub mod handshake;
pub mod histogram;
pub mod inflow;
pub mod key;
pub mod measurement;
pub mod table;

pub use handshake::{HandshakeTracker, TrackerConfig, TrackerStats};
pub use inflow::{InflowConfig, InflowStats, InflowTracker};
pub use histogram::LatencyHistogram;
pub use key::{Direction, FlowKey};
pub use measurement::LatencyMeasurement;
