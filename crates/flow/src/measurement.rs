//! The latency measurement record and its wire form.
//!
//! One [`LatencyMeasurement`] is produced per completed TCP handshake and
//! published on the message bus to the analytics stage. The binary encoding
//! is a fixed 66-byte little-endian record so the bus can move it zero-copy
//! and the analytics workers can decode without allocation.

use bytes::{BufMut, Bytes, BytesMut};
use core::cell::RefCell;
use ruru_nic::Timestamp;
use ruru_wire::{ipv4, ipv6, IpAddress};

/// Wire length of an encoded measurement.
pub const WIRE_LEN: usize = 66;
const VERSION: u8 = 1;

/// Scratch-block size for [`LatencyMeasurement::encode`]'s thread-local
/// buffer: one heap allocation amortizes over ~1000 encoded records.
pub const SCRATCH_CHUNK: usize = 64 * 1024;

thread_local! {
    /// Per-thread encode scratch. `encode` appends into this block and
    /// freezes a zero-copy slice out of it, so the steady state performs
    /// no per-record heap allocation — only one block allocation per
    /// [`SCRATCH_CHUNK`] bytes of output.
    static ENCODE_SCRATCH: RefCell<BytesMut> = RefCell::new(BytesMut::new());
}

/// A completed-handshake latency measurement (the paper's Figure 1 output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyMeasurement {
    /// The connection initiator (the side that sent the SYN).
    pub src: IpAddress,
    /// The responder (the side that sent the SYN-ACK).
    pub dst: IpAddress,
    /// Initiator's port.
    pub src_port: u16,
    /// Responder's port.
    pub dst_port: u16,
    /// Internal latency: tap → source → tap (`t_ACK − t_SYNACK`), ns.
    pub internal_ns: u64,
    /// External latency: tap → destination → tap (`t_SYNACK − t_SYN`), ns.
    pub external_ns: u64,
    /// When the handshake completed (the ACK arrival), tap clock.
    pub completed_at: Timestamp,
    /// RX queue (= worker core) that measured the flow.
    pub queue_id: u16,
    /// SYN retransmissions observed before the handshake completed.
    pub syn_retransmissions: u8,
}

impl LatencyMeasurement {
    /// Total end-to-end latency: internal + external.
    pub fn total_ns(&self) -> u64 {
        self.internal_ns.saturating_add(self.external_ns)
    }

    /// Total latency in (fractional) milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns() as f64 / 1e6
    }

    /// Encode into the fixed binary wire form.
    ///
    /// Appends to a thread-local scratch block and freezes a zero-copy
    /// slice out of it: the returned [`Bytes`] shares the block, so the
    /// steady state allocates once per [`SCRATCH_CHUNK`] bytes rather than
    /// once per record. Callers that manage their own scratch (and want to
    /// count allocation-path hits) use [`LatencyMeasurement::encode_into`]
    /// directly.
    pub fn encode(&self) -> Bytes {
        ENCODE_SCRATCH.with(|cell| {
            let mut buf = cell.borrow_mut();
            if buf.capacity() < WIRE_LEN {
                // alloc-ok: amortized — one backing block per
                // SCRATCH_CHUNK/WIRE_LEN records, sliced zero-copy below.
                buf.reserve(SCRATCH_CHUNK);
            }
            self.encode_into(&mut buf);
            buf.split().freeze()
        })
    }

    /// Append the fixed binary wire form to `buf` (exactly [`WIRE_LEN`]
    /// bytes). The caller is responsible for capacity management; combined
    /// with `split().freeze()` this gives an allocation-free encode path.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        let start = buf.len();
        // alloc-ok: no-op whenever the caller pre-sizes the scratch block
        // (the documented contract above); allocates only on a cold buffer.
        buf.reserve(WIRE_LEN);
        buf.put_u8(VERSION);
        buf.put_u8(if self.src.is_v4() { 4 } else { 6 });
        buf.put_u8(self.syn_retransmissions);
        buf.put_u8(0); // reserved
        buf.put_u16_le(self.queue_id);
        buf.put_u16_le(self.src_port);
        buf.put_u16_le(self.dst_port);
        buf.put_u128_le(self.src.as_u128());
        buf.put_u128_le(self.dst.as_u128());
        buf.put_u64_le(self.internal_ns);
        buf.put_u64_le(self.external_ns);
        buf.put_u64_le(self.completed_at.as_nanos());
        debug_assert_eq!(buf.len().saturating_sub(start), WIRE_LEN);
    }

    /// Decode from the binary wire form.
    pub fn decode(data: &[u8]) -> Option<LatencyMeasurement> {
        // Total little-endian readers: 0 past the end (unreachable once the
        // length is checked, but no read below can abort the dataplane).
        fn chunk<const N: usize>(d: &[u8], at: usize) -> Option<&[u8; N]> {
            d.get(at..).and_then(|rest| rest.first_chunk::<N>())
        }
        if data.len() != WIRE_LEN || data.first() != Some(&VERSION) {
            return None;
        }
        let family = data.get(1).copied().unwrap_or(0);
        let rd16 = |at: usize| chunk::<2>(data, at).map_or(0, |c| u16::from_le_bytes(*c));
        let rd64 = |at: usize| chunk::<8>(data, at).map_or(0, |c| u64::from_le_bytes(*c));
        let rd128 = |at: usize| chunk::<16>(data, at).map_or(0, |c| u128::from_le_bytes(*c));
        let addr = |v: u128| -> Option<IpAddress> {
            match family {
                4 => Some(IpAddress::V4(ipv4::Address(
                    (v as u32).to_be_bytes(),
                ))),
                6 => Some(IpAddress::V6(ipv6::Address(v.to_be_bytes()))),
                _ => None,
            }
        };
        Some(LatencyMeasurement {
            src: addr(rd128(10))?,
            dst: addr(rd128(26))?,
            src_port: rd16(6),
            dst_port: rd16(8),
            internal_ns: rd64(42),
            external_ns: rd64(50),
            completed_at: Timestamp::from_nanos(rd64(58)),
            queue_id: rd16(4),
            syn_retransmissions: data.get(2).copied().unwrap_or(0),
        })
    }
}

impl core::fmt::Display for LatencyMeasurement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} int={:.3}ms ext={:.3}ms total={:.3}ms",
            self.src,
            self.src_port,
            self.dst,
            self.dst_port,
            self.internal_ns as f64 / 1e6,
            self.external_ns as f64 / 1e6,
            self.total_ms()
        )
    }
}

#[cfg(test)]
mod tests {
    // Display/ToString in assertions is fine; the ban targets hot paths.
    #![allow(clippy::disallowed_methods)]
    use super::*;

    fn sample_v4() -> LatencyMeasurement {
        LatencyMeasurement {
            src: IpAddress::V4(ipv4::Address([130, 216, 1, 2])),
            dst: IpAddress::V4(ipv4::Address([128, 9, 160, 1])),
            src_port: 51000,
            dst_port: 443,
            internal_ns: 1_200_000,
            external_ns: 128_700_000,
            completed_at: Timestamp::from_millis(1234),
            queue_id: 3,
            syn_retransmissions: 1,
        }
    }

    #[test]
    fn totals() {
        let m = sample_v4();
        assert_eq!(m.total_ns(), 129_900_000);
        assert!((m.total_ms() - 129.9).abs() < 1e-9);
    }

    #[test]
    fn encode_decode_roundtrip_v4() {
        let m = sample_v4();
        let wire = m.encode();
        assert_eq!(wire.len(), WIRE_LEN);
        assert_eq!(LatencyMeasurement::decode(&wire), Some(m));
    }

    #[test]
    fn encode_decode_roundtrip_v6() {
        let m = LatencyMeasurement {
            src: IpAddress::V6(ipv6::Address::from_groups([0x2404, 1, 2, 3, 4, 5, 6, 7])),
            dst: IpAddress::V6(ipv6::Address::from_groups([0x2607, 7, 6, 5, 4, 3, 2, 1])),
            ..sample_v4()
        };
        let wire = m.encode();
        assert_eq!(LatencyMeasurement::decode(&wire), Some(m));
    }

    #[test]
    fn decode_rejects_bad_input() {
        let m = sample_v4();
        let wire = m.encode();
        assert_eq!(LatencyMeasurement::decode(&wire[..WIRE_LEN - 1]), None);
        let mut bad_ver = wire.to_vec();
        bad_ver[0] = 99;
        assert_eq!(LatencyMeasurement::decode(&bad_ver), None);
        let mut bad_family = wire.to_vec();
        bad_family[1] = 5;
        assert_eq!(LatencyMeasurement::decode(&bad_family), None);
        assert_eq!(LatencyMeasurement::decode(&[]), None);
    }

    #[test]
    fn encode_into_appends_without_disturbing_prefix() {
        let m = sample_v4();
        let mut buf = BytesMut::new();
        buf.put_slice(b"prefix");
        m.encode_into(&mut buf);
        assert_eq!(buf.len(), 6 + WIRE_LEN);
        assert_eq!(&buf[..6], b"prefix");
        assert_eq!(LatencyMeasurement::decode(&buf[6..]), Some(m));
    }

    #[test]
    fn scratch_encode_yields_independent_records() {
        // Consecutive encodes slice the same thread-local block; each
        // frozen record must still be a correct, independent view.
        let records: Vec<(LatencyMeasurement, Bytes)> = (0..100u16)
            .map(|i| {
                let m = LatencyMeasurement {
                    queue_id: i,
                    src_port: 50_000 + i,
                    ..sample_v4()
                };
                (m, m.encode())
            })
            .collect();
        for (m, wire) in &records {
            assert_eq!(LatencyMeasurement::decode(wire), Some(*m));
        }
    }

    #[test]
    fn display_shows_milliseconds() {
        let s = sample_v4().to_string();
        assert!(s.contains("130.216.1.2:51000"), "{s}");
        assert!(s.contains("total=129.900ms"), "{s}");
    }
}
