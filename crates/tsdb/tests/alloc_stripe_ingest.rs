//! Allocation audit for the striped ingest path. The dataplane's claim is
//! not "zero allocations" — buffering a point clones its series strings
//! into the stripe — but **bounded, small, and amortized**:
//!
//! * a steady-state stripe write costs a small constant number of
//!   allocator hits per point (string keys + amortized run growth), with
//!   no per-point interaction with the shared store at all;
//! * folding a stripe into the store costs O(series) allocator hits, not
//!   O(points) — the run-move/extend merge is the whole point of
//!   shard-then-merge over per-point locked writes.
//!
//! Both bounds are enforced here with a counting pass-through allocator,
//! so a regression that sneaks a per-point allocation into `merge_shard`
//! (or makes `IngestShard::write` quadratic in strings) fails loudly.

// Tests are exempt from the panic-freedom policy (DESIGN.md §10).
#![allow(clippy::unwrap_used, clippy::expect_used)]

// Miri has its own allocator machinery; this audits native behaviour.
#![cfg(not(miri))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ruru_tsdb::{Point, Query, TsDb};

/// Counts allocator hits while `ARMED`; defers everything to [`System`].
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the `System` allocator — identical layout
// contracts — plus relaxed counter increments, which allocate nothing and
// cannot reenter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards `layout` unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: forwards `ptr`/`layout` unchanged to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards all arguments unchanged to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const SERIES: usize = 64;
const POINTS: u64 = 100_000;

/// Allocator hits (allocs + reallocs) counted over `f`.
fn audited(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::Relaxed);
    REALLOCS.store(0, Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
    f();
    ARMED.store(false, Ordering::Relaxed);
    ALLOCS.load(Ordering::Relaxed) + REALLOCS.load(Ordering::Relaxed)
}

fn template(series: usize) -> Point {
    Point::new(
        "latency",
        vec![
            ("city".into(), format!("city-{series:03}")),
            ("queue".into(), format!("{}", series % 4)),
        ],
        vec![("total_ms".into(), 0.0)],
        0,
    )
}

#[test]
fn stripe_ingest_allocations_are_bounded_and_merge_is_amortized() {
    let db = Arc::new(TsDb::new());

    // Warm-up: create every series in the store and in a stripe once, so
    // one-time setup (hash maps, first runs) predates the audit windows.
    let mut warm = db.stripe(u64::MAX);
    for s in 0..SERIES {
        let mut p = template(s);
        p.timestamp_ns = 1;
        warm.write(&p);
    }
    warm.flush();

    // Templates are built outside the windows; the loops below only mutate
    // plain fields, so every counted hit belongs to the ingest path itself.
    let mut points: Vec<Point> = (0..SERIES).map(template).collect();

    // Window 1: steady-state stripe writes — never flushing — must cost a
    // small constant per point: measurement + series-key + field-key
    // strings plus amortized sorted-run growth. The shared store is not
    // touched at all.
    let mut stripe = db.stripe(u64::MAX);
    let write_hits = audited(|| {
        for i in 0..POINTS {
            let p = &mut points[(i % SERIES as u64) as usize];
            p.timestamp_ns = 1_000 + i * 1_000;
            p.fields[0].1 = (i % 977) as f64 * 0.1;
            stripe.write(p);
        }
    });
    assert_eq!(stripe.points_buffered(), POINTS);
    let per_point = write_hits as f64 / POINTS as f64;
    assert!(
        per_point <= 10.0,
        "stripe write must stay a small constant: {write_hits} hits / {POINTS} points = {per_point:.2}"
    );

    // Window 2: folding the stripe into the store must be O(series), not
    // O(points) — runs move or extend wholesale. Budget: a generous
    // per-series constant, still ~50x below one hit per point.
    let merge_hits = audited(|| {
        assert_eq!(stripe.flush(), POINTS);
    });
    assert!(
        merge_hits <= 32 * SERIES as u64,
        "merge must be O(series): {merge_hits} hits for {SERIES} series / {POINTS} points"
    );
    assert!(
        merge_hits < POINTS / 16,
        "merge amortization regressed: {merge_hits} hits for {POINTS} points"
    );

    // The audited work really landed.
    assert_eq!(db.points_ingested(), POINTS + SERIES as u64);
    let agg = db.query(&Query::range("latency", "total_ms", 0, u64::MAX))[0]
        .agg
        .unwrap();
    assert_eq!(agg.count, (POINTS + SERIES as u64) as usize);
}
