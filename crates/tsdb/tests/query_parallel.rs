//! Query-equivalence suite: the bounded parallel fan-out must return
//! exactly what the single-threaded reference path returns — same
//! buckets, same aggregates, bit for bit — for every worker count, every
//! tag filter, every bucketing, and regardless of how the store's runs
//! are split between sealed chunks and active tails. The scan partitions
//! series in sorted-key order and concatenates partials in that same
//! order, so even float summation order is identical.

// Tests are exempt from the panic-freedom policy (DESIGN.md §10).
#![allow(clippy::unwrap_used, clippy::expect_used)]

// Thousands of randomized cases; thread spawning under Miri is
// disproportionately slow and the property is scheduling-neutral.
#![cfg(not(miri))]

use proptest::prelude::*;
use ruru_tsdb::{Point, Query, TsDb};

const CITIES: [&str; 7] = ["akl", "lax", "syd", "nrt", "fra", "lhr", "gru"];

#[derive(Debug, Clone, Copy)]
struct Ingest {
    city: u8,
    asn: u8,
    ts: u64,
    val_milli: u32,
}

fn ingest_strategy() -> impl Strategy<Value = Ingest> {
    (any::<u8>(), any::<u8>(), 0u64..2_000_000, any::<u32>()).prop_map(
        |(city, asn, ts, val_milli)| Ingest {
            city: city % CITIES.len() as u8,
            asn: asn % 4,
            ts,
            val_milli,
        },
    )
}

fn build(ops: &[Ingest]) -> TsDb {
    let db = TsDb::new();
    for op in ops {
        db.write(&Point::new(
            "latency",
            vec![
                ("city".into(), CITIES[op.city as usize].into()),
                ("asn".into(), format!("AS{}", op.asn)),
            ],
            vec![
                ("total_ms".into(), op.val_milli as f64 / 1000.0),
                ("internal_ms".into(), op.val_milli as f64 / 7000.0),
            ],
            op.ts,
        ));
    }
    db
}

fn query_matrix() -> Vec<Query> {
    vec![
        Query::range("latency", "total_ms", 0, u64::MAX),
        Query::range("latency", "total_ms", 0, 2_000_000).with_buckets(100_000),
        Query::range("latency", "internal_ms", 500_000, 1_500_000).with_buckets(10_000),
        Query::range("latency", "total_ms", 0, 2_000_000)
            .with_buckets(250_000)
            .with_tag("city", "akl"),
        Query::range("latency", "total_ms", 0, 2_000_000)
            .with_tag("city", "lax")
            .with_tag("asn", "AS1"),
        Query::range("latency", "missing_field", 0, 2_000_000).with_buckets(500_000),
        Query::range("latency", "total_ms", 2_000_000, 1_000, /* inverted */).with_buckets(1),
    ]
}

fn assert_equivalent(db: &TsDb) {
    for q in query_matrix() {
        let reference = db.query(&q);
        for workers in [0, 2, 3, 4, 8, 16, 1024] {
            let got = db.query_parallel(&q, workers);
            assert_eq!(got, reference, "workers={workers} query={q:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel fan-out over a mixed sealed/active store equals the
    /// single-threaded reference for every worker count.
    #[test]
    fn parallel_equals_reference(
        ops in proptest::collection::vec(ingest_strategy(), 0..800),
    ) {
        let db = build(&ops);
        assert_equivalent(&db); // all-active store
        db.seal();
        assert_equivalent(&db); // all-sealed store
    }
}

#[test]
fn parallel_equals_reference_across_seal_boundary() {
    // A store large enough that threshold sealing kicks in on its own,
    // leaving genuine sealed chunks *and* active tails in every series.
    let db = TsDb::new();
    for i in 0..40_000u64 {
        let city = CITIES[(i % 3) as usize];
        db.write(&Point::new(
            "latency",
            vec![("city".into(), city.into())],
            vec![("total_ms".into(), ((i * 31) % 1009) as f64 * 0.1)],
            i * 1_000,
        ));
    }
    let stats = db.storage_stats();
    assert!(stats.sealed_points > 0 && stats.active_points > 0);
    assert_equivalent(&db);
}

#[test]
fn worker_count_does_not_change_percentiles() {
    // Percentiles are order-sensitive if partials concatenate in a
    // nondeterministic order; pin the exact aggregate fields.
    let db = TsDb::new();
    for i in 0..10_000u64 {
        let city = CITIES[(i % CITIES.len() as u64) as usize];
        db.write(&Point::new(
            "latency",
            vec![("city".into(), city.into())],
            vec![("total_ms".into(), ((i * 2654435761) % 100_000) as f64 / 100.0)],
            i * 500,
        ));
    }
    db.seal();
    let q = Query::range("latency", "total_ms", 0, 10_000 * 500).with_buckets(333_333);
    let reference = db.query(&q);
    let p99s: Vec<Option<f64>> = reference.iter().map(|b| b.agg.map(|a| a.p99)).collect();
    assert!(p99s.iter().any(|p| p.is_some()));
    for workers in [2, 4, 16] {
        let got = db.query_parallel(&q, workers);
        let got_p99s: Vec<Option<f64>> = got.iter().map(|b| b.agg.map(|a| a.p99)).collect();
        assert_eq!(got_p99s, p99s, "workers={workers}");
        assert_eq!(got, reference, "workers={workers}");
    }
}
