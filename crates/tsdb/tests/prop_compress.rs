//! Differential property suite for the sealed-chunk lifecycle: sealing
//! (Gorilla compression) must be **observably invisible**. For any
//! randomized ingest — timestamp jitter, duplicate stamps, NaN and
//! extreme values, empty and single-point series — every public read
//! path must return bit-identical results before and after forcing the
//! whole store through compressed sealed chunks, and after a
//! decode → re-seal round-trip via the snapshot image.

// Tests are exempt from the panic-freedom policy (DESIGN.md §10):
// unwrap/expect on known-good fixtures is idiomatic here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

// Proptest exercises thousands of cases: far too slow under Miri, and
// the properties are memory-safety-neutral anyway.
#![cfg(not(miri))]

use proptest::prelude::*;
use ruru_tsdb::{Point, Query, TsDb};

/// One randomized sample: series index, timestamp, raw value bits.
#[derive(Debug, Clone, Copy)]
struct Ingest {
    series: u8,
    ts: u64,
    bits: u64,
}

/// Value strategy over raw bits so NaN payloads, signed zeros and
/// infinities are all first-class citizens of the distribution.
fn bits_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        // Realistic latencies: small magnitudes with limited jitter.
        8 => (0u64..1_000_000).prop_map(|i| (100.0 + i as f64 * 0.001).to_bits()),
        // Arbitrary bit patterns (often NaN/subnormal/huge).
        2 => any::<u64>(),
        // The named special values.
        1 => Just(f64::NAN.to_bits()),
        1 => Just(f64::INFINITY.to_bits()),
        1 => Just(f64::NEG_INFINITY.to_bits()),
        1 => Just((-0.0f64).to_bits()),
        1 => Just(f64::MAX.to_bits()),
        1 => Just(f64::MIN_POSITIVE.to_bits()),
    ]
}

fn ingest_strategy() -> impl Strategy<Value = Ingest> {
    (any::<u8>(), ts_strategy(), bits_strategy()).prop_map(|(series, ts, bits)| Ingest {
        series: series % 5,
        ts,
        bits,
    })
}

/// Timestamps cluster on a cadence with jitter, plus occasional extremes
/// (0, far future) and duplicates from the small modulus.
fn ts_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        8 => (0u64..5_000).prop_map(|i| i * 1_000_000 + (i * 37) % 1013),
        1 => Just(0u64),
        1 => 0u64..u64::MAX / 2,
    ]
}

fn build_store(ops: &[Ingest]) -> TsDb {
    let db = TsDb::new();
    for op in ops {
        let city = ["akl", "lax", "syd", "nrt", "fra"][op.series as usize];
        db.write(&Point::new(
            "latency",
            vec![("city".into(), city.into())],
            vec![("total_ms".into(), f64::from_bits(op.bits))],
            op.ts,
        ));
    }
    db
}

/// Bit-exact view of every stored sample, via the scan path.
fn values_bits(db: &TsDb, q: &Query) -> Vec<(u64, Vec<u64>)> {
    db.query_values(q)
        .into_iter()
        .map(|(start, vs)| (start, vs.iter().map(|v| v.to_bits()).collect()))
        .collect()
}

fn queries() -> Vec<Query> {
    vec![
        Query::range("latency", "total_ms", 0, u64::MAX),
        Query::range("latency", "total_ms", 0, 5_000_000_000).with_buckets(250_000_000),
        Query::range("latency", "total_ms", 1_000_000, 4_000_000_000)
            .with_buckets(100_000_000),
        Query::range("latency", "total_ms", 0, u64::MAX).with_tag("city", "akl"),
        Query::range("latency", "total_ms", 0, 0),
        Query::range("nope", "total_ms", 0, 1000),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sealing is invisible: every read path returns bit-identical
    /// results from the uncompressed store and the fully sealed one.
    #[test]
    fn sealed_store_reads_bit_identical(
        ops in proptest::collection::vec(ingest_strategy(), 0..600),
    ) {
        let db = build_store(&ops);
        let before_snapshot = db.to_snapshot();
        let before_values: Vec<_> = queries().iter().map(|q| values_bits(&db, q)).collect();

        let sealed_now = db.seal();
        let stats = db.storage_stats();
        prop_assert_eq!(stats.active_points, 0, "forced seal must drain tails");
        prop_assert_eq!(stats.sealed_points, sealed_now);
        prop_assert_eq!(stats.sealed_points, ops.len() as u64);

        // The snapshot image (decoded sealed chunks) is byte-identical to
        // the pre-seal image: compression round-trips every bit.
        prop_assert_eq!(&db.to_snapshot(), &before_snapshot);
        for (q, before) in queries().iter().zip(&before_values) {
            prop_assert_eq!(&values_bits(&db, q), before, "query {:?}", q);
        }

        // And a store rebuilt from the image re-reads identically too.
        let rebuilt = TsDb::from_snapshot(&before_snapshot).unwrap();
        for (q, before) in queries().iter().zip(&before_values) {
            prop_assert_eq!(&values_bits(&rebuilt, q), before, "rebuilt query {:?}", q);
        }
    }

    /// Merging shards and direct writes agree after sealing, exactly as
    /// they did before compression existed — the PR 6 differential
    /// property carried over to the two-phase store.
    #[test]
    fn sealed_merge_matches_direct_writes(
        ops in proptest::collection::vec(ingest_strategy(), 1..400),
    ) {
        let direct = build_store(&ops);
        let sharded = std::sync::Arc::new(TsDb::new());
        let mut stripes = [sharded.stripe(97), sharded.stripe(61)];
        for (i, op) in ops.iter().enumerate() {
            let city = ["akl", "lax", "syd", "nrt", "fra"][op.series as usize];
            stripes[i % 2].write(&Point::new(
                "latency",
                vec![("city".into(), city.into())],
                vec![("total_ms".into(), f64::from_bits(op.bits))],
                op.ts,
            ));
        }
        for s in &mut stripes {
            s.flush();
        }
        prop_assert_eq!(sharded.points_ingested(), direct.points_ingested());
        direct.seal();
        sharded.seal();
        // Sample multisets per bucket must match; ordering within a bucket
        // may differ between interleavings, so compare sorted bit vectors.
        for q in queries() {
            let mut a = values_bits(&direct, &q);
            let mut b = values_bits(&sharded, &q);
            for (_, vs) in a.iter_mut().chain(b.iter_mut()) {
                vs.sort_unstable();
            }
            prop_assert_eq!(a, b, "query {:?}", q);
        }
    }

    /// Single-point and empty series through the seal path.
    #[test]
    fn tiny_series_seal_roundtrip(ts in ts_strategy(), bits in bits_strategy()) {
        let db = TsDb::new();
        db.write(&Point::new(
            "latency",
            vec![("city".into(), "akl".into())],
            vec![("total_ms".into(), f64::from_bits(bits))],
            ts,
        ));
        let q = Query::range("latency", "total_ms", 0, u64::MAX);
        let before = values_bits(&db, &q);
        prop_assert_eq!(db.seal(), 1);
        prop_assert_eq!(values_bits(&db, &q), before);
        prop_assert_eq!(db.seal(), 0, "empty active tails seal to nothing");
        prop_assert_eq!(values_bits(&db, &q), before);
    }
}
