//! Sealing, retention and downsample-rewrite of compressed chunks — the
//! **cold** half of the store's two-phase shard lifecycle (DESIGN.md §16).
//!
//! Active runs are plain sorted `Vec<(u64, f64)>`s fed by the striped
//! ingest path. Once a run crosses [`SEAL_THRESHOLD`], the store cuts
//! [`CHUNK_LEN`]-sample prefixes and rewrites them into immutable
//! Gorilla-compressed [`Chunk`]s; only a short mutable tail stays
//! uncompressed so late stragglers keep their cheap binary-insert path.
//! Retention drops whole expired chunks without decompressing and
//! rewrites the one straddling chunk; downsampling rewrites old chunks
//! in place at a coarser resolution.
//!
//! Everything here runs under the store's write lock on maintenance
//! paths (seal points, retention sweeps, downsample rewrites) — never
//! per point — which is why this module, and only this module, keeps an
//! audited allocation exemption in `cargo xtask hotpath-check`.

use crate::compress::{Chunk, Sample};

/// Samples per sealed chunk. Large enough to amortise the per-chunk
/// header and give the delta-of-delta coder a long run; small enough
/// that a partially-expired chunk rewrite stays cheap.
pub(crate) const CHUNK_LEN: usize = 1024;

/// Active-run length that triggers sealing of full chunks. Four chunks
/// of slack keep the seal cost amortised to one compression pass per
/// `SEAL_THRESHOLD` appends.
pub(crate) const SEAL_THRESHOLD: usize = 4 * CHUNK_LEN;

/// Cut [`CHUNK_LEN`]-sample prefixes off `active` and append them to
/// `sealed` as compressed chunks, leaving the partial tail mutable.
/// With `force`, the tail seals too (used before snapshots of sealed
/// size and by retention-horizon flushes). Returns samples sealed.
pub(crate) fn seal_run(active: &mut Vec<Sample>, sealed: &mut Vec<Chunk>, force: bool) -> u64 {
    let full = (active.len() / CHUNK_LEN) * CHUNK_LEN;
    let take = if force { active.len() } else { full };
    if take == 0 {
        return 0;
    }
    for chunk_samples in active.get(..take).unwrap_or(&[]).chunks(CHUNK_LEN) {
        if let Some(chunk) = Chunk::compress(chunk_samples) {
            sealed.push(chunk);
        }
    }
    active.drain(..take);
    take as u64
}

/// Drop every sample older than `cutoff` from a sealed chunk list.
/// Wholly-expired chunks are dropped without decompressing; the single
/// chunk straddling the cutoff is decoded, filtered and re-sealed.
/// Returns how many samples were dropped.
pub(crate) fn retain_chunks(chunks: &mut Vec<Chunk>, cutoff: u64) -> u64 {
    let mut dropped = 0u64;
    // Chunks are time-ordered by construction; find the first chunk that
    // has anything to keep.
    let whole = chunks.partition_point(|c| c.end_ns() < cutoff);
    for c in chunks.drain(..whole) {
        dropped += c.count() as u64;
    }
    if let Some(first) = chunks.first() {
        if first.start_ns() < cutoff {
            let mut samples = Vec::new();
            first.decompress_into(&mut samples);
            let keep_from = samples.partition_point(|&(t, _)| t < cutoff);
            dropped += keep_from as u64;
            match Chunk::compress(samples.get(keep_from..).unwrap_or(&[])) {
                Some(rewritten) => {
                    if let Some(slot) = chunks.first_mut() {
                        *slot = rewritten;
                    }
                }
                None => {
                    chunks.remove(0);
                }
            }
        }
    }
    dropped
}

/// Rewrite every chunk whose samples all predate `before_ns` at a
/// coarser resolution: one mean-valued sample per `bucket_ns` window,
/// stamped at the window start. Returns `(samples_before,
/// samples_after)` across the rewritten chunks.
pub(crate) fn downsample_chunks(chunks: &mut Vec<Chunk>, bucket_ns: u64, before_ns: u64) -> (u64, u64) {
    let bucket_ns = bucket_ns.max(1);
    let old = chunks.partition_point(|c| c.end_ns() < before_ns);
    if old == 0 {
        return (0, 0);
    }
    let mut samples = Vec::new();
    let mut before = 0u64;
    for c in chunks.iter().take(old) {
        before += c.count() as u64;
        c.decompress_into(&mut samples);
    }
    let mut coarse: Vec<Sample> = Vec::new();
    let mut acc: Option<(u64, f64, u64)> = None; // (window start, sum, count)
    for &(t, v) in &samples {
        let w = (t / bucket_ns).saturating_mul(bucket_ns);
        match &mut acc {
            Some((start, sum, n)) if *start == w => {
                *sum += v;
                *n += 1;
            }
            _ => {
                if let Some((start, sum, n)) = acc.take() {
                    coarse.push((start, sum / n as f64));
                }
                acc = Some((w, v, 1));
            }
        }
    }
    if let Some((start, sum, n)) = acc {
        coarse.push((start, sum / n as f64));
    }
    let after = coarse.len() as u64;
    let mut rewritten: Vec<Chunk> = Vec::new();
    for piece in coarse.chunks(CHUNK_LEN) {
        if let Some(chunk) = Chunk::compress(piece) {
            rewritten.push(chunk);
        }
    }
    chunks.splice(..old, rewritten);
    (before, after)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n: u64) -> Vec<Sample> {
        (0..n).map(|i| (i * 1000, i as f64)).collect()
    }

    #[test]
    fn seal_leaves_partial_tail_active() {
        let mut active = run(CHUNK_LEN as u64 * 2 + 100);
        let mut sealed = Vec::new();
        let n = seal_run(&mut active, &mut sealed, false);
        assert_eq!(n, CHUNK_LEN as u64 * 2);
        assert_eq!(sealed.len(), 2);
        assert_eq!(active.len(), 100);
        // Sealed samples decode back exactly and in order.
        let decoded: Vec<Sample> = sealed.iter().flat_map(|c| c.iter()).collect();
        assert_eq!(decoded, run(CHUNK_LEN as u64 * 2));
    }

    #[test]
    fn forced_seal_takes_everything() {
        let mut active = run(10);
        let mut sealed = Vec::new();
        assert_eq!(seal_run(&mut active, &mut sealed, true), 10);
        assert!(active.is_empty());
        assert_eq!(sealed.len(), 1);
        assert_eq!(seal_run(&mut active, &mut sealed, true), 0);
    }

    #[test]
    fn retain_drops_whole_chunks_without_rewrite() {
        let mut active = run(CHUNK_LEN as u64 * 3);
        let mut sealed = Vec::new();
        seal_run(&mut active, &mut sealed, false);
        // Cutoff exactly at the second chunk boundary: first chunk wholly
        // expired, second chunk untouched.
        let cutoff = (CHUNK_LEN as u64) * 1000;
        let dropped = retain_chunks(&mut sealed, cutoff);
        assert_eq!(dropped, CHUNK_LEN as u64);
        assert_eq!(sealed.len(), 2);
        assert_eq!(sealed.first().map(|c| c.start_ns()), Some(cutoff));
    }

    #[test]
    fn retain_rewrites_straddling_chunk() {
        let mut active = run(CHUNK_LEN as u64);
        let mut sealed = Vec::new();
        seal_run(&mut active, &mut sealed, true);
        let dropped = retain_chunks(&mut sealed, 500 * 1000);
        assert_eq!(dropped, 500);
        let decoded: Vec<Sample> = sealed.iter().flat_map(|c| c.iter()).collect();
        assert_eq!(decoded.len(), CHUNK_LEN - 500);
        assert_eq!(decoded.first().map(|&(t, _)| t), Some(500 * 1000));
    }

    #[test]
    fn retain_can_empty_the_list() {
        let mut active = run(100);
        let mut sealed = Vec::new();
        seal_run(&mut active, &mut sealed, true);
        assert_eq!(retain_chunks(&mut sealed, u64::MAX), 100);
        assert!(sealed.is_empty());
    }

    #[test]
    fn downsample_rewrites_old_chunks_with_means() {
        // Two sealed chunks at 1khz cadence, downsample the first to 100x
        // coarser windows.
        let mut active = run(CHUNK_LEN as u64 * 2);
        let mut sealed = Vec::new();
        seal_run(&mut active, &mut sealed, false);
        let horizon = CHUNK_LEN as u64 * 1000;
        let (before, after) = downsample_chunks(&mut sealed, 100_000, horizon);
        assert_eq!(before, CHUNK_LEN as u64);
        assert_eq!(after, (CHUNK_LEN as u64).div_ceil(100));
        let decoded: Vec<Sample> = sealed.iter().flat_map(|c| c.iter()).collect();
        // First coarse window holds means of samples 0..100 → 49.5.
        assert_eq!(decoded.first().map(|&(t, v)| (t, v)), Some((0, 49.5)));
        // The untouched second chunk still follows at full resolution.
        assert_eq!(
            decoded.len(),
            (CHUNK_LEN as u64).div_ceil(100) as usize + CHUNK_LEN
        );
    }

    #[test]
    fn downsample_with_no_old_chunks_is_noop() {
        let mut active = run(CHUNK_LEN as u64);
        let mut sealed = Vec::new();
        seal_run(&mut active, &mut sealed, true);
        assert_eq!(downsample_chunks(&mut sealed, 100, 0), (0, 0));
        assert_eq!(sealed.len(), 1);
    }
}
