//! The time-series store: concurrent ingest, tag-filtered bucketed
//! queries, retention and downsampling.
//!
//! Storage is one sorted run per series (measurement + tag set). Ruru's
//! ingest is nearly in timestamp order, so appends are O(1) with a
//! binary-search insertion fallback for stragglers.

use crate::agg::Aggregate;
use crate::point::Point;
use parking_lot::RwLock;
use std::collections::HashMap;

/// One stored sample: timestamp and value (per field).
type Sample = (u64, f64);

#[derive(Debug, Default)]
struct Series {
    tags: Vec<(String, String)>,
    /// Per-field sorted sample runs.
    fields: HashMap<String, Vec<Sample>>,
}

impl Series {
    #[allow(clippy::disallowed_methods)] // sanctioned: owned field key on first sight only; repeats hit the map
    fn insert(&mut self, field: &str, ts: u64, value: f64) {
        let run = self.fields.entry(field.to_string()).or_default();
        match run.last() {
            Some(&(last_ts, _)) if last_ts > ts => {
                // Out-of-order straggler: binary insert.
                let idx = run.partition_point(|&(t, _)| t <= ts);
                run.insert(idx, (ts, value));
            }
            _ => run.push((ts, value)),
        }
    }
}

/// A tag-filtered, time-bounded, optionally bucketed aggregate query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Measurement to read.
    pub measurement: String,
    /// Field to aggregate.
    pub field: String,
    /// Required tag values (all must match). Empty = all series.
    pub tag_filters: Vec<(String, String)>,
    /// Inclusive start of the time range (ns).
    pub start_ns: u64,
    /// Exclusive end of the time range (ns).
    pub end_ns: u64,
    /// Bucket width; `None` aggregates the whole range as one bucket.
    pub bucket_ns: Option<u64>,
}

impl Query {
    /// A whole-range query over one measurement/field.
    pub fn range(measurement: &str, field: &str, start_ns: u64, end_ns: u64) -> Query {
        Query {
            measurement: measurement.into(),
            field: field.into(),
            tag_filters: Vec::new(),
            start_ns,
            end_ns,
            bucket_ns: None,
        }
    }

    /// Add a required tag value.
    pub fn with_tag(mut self, key: &str, value: &str) -> Query {
        self.tag_filters.push((key.into(), value.into()));
        self
    }

    /// Bucket the range into windows of `bucket_ns`.
    pub fn with_buckets(mut self, bucket_ns: u64) -> Query {
        assert!(bucket_ns > 0, "bucket width must be positive");
        self.bucket_ns = Some(bucket_ns);
        self
    }
}

/// One bucket of a query result.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Bucket start time (ns).
    pub start_ns: u64,
    /// Aggregates of the samples falling in the bucket; `None` if empty.
    pub agg: Option<Aggregate>,
}

/// The database. All methods take `&self`; internal locking permits
/// concurrent ingest from many analytics workers.
pub struct TsDb {
    inner: RwLock<HashMap<String, HashMap<String, Series>>>,
    ingested: std::sync::atomic::AtomicU64,
}

impl TsDb {
    /// An empty database.
    pub fn new() -> TsDb {
        TsDb {
            inner: RwLock::new(HashMap::new()),
            ingested: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Ingest one point.
    pub fn write(&self, point: &Point) {
        // lock-ok: the store is a serialized sink by design — ingest and
        // queries share one RwLock off the capture path (ROADMAP item 4
        // tracks compression + parallel query).
        let mut inner = self.inner.write();
        let series_map = inner.entry(point.measurement.clone()).or_default();
        let series = series_map
            .entry(point.series_key())
            .or_insert_with(|| Series {
                tags: point.tags.clone(),
                fields: HashMap::new(),
            });
        for (field, value) in &point.fields {
            series.insert(field, point.timestamp_ns, *value);
        }
        self.ingested
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Fold one [`crate::sharded::IngestShard`] into the store — the
    /// merge-on-finish half of the per-queue sharded ingest path. One write
    /// lock covers the whole shard (not one per point); disjoint series
    /// move in wholesale, overlapping series merge their sorted runs with
    /// existing samples staying ahead on timestamp ties. Returns the number
    /// of points merged, which is also added to
    /// [`TsDb::points_ingested`] so ingest accounting reconciles exactly.
    pub fn merge_shard(&self, shard: crate::sharded::IngestShard) -> u64 {
        let points = shard.points;
        if points == 0 {
            return 0;
        }
        // lock-ok: serialized sink by design (see `write`) — one write lock
        // per shard merge is the documented contract above.
        let mut inner = self.inner.write();
        for (measurement, incoming) in shard.measurements {
            let series_map = inner.entry(measurement).or_default();
            for (key, s) in incoming {
                match series_map.entry(key) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(Series {
                            tags: s.tags,
                            fields: s.fields,
                        });
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let dst = e.get_mut();
                        for (field, run) in s.fields {
                            match dst.fields.entry(field) {
                                std::collections::hash_map::Entry::Vacant(f) => {
                                    f.insert(run);
                                }
                                std::collections::hash_map::Entry::Occupied(mut f) => {
                                    crate::sharded::merge_runs(f.get_mut(), run);
                                }
                            }
                        }
                    }
                }
            }
        }
        self.ingested
            .fetch_add(points, std::sync::atomic::Ordering::Relaxed);
        points
    }

    /// Ingest a line-protocol line.
    pub fn write_line(&self, line: &str) -> Result<(), crate::line::LineError> {
        let point = crate::line::parse(line)?;
        self.write(&point);
        Ok(())
    }

    /// Total points ingested (including later-retained ones).
    pub fn points_ingested(&self) -> u64 {
        self.ingested.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of distinct series in a measurement.
    pub fn series_count(&self, measurement: &str) -> usize {
        self.inner.read().get(measurement).map_or(0, |m| m.len())
    }

    /// Execute a query; returns one [`Bucket`] per window (a single bucket
    /// for un-bucketed queries).
    pub fn query(&self, q: &Query) -> Vec<Bucket> {
        if q.end_ns < q.start_ns {
            // Inverted range: no window can match; the detector keeps running.
            return Vec::new();
        }
        // lock-ok: query is control-plane (dashboard reads); the serialized
        // sink holds the read lock while aggregating (see `write`).
        let inner = self.inner.read();
        let Some(series_map) = inner.get(&q.measurement) else {
            return empty_buckets(q);
        };
        let bucket_ns = q
            .bucket_ns
            .unwrap_or(q.end_ns.saturating_sub(q.start_ns))
            .max(1);
        let n_buckets = bucket_count(q.start_ns, q.end_ns, bucket_ns);
        let mut per_bucket: Vec<Vec<f64>> = vec![Vec::new(); n_buckets];

        for series in series_map.values() {
            if !q
                .tag_filters
                .iter()
                .all(|(k, v)| series.tags.iter().any(|(sk, sv)| sk == k && sv == v))
            {
                continue;
            }
            let Some(run) = series.fields.get(&q.field) else {
                continue;
            };
            let lo = run.partition_point(|&(t, _)| t < q.start_ns);
            for &(t, v) in run.get(lo..).unwrap_or(&[]) {
                if t >= q.end_ns {
                    break;
                }
                // panic-ok: bucket_ns is clamped to at least 1 above
                let b = (t.saturating_sub(q.start_ns) / bucket_ns) as usize;
                if let Some(bucket) = per_bucket.get_mut(b) {
                    bucket.push(v);
                }
            }
        }

        per_bucket
            .into_iter()
            .enumerate()
            .map(|(i, mut values)| Bucket {
                start_ns: q.start_ns.saturating_add((i as u64).saturating_mul(bucket_ns)),
                agg: Aggregate::compute(&mut values),
            })
            .collect()
    }

    /// Stable dump of all data for snapshot serialization (sorted for
    /// deterministic images).
    #[allow(clippy::type_complexity)]
    pub(crate) fn dump_for_snapshot(
        &self,
    ) -> Vec<(
        String,
        Vec<(Vec<(String, String)>, Vec<(String, Vec<(u64, f64)>)>)>,
    )> {
        // lock-ok: snapshot dump is control-plane; copies out under the
        // read lock by design (see `write`).
        let inner = self.inner.read();
        let mut measurements: Vec<&String> = inner.keys().collect();
        measurements.sort_unstable();
        measurements
            .into_iter()
            .filter_map(|m| {
                let series_map = inner.get(m)?;
                let mut keys: Vec<&String> = series_map.keys().collect();
                keys.sort_unstable();
                let series = keys
                    .into_iter()
                    .filter_map(|k| {
                        let s = series_map.get(k)?;
                        let mut fields: Vec<(String, Vec<(u64, f64)>)> = s
                            .fields
                            .iter()
                            .map(|(name, run)| (name.clone(), run.clone()))
                            .collect();
                        fields.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                        Some((s.tags.clone(), fields))
                    })
                    .collect();
                Some((m.clone(), series))
            })
            .collect()
    }

    /// Distinct values of tag `key` across a measurement's series, sorted —
    /// what a dashboard uses to populate its "city" / "ASN" selectors.
    pub fn tag_values(&self, measurement: &str, key: &str) -> Vec<String> {
        // lock-ok: dashboard selector query, control-plane (see `write`).
        let inner = self.inner.read();
        let Some(series_map) = inner.get(measurement) else {
            return Vec::new();
        };
        let mut values: Vec<String> = series_map
            .values()
            .filter_map(|s| {
                s.tags
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
            })
            .collect();
        values.sort_unstable();
        values.dedup();
        values
    }

    /// Drop samples older than `keep_ns` relative to `now_ns`; empty series
    /// are removed. Returns how many samples were dropped.
    pub fn enforce_retention(&self, now_ns: u64, keep_ns: u64) -> u64 {
        let cutoff = now_ns.saturating_sub(keep_ns);
        let mut dropped = 0u64;
        let mut inner = self.inner.write();
        for series_map in inner.values_mut() {
            for series in series_map.values_mut() {
                for run in series.fields.values_mut() {
                    let keep_from = run.partition_point(|&(t, _)| t < cutoff);
                    dropped += keep_from as u64;
                    run.drain(..keep_from);
                }
                series.fields.retain(|_, run| !run.is_empty());
            }
            series_map.retain(|_, s| !s.fields.is_empty());
        }
        dropped
    }

    /// Downsample: write `mean` of each `bucket_ns` window of
    /// `(measurement, field)` into `target_measurement` (tags preserved),
    /// over `[start_ns, end_ns)`. Returns points written.
    #[allow(clippy::disallowed_methods)] // sanctioned: retention maintenance, control-plane
    pub fn downsample(
        &self,
        measurement: &str,
        field: &str,
        target_measurement: &str,
        bucket_ns: u64,
        start_ns: u64,
        end_ns: u64,
    ) -> usize {
        // A zero bucket width is meaningless; treat it as the full range
        // rather than aborting mid-pipeline.
        let bucket_ns = bucket_ns.max(1);
        // Collect first (cannot hold the read lock while writing).
        let mut out: Vec<Point> = Vec::new();
        {
            // lock-ok: retention downsampling is control-plane maintenance;
            // aggregates under the read lock by design (see `write`).
            let inner = self.inner.read();
            let Some(series_map) = inner.get(measurement) else {
                return 0;
            };
            for series in series_map.values() {
                let Some(run) = series.fields.get(field) else {
                    continue;
                };
                let n_buckets = bucket_count(start_ns, end_ns, bucket_ns);
                let mut sums = vec![(0.0f64, 0usize); n_buckets];
                let lo = run.partition_point(|&(t, _)| t < start_ns);
                for &(t, v) in run.get(lo..).unwrap_or(&[]) {
                    if t >= end_ns {
                        break;
                    }
                    // panic-ok: bucket_ns is clamped to at least 1 above
                    let b = (t.saturating_sub(start_ns) / bucket_ns) as usize;
                    if let Some((sum, count)) = sums.get_mut(b) {
                        *sum += v;
                        *count = count.saturating_add(1);
                    }
                }
                for (i, (sum, count)) in sums.into_iter().enumerate() {
                    if count > 0 {
                        out.push(Point::new(
                            target_measurement,
                            series.tags.clone(),
                            // panic-ok: f64 division never panics (flagged conservatively)
                            vec![(field.to_string(), sum / count as f64)],
                            start_ns.saturating_add((i as u64).saturating_mul(bucket_ns)),
                        ));
                    }
                }
            }
        }
        let n = out.len();
        for p in &out {
            self.write(p);
        }
        n
    }
}

impl Default for TsDb {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_count(start: u64, end: u64, width: u64) -> usize {
    if end <= start {
        return 0;
    }
    ((end - start).div_ceil(width)) as usize
}

fn empty_buckets(q: &Query) -> Vec<Bucket> {
    let width = q.bucket_ns.unwrap_or(q.end_ns.saturating_sub(q.start_ns).max(1));
    (0..bucket_count(q.start_ns, q.end_ns, width))
        .map(|i| Bucket {
            start_ns: q.start_ns + i as u64 * width,
            agg: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(city: &str, ms: f64, ts: u64) -> Point {
        Point::new(
            "latency",
            vec![("city".into(), city.into())],
            vec![("total_ms".into(), ms)],
            ts,
        )
    }

    #[test]
    fn write_and_whole_range_query() {
        let db = TsDb::new();
        db.write(&point("akl", 130.0, 10));
        db.write(&point("akl", 132.0, 20));
        db.write(&point("lax", 60.0, 15));
        let buckets = db.query(&Query::range("latency", "total_ms", 0, 100));
        assert_eq!(buckets.len(), 1);
        let agg = buckets[0].agg.unwrap();
        assert_eq!(agg.count, 3);
        assert_eq!(agg.min, 60.0);
        assert_eq!(agg.max, 132.0);
        assert_eq!(db.points_ingested(), 3);
        assert_eq!(db.series_count("latency"), 2);
    }

    #[test]
    fn tag_filter_restricts_series() {
        let db = TsDb::new();
        db.write(&point("akl", 130.0, 10));
        db.write(&point("lax", 60.0, 15));
        let buckets = db.query(
            &Query::range("latency", "total_ms", 0, 100).with_tag("city", "akl"),
        );
        let agg = buckets[0].agg.unwrap();
        assert_eq!(agg.count, 1);
        assert_eq!(agg.mean, 130.0);
    }

    #[test]
    fn time_range_is_half_open() {
        let db = TsDb::new();
        db.write(&point("akl", 1.0, 10));
        db.write(&point("akl", 2.0, 20));
        let buckets = db.query(&Query::range("latency", "total_ms", 10, 20));
        assert_eq!(buckets[0].agg.unwrap().count, 1, "end is exclusive");
    }

    #[test]
    fn bucketed_query_splits_windows() {
        let db = TsDb::new();
        for i in 0..10u64 {
            db.write(&point("akl", i as f64, i * 100));
        }
        let buckets = db.query(&Query::range("latency", "total_ms", 0, 1000).with_buckets(500));
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].start_ns, 0);
        assert_eq!(buckets[1].start_ns, 500);
        assert_eq!(buckets[0].agg.unwrap().count, 5);
        assert_eq!(buckets[1].agg.unwrap().count, 5);
        assert_eq!(buckets[0].agg.unwrap().mean, 2.0);
        assert_eq!(buckets[1].agg.unwrap().mean, 7.0);
    }

    #[test]
    fn empty_buckets_are_reported() {
        let db = TsDb::new();
        db.write(&point("akl", 1.0, 50));
        let buckets = db.query(&Query::range("latency", "total_ms", 0, 300).with_buckets(100));
        assert_eq!(buckets.len(), 3);
        assert!(buckets[0].agg.is_some());
        assert!(buckets[1].agg.is_none());
        assert!(buckets[2].agg.is_none());
    }

    #[test]
    fn unknown_measurement_returns_empty_buckets() {
        let db = TsDb::new();
        let buckets = db.query(&Query::range("nope", "f", 0, 200).with_buckets(100));
        assert_eq!(buckets.len(), 2);
        assert!(buckets.iter().all(|b| b.agg.is_none()));
    }

    #[test]
    fn out_of_order_ingest_is_sorted() {
        let db = TsDb::new();
        db.write(&point("akl", 3.0, 300));
        db.write(&point("akl", 1.0, 100));
        db.write(&point("akl", 2.0, 200));
        let buckets = db.query(&Query::range("latency", "total_ms", 0, 400).with_buckets(100));
        let means: Vec<Option<f64>> = buckets.iter().map(|b| b.agg.map(|a| a.mean)).collect();
        assert_eq!(means, vec![None, Some(1.0), Some(2.0), Some(3.0)]);
    }

    #[test]
    fn tag_values_lists_distinct_sorted() {
        let db = TsDb::new();
        db.write(&point("lax", 1.0, 1));
        db.write(&point("akl", 1.0, 2));
        db.write(&point("akl", 2.0, 3));
        assert_eq!(db.tag_values("latency", "city"), vec!["akl", "lax"]);
        assert!(db.tag_values("latency", "nope").is_empty());
        assert!(db.tag_values("nope", "city").is_empty());
    }

    #[test]
    fn retention_drops_old_samples() {
        let db = TsDb::new();
        for i in 0..10u64 {
            db.write(&point("akl", i as f64, i * 1000));
        }
        let dropped = db.enforce_retention(10_000, 5_000);
        assert_eq!(dropped, 5); // samples at 0..4999 dropped
        let agg = db.query(&Query::range("latency", "total_ms", 0, 100_000))[0]
            .agg
            .unwrap();
        assert_eq!(agg.count, 5);
        assert_eq!(agg.min, 5.0);
    }

    #[test]
    fn retention_removes_empty_series() {
        let db = TsDb::new();
        db.write(&point("akl", 1.0, 10));
        db.enforce_retention(1_000_000, 0);
        assert_eq!(db.series_count("latency"), 0);
    }

    #[test]
    fn line_protocol_ingest() {
        let db = TsDb::new();
        db.write_line("latency,city=akl total_ms=130 100").unwrap();
        assert!(db.write_line("garbage").is_err());
        let agg = db.query(&Query::range("latency", "total_ms", 0, 200))[0]
            .agg
            .unwrap();
        assert_eq!(agg.count, 1);
    }

    #[test]
    fn downsample_writes_means() {
        let db = TsDb::new();
        for i in 0..100u64 {
            db.write(&point("akl", i as f64, i * 10));
        }
        let n = db.downsample("latency", "total_ms", "latency_1us", 500, 0, 1000);
        assert_eq!(n, 2);
        let buckets = db.query(&Query::range("latency_1us", "total_ms", 0, 1000).with_buckets(500));
        assert_eq!(buckets[0].agg.unwrap().count, 1);
        assert_eq!(buckets[0].agg.unwrap().mean, 24.5); // mean of 0..49
        assert_eq!(buckets[1].agg.unwrap().mean, 74.5); // mean of 50..99
    }

    #[test]
    fn concurrent_ingest() {
        let db = std::sync::Arc::new(TsDb::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let db = std::sync::Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    db.write(&point(if t % 2 == 0 { "akl" } else { "lax" }, 1.0, i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.points_ingested(), 4000);
        let agg = db.query(&Query::range("latency", "total_ms", 0, 2000))[0]
            .agg
            .unwrap();
        assert_eq!(agg.count, 4000);
    }

    #[test]
    fn multiple_fields_per_point() {
        let db = TsDb::new();
        db.write(&Point::new(
            "latency",
            vec![("city".into(), "akl".into())],
            vec![("int_ms".into(), 1.0), ("ext_ms".into(), 130.0)],
            5,
        ));
        let int_agg = db.query(&Query::range("latency", "int_ms", 0, 10))[0].agg.unwrap();
        let ext_agg = db.query(&Query::range("latency", "ext_ms", 0, 10))[0].agg.unwrap();
        assert_eq!(int_agg.mean, 1.0);
        assert_eq!(ext_agg.mean, 130.0);
    }
}
