//! The time-series store: striped concurrent ingest, a two-phase
//! (active → sealed) shard lifecycle, tag-filtered bucketed queries with
//! bounded parallel fan-out, retention and downsampling.
//!
//! Storage is one run per series field in two phases (DESIGN.md §16):
//! a mutable **active** tail — a plain sorted `Vec`, appended in O(1)
//! with a binary-search fallback for stragglers — and an immutable
//! **sealed** prefix of Gorilla-compressed chunks (`compress::Chunk`)
//! that queries decode in place. Steady-state ingest never touches the
//! store lock per point: writers buffer into private
//! [`crate::sharded::IngestShard`]s (via [`crate::sharded::StripeWriter`])
//! and fold them in with [`TsDb::merge_shard`], one short write-lock
//! hold per rotation instead of one per sample.

use crate::agg::Aggregate;
use crate::compress::Sample;
use crate::point::Point;
use crate::seal;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Upper bound on query fan-out threads, whatever the caller asks for.
pub const MAX_QUERY_WORKERS: usize = 16;

/// One series field's storage: sealed compressed prefix + mutable tail.
#[derive(Debug, Default)]
struct FieldStore {
    sealed: Vec<crate::compress::Chunk>,
    active: Vec<Sample>,
}

impl FieldStore {
    /// Visit every sample in `[start, end)` in storage order: sealed
    /// chunks first (each internally time-sorted), then the active tail.
    fn for_each_in_range(&self, start: u64, end: u64, f: &mut impl FnMut(u64, f64)) {
        for chunk in &self.sealed {
            if chunk.end_ns() < start || chunk.start_ns() >= end {
                continue;
            }
            for (t, v) in chunk.iter() {
                if t >= end {
                    break;
                }
                if t >= start {
                    f(t, v);
                }
            }
        }
        let lo = self.active.partition_point(|&(t, _)| t < start);
        for &(t, v) in self.active.get(lo..).unwrap_or(&[]) {
            if t >= end {
                break;
            }
            f(t, v);
        }
    }

    fn len(&self) -> u64 {
        let sealed: usize = self.sealed.iter().map(|c| c.count()).sum();
        sealed as u64 + self.active.len() as u64
    }
}

#[derive(Debug, Default)]
struct Series {
    tags: Vec<(String, String)>,
    /// Per-field two-phase runs.
    fields: HashMap<String, FieldStore>,
}

impl Series {
    #[allow(clippy::disallowed_methods)] // sanctioned: owned field key on first sight only; repeats hit the map
    fn insert(&mut self, field: &str, ts: u64, value: f64) {
        // alloc-ok: owned field key + map slot on first sight of a field;
        // repeats hit the existing entry (control-plane write path — the
        // dataplane buffers into stripes and merges wholesale).
        let fs = self.fields.entry(field.to_string()).or_default();
        let run = &mut fs.active;
        match run.last() {
            Some(&(last_ts, _)) if last_ts > ts => {
                // Out-of-order straggler: binary insert.
                let idx = run.partition_point(|&(t, _)| t <= ts);
                run.insert(idx, (ts, value));
            }
            _ => run.push((ts, value)),
        }
        if run.len() >= seal::SEAL_THRESHOLD {
            seal::seal_run(&mut fs.active, &mut fs.sealed, false);
        }
    }
}

/// A tag-filtered, time-bounded, optionally bucketed aggregate query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Measurement to read.
    pub measurement: String,
    /// Field to aggregate.
    pub field: String,
    /// Required tag values (all must match). Empty = all series.
    pub tag_filters: Vec<(String, String)>,
    /// Inclusive start of the time range (ns).
    pub start_ns: u64,
    /// Exclusive end of the time range (ns).
    pub end_ns: u64,
    /// Bucket width; `None` aggregates the whole range as one bucket.
    pub bucket_ns: Option<u64>,
}

impl Query {
    /// A whole-range query over one measurement/field.
    pub fn range(measurement: &str, field: &str, start_ns: u64, end_ns: u64) -> Query {
        Query {
            measurement: measurement.into(),
            field: field.into(),
            tag_filters: Vec::new(),
            start_ns,
            end_ns,
            bucket_ns: None,
        }
    }

    /// Add a required tag value.
    pub fn with_tag(mut self, key: &str, value: &str) -> Query {
        self.tag_filters.push((key.into(), value.into()));
        self
    }

    /// Bucket the range into windows of `bucket_ns`.
    pub fn with_buckets(mut self, bucket_ns: u64) -> Query {
        assert!(bucket_ns > 0, "bucket width must be positive");
        self.bucket_ns = Some(bucket_ns);
        self
    }

    fn matches(&self, series: &Series) -> bool {
        self.tag_filters
            .iter()
            .all(|(k, v)| series.tags.iter().any(|(sk, sv)| sk == k && sv == v))
    }

    fn bucket_width(&self) -> u64 {
        self.bucket_ns
            .unwrap_or(self.end_ns.saturating_sub(self.start_ns))
            .max(1)
    }
}

/// One bucket of a query result.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Bucket start time (ns).
    pub start_ns: u64,
    /// Aggregates of the samples falling in the bucket; `None` if empty.
    pub agg: Option<Aggregate>,
}

/// Storage accounting for the two shard phases — what the pipeline
/// exports as `ruru_self` gauges and the bench reports as bytes/point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Samples held in sealed compressed chunks.
    pub sealed_points: u64,
    /// Compressed payload bytes across all sealed chunks.
    pub sealed_bytes: u64,
    /// Samples still in mutable active tails (16 bytes each in memory).
    pub active_points: u64,
}

/// The database. All methods take `&self`. Steady-state ingest goes
/// through per-writer stripes ([`TsDb::stripe`]); the internal lock is
/// only taken whole-shard at merge points and by control-plane paths
/// (telemetry export, queries, retention).
pub struct TsDb {
    inner: RwLock<HashMap<String, HashMap<String, Series>>>,
    ingested: std::sync::atomic::AtomicU64,
}

impl TsDb {
    /// An empty database.
    pub fn new() -> TsDb {
        TsDb {
            inner: RwLock::new(HashMap::new()),
            ingested: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Ingest one point directly. This is the **control-plane** path
    /// (telemetry export, snapshot restore, line protocol): it takes the
    /// store lock per call. Dataplane writers use [`TsDb::stripe`] and
    /// never contend here.
    pub fn write(&self, point: &Point) {
        // Control-plane ingest: telemetry export and snapshot restore;
        // dataplane writers go through stripes + merge_shard.
        let mut inner = self.inner.write();
        // alloc-ok: owned measurement/series keys per point — the
        // control-plane ingest cost; the dataplane never takes this path.
        let series_map = inner.entry(point.measurement.clone()).or_default();
        let series = series_map
            .entry(point.series_key()) // alloc-ok: control-plane path, owned key per point
            .or_insert_with(|| Series { // alloc-ok: once per new series, not per point
                tags: point.tags.clone(), // alloc-ok: once per new series, not per point
                fields: HashMap::new(),
            });
        for (field, value) in &point.fields {
            series.insert(field, point.timestamp_ns, *value);
        }
        self.ingested
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Fold one [`crate::sharded::IngestShard`] into the store — the
    /// merge half of the striped ingest path, called per rotation (not
    /// per point) by every writer. One write lock covers the whole shard;
    /// disjoint series move in wholesale, overlapping series merge their
    /// sorted runs with existing samples staying ahead on timestamp ties.
    /// Runs crossing the seal threshold are compressed on the way in.
    /// Returns the number of points merged, which is also added to
    /// [`TsDb::points_ingested`] so ingest accounting reconciles exactly.
    pub fn merge_shard(&self, shard: crate::sharded::IngestShard) -> u64 {
        let points = shard.points;
        if points == 0 {
            return 0;
        }
        // lock-ok: one short write-lock hold per shard rotation is the
        // amortised merge contract of the striped ingest path.
        let mut inner = self.inner.write();
        for (measurement, incoming) in shard.measurements {
            // alloc-ok: map entry per shard measurement — O(series) work
            // per merge, not per point; keys move in from the shard, no
            // new strings are built here.
            let series_map = inner.entry(measurement).or_default();
            for (key, s) in incoming {
                // alloc-ok: map slot per incoming series, O(series) per
                // merge; vacant inserts move the shard's data wholesale.
                match series_map.entry(key) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let series = e.insert(Series {
                            tags: s.tags,
                            fields: HashMap::with_capacity(s.fields.len()),
                        });
                        for (field, run) in s.fields {
                            series.fields.insert(field, FieldStore { sealed: Vec::new(), active: run });
                        }
                        for fs in series.fields.values_mut() {
                            maybe_seal(fs);
                        }
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let dst = e.get_mut();
                        for (field, run) in s.fields {
                            // alloc-ok: map slot per incoming field,
                            // O(series) per merge; runs move or extend
                            // wholesale below, never per point.
                            match dst.fields.entry(field) {
                                std::collections::hash_map::Entry::Vacant(f) => {
                                    let fs = f.insert(FieldStore { sealed: Vec::new(), active: run });
                                    maybe_seal(fs);
                                }
                                std::collections::hash_map::Entry::Occupied(mut f) => {
                                    let fs = f.get_mut();
                                    crate::sharded::merge_runs(&mut fs.active, run);
                                    maybe_seal(fs);
                                }
                            }
                        }
                    }
                }
            }
        }
        self.ingested
            .fetch_add(points, std::sync::atomic::Ordering::Relaxed);
        points
    }

    /// A private per-writer ingest stripe that folds itself into this
    /// store every `flush_points` buffered points. The steady-state
    /// write path touches only writer-local memory.
    pub fn stripe(self: &std::sync::Arc<Self>, flush_points: u64) -> crate::sharded::StripeWriter {
        crate::sharded::StripeWriter::new(std::sync::Arc::clone(self), flush_points)
    }

    /// Ingest a line-protocol line.
    pub fn write_line(&self, line: &str) -> Result<(), crate::line::LineError> {
        let point = crate::line::parse(line)?;
        self.write(&point);
        Ok(())
    }

    /// Total points ingested (including later-retained ones).
    pub fn points_ingested(&self) -> u64 {
        self.ingested.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of distinct series in a measurement.
    pub fn series_count(&self, measurement: &str) -> usize {
        self.inner.read().get(measurement).map_or(0, |m| m.len())
    }

    /// Force-seal every active run into compressed chunks (retention
    /// horizon flushes, snapshot sizing, benchmarks). Returns samples
    /// sealed. Steady-state sealing happens incrementally at merge time
    /// once a run crosses the threshold; this drains the tails too.
    pub fn seal(&self) -> u64 {
        // lock-ok: cold control-plane compaction — draining tails into
        // compressed chunks holds the store lock by design; never on the
        // per-point ingest path.
        let mut inner = self.inner.write();
        let mut sealed = 0u64;
        for series_map in inner.values_mut() {
            for series in series_map.values_mut() {
                for fs in series.fields.values_mut() {
                    sealed += seal::seal_run(&mut fs.active, &mut fs.sealed, true);
                }
            }
        }
        sealed
    }

    /// Storage accounting across both shard phases.
    pub fn storage_stats(&self) -> StorageStats {
        let inner = self.inner.read();
        let mut stats = StorageStats::default();
        for series_map in inner.values() {
            for series in series_map.values() {
                for fs in series.fields.values() {
                    for c in &fs.sealed {
                        stats.sealed_points += c.count() as u64;
                        stats.sealed_bytes += c.encoded_bytes() as u64;
                    }
                    stats.active_points += fs.active.len() as u64;
                }
            }
        }
        stats
    }

    /// Execute a query single-threaded; returns one [`Bucket`] per
    /// window (a single bucket for un-bucketed queries).
    pub fn query(&self, q: &Query) -> Vec<Bucket> {
        self.query_parallel(q, 1)
    }

    /// Execute a query with bounded fan-out: the scan phase partitions
    /// matching series (in sorted-key order) across up to `workers`
    /// threads, the aggregate phase partitions buckets. Results are
    /// identical to [`TsDb::query`] for every worker count — partials
    /// concatenate in the same deterministic series order the
    /// single-threaded scan uses.
    pub fn query_parallel(&self, q: &Query, workers: usize) -> Vec<Bucket> {
        if q.end_ns < q.start_ns {
            // Inverted range: no window can match; the detector keeps running.
            return Vec::new();
        }
        let bucket_ns = q.bucket_width();
        let (workers, mut per_bucket) = self.scan_buckets(q, workers);
        let n_buckets = per_bucket.len();
        let aggs: Vec<Option<Aggregate>> = if workers <= 1 || n_buckets <= 1 {
            per_bucket.iter_mut().map(|v| Aggregate::compute(v)).collect()
        } else {
            let stride = n_buckets.div_ceil(workers);
            std::thread::scope(|s| {
                let handles: Vec<_> = per_bucket
                    .chunks_mut(stride)
                    .map(|slice| {
                        // Qualified form: `.spawn(` on an untyped receiver
                        // would over-resolve in the analyzer call graph.
                        std::thread::Scope::spawn(s, move || {
                            slice
                                .iter_mut()
                                .map(|v| Aggregate::compute(v))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let mut out = Vec::with_capacity(n_buckets);
                for h in handles {
                    match h.join() {
                        Ok(part) => out.extend(part),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                out
            })
        };
        aggs.into_iter()
            .enumerate()
            .map(|(i, agg)| Bucket {
                start_ns: q.start_ns.saturating_add((i as u64).saturating_mul(bucket_ns)),
                agg,
            })
            .collect()
    }

    /// Scan phase only: the raw values falling into each bucket, in the
    /// same deterministic order the aggregate paths consume them. This is
    /// the parallelisable part of a query; benchmarks use it to separate
    /// scan cost from aggregation cost.
    pub fn query_values(&self, q: &Query) -> Vec<(u64, Vec<f64>)> {
        if q.end_ns < q.start_ns {
            return Vec::new();
        }
        let bucket_ns = q.bucket_width();
        let (_, per_bucket) = self.scan_buckets(q, 1);
        per_bucket
            .into_iter()
            .enumerate()
            .map(|(i, values)| {
                (
                    q.start_ns.saturating_add((i as u64).saturating_mul(bucket_ns)),
                    values,
                )
            })
            .collect()
    }

    /// Shared scan core: gather per-bucket values across matching series,
    /// serially or fanned out over contiguous sorted-key ranges. Returns
    /// the effective worker count and the per-bucket values.
    fn scan_buckets(&self, q: &Query, workers: usize) -> (usize, Vec<Vec<f64>>) {
        let bucket_ns = q.bucket_width();
        let n_buckets = bucket_count(q.start_ns, q.end_ns, bucket_ns);
        let mut per_bucket: Vec<Vec<f64>> = vec![Vec::new(); n_buckets];
        // lock-ok: queries are control-plane reads; the scan fan-out
        // borrows series data under the read lock while dataplane writers
        // stay on their private stripes.
        let inner = self.inner.read();
        let Some(series_map) = inner.get(&q.measurement) else {
            return (1, per_bucket);
        };
        // Deterministic scan order, independent of worker count.
        let mut matching: Vec<(&String, &Series)> =
            series_map.iter().filter(|(_, s)| q.matches(s)).collect();
        matching.sort_unstable_by_key(|&(k, _)| k);
        let workers = workers.clamp(1, MAX_QUERY_WORKERS).min(matching.len().max(1));
        if workers <= 1 {
            for (_, series) in &matching {
                scan_series(series, q, bucket_ns, &mut per_bucket);
            }
            return (1, per_bucket);
        }
        let stride = matching.len().div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = matching
                .chunks(stride)
                .map(|range| {
                    // Qualified form: `.spawn(` on an untyped receiver
                    // would over-resolve in the analyzer call graph.
                    std::thread::Scope::spawn(s, move || {
                        let mut part: Vec<Vec<f64>> = vec![Vec::new(); n_buckets];
                        for (_, series) in range {
                            scan_series(series, q, bucket_ns, &mut part);
                        }
                        part
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(part) => {
                        for (dst, src) in per_bucket.iter_mut().zip(part) {
                            if dst.is_empty() {
                                *dst = src;
                            } else {
                                dst.extend(src);
                            }
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        (workers, per_bucket)
    }

    /// Stable dump of all data for snapshot serialization (sorted for
    /// deterministic images). Sealed chunks are decoded for the image —
    /// the snapshot format stays raw samples.
    #[allow(clippy::type_complexity)]
    pub(crate) fn dump_for_snapshot(
        &self,
    ) -> Vec<(
        String,
        Vec<(Vec<(String, String)>, Vec<(String, Vec<(u64, f64)>)>)>,
    )> {
        // lock-ok: snapshot dump is control-plane; copies out under the
        // read lock by design.
        let inner = self.inner.read();
        let mut measurements: Vec<&String> = inner.keys().collect();
        measurements.sort_unstable();
        measurements
            .into_iter()
            .filter_map(|m| {
                let series_map = inner.get(m)?;
                let mut keys: Vec<&String> = series_map.keys().collect();
                keys.sort_unstable();
                let series = keys
                    .into_iter()
                    .filter_map(|k| {
                        let s = series_map.get(k)?;
                        let mut fields: Vec<(String, Vec<(u64, f64)>)> = s
                            .fields
                            .iter()
                            .map(|(name, fs)| {
                                let mut run = Vec::with_capacity(fs.len() as usize);
                                for c in &fs.sealed {
                                    c.decompress_into(&mut run);
                                }
                                run.extend_from_slice(&fs.active);
                                (name.clone(), run)
                            })
                            .collect();
                        fields.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                        Some((s.tags.clone(), fields))
                    })
                    .collect();
                Some((m.clone(), series))
            })
            .collect()
    }

    /// Distinct values of tag `key` across a measurement's series, sorted —
    /// what a dashboard uses to populate its "city" / "ASN" selectors.
    pub fn tag_values(&self, measurement: &str, key: &str) -> Vec<String> {
        // lock-ok: dashboard selector query, control-plane.
        let inner = self.inner.read();
        let Some(series_map) = inner.get(measurement) else {
            return Vec::new();
        };
        let mut values: Vec<String> = series_map
            .values()
            .filter_map(|s| {
                s.tags
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
            })
            .collect();
        values.sort_unstable();
        values.dedup();
        values
    }

    /// Drop samples older than `keep_ns` relative to `now_ns`; empty series
    /// are removed. Wholly-expired sealed chunks drop without decoding;
    /// the chunk straddling the cutoff is rewritten. Returns how many
    /// samples were dropped.
    pub fn enforce_retention(&self, now_ns: u64, keep_ns: u64) -> u64 {
        let cutoff = now_ns.saturating_sub(keep_ns);
        let mut dropped = 0u64;
        // lock-ok: cold retention maintenance — chunk rewrites hold the
        // store lock by design; never on the per-point ingest path.
        let mut inner = self.inner.write();
        for series_map in inner.values_mut() {
            for series in series_map.values_mut() {
                for fs in series.fields.values_mut() {
                    dropped += seal::retain_chunks(&mut fs.sealed, cutoff);
                    let keep_from = fs.active.partition_point(|&(t, _)| t < cutoff);
                    dropped += keep_from as u64;
                    fs.active.drain(..keep_from);
                }
                series
                    .fields
                    .retain(|_, fs| !(fs.sealed.is_empty() && fs.active.is_empty()));
            }
            series_map.retain(|_, s| !s.fields.is_empty());
        }
        dropped
    }

    /// Retention-driven downsample **rewrite**: replace sealed chunks of
    /// `(measurement, field)` whose samples all predate `before_ns` with
    /// mean-per-`bucket_ns`-window chunks at coarser resolution, in
    /// place (same series, tags preserved). Returns total
    /// `(samples_before, samples_after)` across rewritten chunks.
    pub fn downsample_sealed(
        &self,
        measurement: &str,
        field: &str,
        bucket_ns: u64,
        before_ns: u64,
    ) -> (u64, u64) {
        // lock-ok: cold retention-driven rewrite — re-chunking holds the
        // store lock by design; never on the per-point ingest path.
        let mut inner = self.inner.write();
        let Some(series_map) = inner.get_mut(measurement) else {
            return (0, 0);
        };
        let (mut before, mut after) = (0u64, 0u64);
        for series in series_map.values_mut() {
            if let Some(fs) = series.fields.get_mut(field) {
                let (b, a) = seal::downsample_chunks(&mut fs.sealed, bucket_ns, before_ns);
                before += b;
                after += a;
            }
        }
        (before, after)
    }

    /// Downsample: write `mean` of each `bucket_ns` window of
    /// `(measurement, field)` into `target_measurement` (tags preserved),
    /// over `[start_ns, end_ns)`. Returns points written.
    #[allow(clippy::disallowed_methods)] // sanctioned: retention maintenance, control-plane
    pub fn downsample(
        &self,
        measurement: &str,
        field: &str,
        target_measurement: &str,
        bucket_ns: u64,
        start_ns: u64,
        end_ns: u64,
    ) -> usize {
        // A zero bucket width is meaningless; treat it as the full range
        // rather than aborting mid-pipeline.
        let bucket_ns = bucket_ns.max(1);
        // Collect first (cannot hold the read lock while writing).
        let mut out: Vec<Point> = Vec::new();
        {
            // lock-ok: retention downsampling is control-plane maintenance;
            // aggregates under the read lock by design.
            let inner = self.inner.read();
            let Some(series_map) = inner.get(measurement) else {
                return 0;
            };
            for series in series_map.values() {
                let Some(fs) = series.fields.get(field) else {
                    continue;
                };
                let n_buckets = bucket_count(start_ns, end_ns, bucket_ns);
                let mut sums = vec![(0.0f64, 0usize); n_buckets];
                fs.for_each_in_range(start_ns, end_ns, &mut |t, v| {
                    // panic-ok: bucket_ns is clamped to at least 1 above
                    let b = (t.saturating_sub(start_ns) / bucket_ns) as usize;
                    if let Some((sum, count)) = sums.get_mut(b) {
                        *sum += v;
                        *count = count.saturating_add(1);
                    }
                });
                for (i, (sum, count)) in sums.into_iter().enumerate() {
                    if count > 0 {
                        out.push(Point::new(
                            target_measurement,
                            series.tags.clone(),
                            // panic-ok: f64 division never panics (flagged conservatively)
                            vec![(field.to_string(), sum / count as f64)],
                            start_ns.saturating_add((i as u64).saturating_mul(bucket_ns)),
                        ));
                    }
                }
            }
        }
        let n = out.len();
        for p in &out {
            self.write(p);
        }
        n
    }
}

/// Seal full chunks off an active run that crossed the threshold.
fn maybe_seal(fs: &mut FieldStore) {
    if fs.active.len() >= seal::SEAL_THRESHOLD {
        seal::seal_run(&mut fs.active, &mut fs.sealed, false);
    }
}

/// Scan one series' field into per-bucket value vectors.
fn scan_series(series: &Series, q: &Query, bucket_ns: u64, per_bucket: &mut [Vec<f64>]) {
    let Some(fs) = series.fields.get(&q.field) else {
        return;
    };
    fs.for_each_in_range(q.start_ns, q.end_ns, &mut |t, v| {
        // panic-ok: bucket_ns is clamped to at least 1 by bucket_width
        let b = (t.saturating_sub(q.start_ns) / bucket_ns) as usize;
        if let Some(bucket) = per_bucket.get_mut(b) {
            bucket.push(v);
        }
    });
}

impl Default for TsDb {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_count(start: u64, end: u64, width: u64) -> usize {
    if end <= start {
        return 0;
    }
    ((end - start).div_ceil(width)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(city: &str, ms: f64, ts: u64) -> Point {
        Point::new(
            "latency",
            vec![("city".into(), city.into())],
            vec![("total_ms".into(), ms)],
            ts,
        )
    }

    #[test]
    fn write_and_whole_range_query() {
        let db = TsDb::new();
        db.write(&point("akl", 130.0, 10));
        db.write(&point("akl", 132.0, 20));
        db.write(&point("lax", 60.0, 15));
        let buckets = db.query(&Query::range("latency", "total_ms", 0, 100));
        assert_eq!(buckets.len(), 1);
        let agg = buckets[0].agg.unwrap();
        assert_eq!(agg.count, 3);
        assert_eq!(agg.min, 60.0);
        assert_eq!(agg.max, 132.0);
        assert_eq!(db.points_ingested(), 3);
        assert_eq!(db.series_count("latency"), 2);
    }

    #[test]
    fn tag_filter_restricts_series() {
        let db = TsDb::new();
        db.write(&point("akl", 130.0, 10));
        db.write(&point("lax", 60.0, 15));
        let buckets = db.query(
            &Query::range("latency", "total_ms", 0, 100).with_tag("city", "akl"),
        );
        let agg = buckets[0].agg.unwrap();
        assert_eq!(agg.count, 1);
        assert_eq!(agg.mean, 130.0);
    }

    #[test]
    fn time_range_is_half_open() {
        let db = TsDb::new();
        db.write(&point("akl", 1.0, 10));
        db.write(&point("akl", 2.0, 20));
        let buckets = db.query(&Query::range("latency", "total_ms", 10, 20));
        assert_eq!(buckets[0].agg.unwrap().count, 1, "end is exclusive");
    }

    #[test]
    fn bucketed_query_splits_windows() {
        let db = TsDb::new();
        for i in 0..10u64 {
            db.write(&point("akl", i as f64, i * 100));
        }
        let buckets = db.query(&Query::range("latency", "total_ms", 0, 1000).with_buckets(500));
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].start_ns, 0);
        assert_eq!(buckets[1].start_ns, 500);
        assert_eq!(buckets[0].agg.unwrap().count, 5);
        assert_eq!(buckets[1].agg.unwrap().count, 5);
        assert_eq!(buckets[0].agg.unwrap().mean, 2.0);
        assert_eq!(buckets[1].agg.unwrap().mean, 7.0);
    }

    #[test]
    fn empty_buckets_are_reported() {
        let db = TsDb::new();
        db.write(&point("akl", 1.0, 50));
        let buckets = db.query(&Query::range("latency", "total_ms", 0, 300).with_buckets(100));
        assert_eq!(buckets.len(), 3);
        assert!(buckets[0].agg.is_some());
        assert!(buckets[1].agg.is_none());
        assert!(buckets[2].agg.is_none());
    }

    #[test]
    fn unknown_measurement_returns_empty_buckets() {
        let db = TsDb::new();
        let buckets = db.query(&Query::range("nope", "f", 0, 200).with_buckets(100));
        assert_eq!(buckets.len(), 2);
        assert!(buckets.iter().all(|b| b.agg.is_none()));
    }

    #[test]
    fn out_of_order_ingest_is_sorted() {
        let db = TsDb::new();
        db.write(&point("akl", 3.0, 300));
        db.write(&point("akl", 1.0, 100));
        db.write(&point("akl", 2.0, 200));
        let buckets = db.query(&Query::range("latency", "total_ms", 0, 400).with_buckets(100));
        let means: Vec<Option<f64>> = buckets.iter().map(|b| b.agg.map(|a| a.mean)).collect();
        assert_eq!(means, vec![None, Some(1.0), Some(2.0), Some(3.0)]);
    }

    #[test]
    fn tag_values_lists_distinct_sorted() {
        let db = TsDb::new();
        db.write(&point("lax", 1.0, 1));
        db.write(&point("akl", 1.0, 2));
        db.write(&point("akl", 2.0, 3));
        assert_eq!(db.tag_values("latency", "city"), vec!["akl", "lax"]);
        assert!(db.tag_values("latency", "nope").is_empty());
        assert!(db.tag_values("nope", "city").is_empty());
    }

    #[test]
    fn retention_drops_old_samples() {
        let db = TsDb::new();
        for i in 0..10u64 {
            db.write(&point("akl", i as f64, i * 1000));
        }
        let dropped = db.enforce_retention(10_000, 5_000);
        assert_eq!(dropped, 5); // samples at 0..4999 dropped
        let agg = db.query(&Query::range("latency", "total_ms", 0, 100_000))[0]
            .agg
            .unwrap();
        assert_eq!(agg.count, 5);
        assert_eq!(agg.min, 5.0);
    }

    #[test]
    fn retention_removes_empty_series() {
        let db = TsDb::new();
        db.write(&point("akl", 1.0, 10));
        db.enforce_retention(1_000_000, 0);
        assert_eq!(db.series_count("latency"), 0);
    }

    #[test]
    fn retention_spans_sealed_chunks() {
        let db = TsDb::new();
        let n = crate::seal::SEAL_THRESHOLD as u64 + 100;
        for i in 0..n {
            db.write(&point("akl", i as f64, i * 1000));
        }
        let stats = db.storage_stats();
        assert!(stats.sealed_points > 0, "threshold crossing must seal");
        // Keep only the newest 100 samples' worth of time.
        let dropped = db.enforce_retention(n * 1000, 100 * 1000);
        assert_eq!(dropped, n - 100);
        let agg = db.query(&Query::range("latency", "total_ms", 0, u64::MAX))[0]
            .agg
            .unwrap();
        assert_eq!(agg.count, 100);
        assert_eq!(agg.min, (n - 100) as f64);
    }

    #[test]
    fn line_protocol_ingest() {
        let db = TsDb::new();
        db.write_line("latency,city=akl total_ms=130 100").unwrap();
        assert!(db.write_line("garbage").is_err());
        let agg = db.query(&Query::range("latency", "total_ms", 0, 200))[0]
            .agg
            .unwrap();
        assert_eq!(agg.count, 1);
    }

    #[test]
    fn downsample_writes_means() {
        let db = TsDb::new();
        for i in 0..100u64 {
            db.write(&point("akl", i as f64, i * 10));
        }
        let n = db.downsample("latency", "total_ms", "latency_1us", 500, 0, 1000);
        assert_eq!(n, 2);
        let buckets = db.query(&Query::range("latency_1us", "total_ms", 0, 1000).with_buckets(500));
        assert_eq!(buckets[0].agg.unwrap().count, 1);
        assert_eq!(buckets[0].agg.unwrap().mean, 24.5); // mean of 0..49
        assert_eq!(buckets[1].agg.unwrap().mean, 74.5); // mean of 50..99
    }

    #[test]
    fn concurrent_ingest() {
        let db = std::sync::Arc::new(TsDb::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let db = std::sync::Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    db.write(&point(if t % 2 == 0 { "akl" } else { "lax" }, 1.0, i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.points_ingested(), 4000);
        let agg = db.query(&Query::range("latency", "total_ms", 0, 2000))[0]
            .agg
            .unwrap();
        assert_eq!(agg.count, 4000);
    }

    #[test]
    fn multiple_fields_per_point() {
        let db = TsDb::new();
        db.write(&Point::new(
            "latency",
            vec![("city".into(), "akl".into())],
            vec![("int_ms".into(), 1.0), ("ext_ms".into(), 130.0)],
            5,
        ));
        let int_agg = db.query(&Query::range("latency", "int_ms", 0, 10))[0].agg.unwrap();
        let ext_agg = db.query(&Query::range("latency", "ext_ms", 0, 10))[0].agg.unwrap();
        assert_eq!(int_agg.mean, 1.0);
        assert_eq!(ext_agg.mean, 130.0);
    }

    #[test]
    fn sealing_is_transparent_to_queries() {
        let db = TsDb::new();
        let n = crate::seal::SEAL_THRESHOLD as u64 * 2 + 17;
        for i in 0..n {
            db.write(&point("akl", (i % 97) as f64, i * 1000));
        }
        let stats = db.storage_stats();
        assert!(stats.sealed_points >= crate::seal::SEAL_THRESHOLD as u64);
        assert_eq!(stats.sealed_points + stats.active_points, n);
        assert!(stats.sealed_bytes > 0);
        // Compression must beat raw 16 bytes/sample on a regular cadence.
        assert!(
            stats.sealed_bytes < stats.sealed_points * 16,
            "sealed {} bytes for {} points",
            stats.sealed_bytes,
            stats.sealed_points
        );
        let buckets = db.query(&Query::range("latency", "total_ms", 0, n * 1000));
        assert_eq!(buckets[0].agg.unwrap().count, n as usize);
        // Forced seal drains the tails and changes nothing observable.
        db.seal();
        let stats = db.storage_stats();
        assert_eq!(stats.active_points, 0);
        assert_eq!(stats.sealed_points, n);
        let buckets = db.query(&Query::range("latency", "total_ms", 0, n * 1000));
        assert_eq!(buckets[0].agg.unwrap().count, n as usize);
    }

    #[test]
    fn parallel_query_matches_single_threaded() {
        let db = TsDb::new();
        for i in 0..5000u64 {
            let city = ["akl", "lax", "syd", "nrt", "fra"][(i % 5) as usize];
            db.write(&point(city, (i % 211) as f64 * 0.5, i * 337));
        }
        db.seal();
        let q = Query::range("latency", "total_ms", 0, 5000 * 337).with_buckets(100_000);
        let reference = db.query(&q);
        for workers in [2, 3, 4, 16, 64] {
            assert_eq!(db.query_parallel(&q, workers), reference, "workers={workers}");
        }
    }

    #[test]
    fn query_values_matches_aggregate_counts() {
        let db = TsDb::new();
        for i in 0..100u64 {
            db.write(&point("akl", i as f64, i * 10));
        }
        let q = Query::range("latency", "total_ms", 0, 1000).with_buckets(250);
        let values = db.query_values(&q);
        let buckets = db.query(&q);
        assert_eq!(values.len(), buckets.len());
        for ((start, vals), bucket) in values.iter().zip(&buckets) {
            assert_eq!(*start, bucket.start_ns);
            assert_eq!(vals.len(), bucket.agg.map_or(0, |a| a.count));
        }
    }

    #[test]
    fn downsample_sealed_rewrites_in_place() {
        let db = TsDb::new();
        let n = crate::seal::SEAL_THRESHOLD as u64;
        for i in 0..n {
            db.write(&point("akl", i as f64, i * 1000));
        }
        db.seal();
        let horizon = n * 1000;
        let (before, after) = db.downsample_sealed("latency", "total_ms", 100_000, horizon);
        assert_eq!(before, n);
        assert!(after < before);
        // The rewritten series still answers queries, with fewer samples.
        let agg = db.query(&Query::range("latency", "total_ms", 0, horizon))[0]
            .agg
            .unwrap();
        assert_eq!(agg.count as u64, after);
        assert_eq!(db.series_count("latency"), 1);
    }
}
