//! Snapshot persistence.
//!
//! InfluxDB's role in Ruru is *"long-term storage"* — the store must
//! survive process restarts. [`TsDb::to_snapshot`] serializes the whole
//! database to a compact binary image; [`TsDb::from_snapshot`] restores it.
//! The format is self-describing and versioned.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "RTSDB1"
//! u32 measurement_count
//!   per measurement: str name, u32 series_count
//!     per series: u32 tag_count, (str key, str value)*,
//!                 u32 field_count,
//!       per field: str name, u64 sample_count, (u64 ts, f64 value)*
//! ```

use crate::point::Point;
use crate::store::TsDb;

const MAGIC: &[u8; 6] = b"RTSDB1";

/// Errors from snapshot decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Wrong magic or truncated image.
    Corrupt(&'static str),
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let s = self
            .data
            .get(self.at..)
            .and_then(|rest| rest.get(..n))
            .ok_or(SnapshotError::Corrupt("truncated"))?;
        self.at = self.at.saturating_add(n);
        Ok(s)
    }
    fn chunk<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        match self.take(N)?.first_chunk::<N>() {
            Some(c) => Ok(*c),
            None => Err(SnapshotError::Corrupt("truncated")),
        }
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.chunk()?))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.chunk()?))
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.chunk()?))
    }
    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        if len > 1 << 24 {
            return Err(SnapshotError::Corrupt("absurd string length"));
        }
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapshotError::Corrupt("bad utf8"))
    }
}

impl TsDb {
    /// Serialize the whole database to a binary snapshot.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        let dump = self.dump_for_snapshot();
        out.extend_from_slice(&(dump.len() as u32).to_le_bytes());
        for (measurement, series_list) in dump {
            put_str(&mut out, &measurement);
            out.extend_from_slice(&(series_list.len() as u32).to_le_bytes());
            for (tags, fields) in series_list {
                out.extend_from_slice(&(tags.len() as u32).to_le_bytes());
                for (k, v) in &tags {
                    put_str(&mut out, k);
                    put_str(&mut out, v);
                }
                out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
                for (name, samples) in fields {
                    put_str(&mut out, &name);
                    out.extend_from_slice(&(samples.len() as u64).to_le_bytes());
                    for (ts, v) in samples {
                        out.extend_from_slice(&ts.to_le_bytes());
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Restore a database from a snapshot image.
    pub fn from_snapshot(data: &[u8]) -> Result<TsDb, SnapshotError> {
        let mut c = Cursor { data, at: 0 };
        if c.take(6)? != MAGIC {
            return Err(SnapshotError::Corrupt("bad magic"));
        }
        let db = TsDb::new();
        let n_measurements = c.u32()?;
        for _ in 0..n_measurements {
            let measurement = c.string()?;
            let n_series = c.u32()?;
            for _ in 0..n_series {
                let n_tags = c.u32()?;
                let mut tags = Vec::with_capacity(n_tags as usize);
                for _ in 0..n_tags {
                    let k = c.string()?;
                    let v = c.string()?;
                    tags.push((k, v));
                }
                let n_fields = c.u32()?;
                for _ in 0..n_fields {
                    let field = c.string()?;
                    let n_samples = c.u64()?;
                    if n_samples > 1 << 40 {
                        return Err(SnapshotError::Corrupt("absurd sample count"));
                    }
                    for _ in 0..n_samples {
                        let ts = c.u64()?;
                        let v = c.f64()?;
                        db.write(&Point::new(
                            measurement.clone(),
                            tags.clone(),
                            vec![(field.clone(), v)],
                            ts,
                        ));
                    }
                }
            }
        }
        if c.at != data.len() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Query;

    fn seeded() -> TsDb {
        let db = TsDb::new();
        for i in 0..100u64 {
            db.write(&Point::new(
                "latency",
                vec![("city".into(), if i % 2 == 0 { "akl" } else { "lax" }.into())],
                vec![("total_ms".into(), 100.0 + i as f64), ("int_ms".into(), 1.0)],
                i * 1000,
            ));
        }
        db.write(&Point::new("other", vec![], vec![("x".into(), 5.0)], 7));
        db
    }

    #[test]
    fn snapshot_roundtrip_preserves_queries() {
        let db = seeded();
        let image = db.to_snapshot();
        let restored = TsDb::from_snapshot(&image).unwrap();
        for (measurement, field) in [("latency", "total_ms"), ("latency", "int_ms"), ("other", "x")] {
            let q = Query::range(measurement, field, 0, u64::MAX);
            let a = db.query(&q)[0].agg;
            let b = restored.query(&q)[0].agg;
            assert_eq!(a, b, "{measurement}/{field}");
        }
        // Tag-filtered query too.
        let q = Query::range("latency", "total_ms", 0, u64::MAX).with_tag("city", "akl");
        assert_eq!(db.query(&q)[0].agg, restored.query(&q)[0].agg);
        assert_eq!(restored.series_count("latency"), 2);
    }

    #[test]
    fn empty_db_roundtrips() {
        let db = TsDb::new();
        let restored = TsDb::from_snapshot(&db.to_snapshot()).unwrap();
        assert_eq!(restored.series_count("anything"), 0);
    }

    #[test]
    fn corrupt_snapshots_rejected() {
        let db = seeded();
        let image = db.to_snapshot();
        assert!(TsDb::from_snapshot(&image[..image.len() - 3]).is_err());
        assert!(TsDb::from_snapshot(&[]).is_err());
        let mut bad = image.clone();
        bad[0] = b'X';
        assert_eq!(
            TsDb::from_snapshot(&bad).err(),
            Some(SnapshotError::Corrupt("bad magic"))
        );
        let mut trailing = image.clone();
        trailing.push(1);
        assert_eq!(
            TsDb::from_snapshot(&trailing).err(),
            Some(SnapshotError::Corrupt("trailing bytes"))
        );
    }
}
