//! Gorilla-style chunk compression for sealed series runs (DESIGN.md §16).
//!
//! A sealed [`Chunk`] holds one sorted sample run in two streams:
//!
//! * **Timestamps** — delta-of-delta coded. The first timestamp is a
//!   LEB128 varint, the first delta a varint, every later sample a
//!   zigzag varint of `delta[i] - delta[i-1]`. Monitoring cadences are
//!   near-constant, so the common delta-of-delta is `0` and costs one
//!   byte.
//! * **Values** — XOR coded at bit granularity. Each value is XORed with
//!   its predecessor; a zero XOR costs one bit, a XOR whose meaningful
//!   bits fit the previous (leading, trailing)-zero window costs
//!   `2 + len(window)` bits, and a window change re-states 6 bits of
//!   leading-zero count and 6 bits of window length.
//!
//! Decoding is cursor-based: [`Chunk::iter`] walks the compressed
//! streams in place and yields `(timestamp, value)` pairs without
//! materialising an intermediate `Vec`. Value bits round-trip exactly —
//! NaN payloads, signed zeros and infinities included — which the
//! `prop_compress` differential suite pins against the uncompressed
//! store.

/// One stored sample: timestamp and value, identical to the store's
/// in-memory representation.
pub(crate) type Sample = (u64, f64);

/// An immutable compressed run of one series field. Time-ordered within
/// itself; a field's sealed chunks are time-ordered among each other by
/// construction (they are cut from the front of the sorted active run).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Chunk {
    count: u32,
    start_ns: u64,
    end_ns: u64,
    ts: Box<[u8]>,
    vals: Box<[u8]>,
}

impl Chunk {
    /// Compress one sorted run. Returns `None` for an empty run — an
    /// empty chunk has no first timestamp and is never stored.
    pub(crate) fn compress(samples: &[Sample]) -> Option<Chunk> {
        let (&(first_ts, first_v), rest) = samples.split_first()?;
        let &(last_ts, _) = samples.last()?;

        let mut ts = Vec::with_capacity(samples.len());
        put_uvarint(&mut ts, first_ts);
        let mut vals = BitWriter::with_capacity(samples.len());
        vals.push_bits(first_v.to_bits(), 64);

        let mut prev_ts = first_ts;
        let mut prev_delta: Option<u64> = None;
        let mut prev_bits = first_v.to_bits();
        // (leading, trailing) zero window; 64+64 marks "no window yet" so
        // the first non-zero XOR always re-states one.
        let mut window = (64u32, 64u32);

        for &(t, v) in rest {
            let delta = t.saturating_sub(prev_ts);
            match prev_delta {
                None => put_uvarint(&mut ts, delta),
                Some(pd) => put_ivarint(&mut ts, delta as i128 - pd as i128),
            }
            prev_delta = Some(delta);
            prev_ts = t;

            let bits = v.to_bits();
            let xor = prev_bits ^ bits;
            prev_bits = bits;
            if xor == 0 {
                vals.push_bit(false);
                continue;
            }
            vals.push_bit(true);
            let lead = xor.leading_zeros();
            let trail = xor.trailing_zeros();
            let (wlead, wtrail) = window;
            if lead >= wlead && trail >= wtrail {
                // Meaningful bits fit the previous window: reuse it.
                vals.push_bit(false);
                vals.push_bits(xor >> wtrail, 64 - wlead - wtrail);
            } else {
                vals.push_bit(true);
                let mlen = 64 - lead - trail;
                vals.push_bits(u64::from(lead), 6);
                vals.push_bits(u64::from(mlen - 1), 6);
                vals.push_bits(xor >> trail, mlen);
                window = (lead, trail);
            }
        }

        Some(Chunk {
            count: samples.len() as u32,
            start_ns: first_ts,
            end_ns: last_ts,
            ts: ts.into_boxed_slice(),
            vals: vals.into_bytes().into_boxed_slice(),
        })
    }

    /// Number of samples in the chunk.
    pub(crate) fn count(&self) -> usize {
        self.count as usize
    }

    /// Timestamp of the first sample.
    pub(crate) fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Timestamp of the last sample.
    pub(crate) fn end_ns(&self) -> u64 {
        self.end_ns
    }

    /// Compressed payload size (both streams), excluding the fixed
    /// header fields.
    pub(crate) fn encoded_bytes(&self) -> usize {
        self.ts.len() + self.vals.len()
    }

    /// In-place decoding cursor over the compressed streams.
    pub(crate) fn iter(&self) -> ChunkIter<'_> {
        ChunkIter {
            ts: VarintReader { bytes: &self.ts, pos: 0 },
            vals: BitReader { bytes: &self.vals, bit: 0 },
            remaining: self.count,
            prev_ts: 0,
            prev_delta: None,
            prev_bits: 0,
            window: (64, 64),
            first: true,
        }
    }

    /// Decode the whole chunk, appending to `out` — used by the cold
    /// seal/retention rewrite paths, never by queries.
    pub(crate) fn decompress_into(&self, out: &mut Vec<Sample>) {
        out.reserve(self.count());
        out.extend(self.iter());
    }
}

/// Streaming decoder; yields exactly [`Chunk::count`] samples. The
/// streams are produced by [`Chunk::compress`] in the same process, so a
/// short read is unreachable; the cursor still stops cleanly (yielding
/// `None`) rather than panicking if it ever happens.
pub(crate) struct ChunkIter<'a> {
    ts: VarintReader<'a>,
    vals: BitReader<'a>,
    remaining: u32,
    prev_ts: u64,
    prev_delta: Option<u64>,
    prev_bits: u64,
    window: (u32, u32),
    first: bool,
}

impl Iterator for ChunkIter<'_> {
    type Item = Sample;

    fn next(&mut self) -> Option<Sample> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;

        let t = if self.first {
            self.prev_ts = self.ts.read_uvarint()?;
            self.prev_ts
        } else {
            let delta = match self.prev_delta {
                None => self.ts.read_uvarint()?,
                Some(pd) => (pd as i128 + self.ts.read_ivarint()?).max(0) as u64,
            };
            self.prev_delta = Some(delta);
            self.prev_ts = self.prev_ts.saturating_add(delta);
            self.prev_ts
        };

        let bits = if self.first {
            self.first = false;
            self.prev_bits = self.vals.read_bits(64)?;
            self.prev_bits
        } else if !self.vals.read_bit()? {
            self.prev_bits // zero XOR: value repeats
        } else {
            if self.vals.read_bit()? {
                let lead = self.vals.read_bits(6)? as u32;
                let mlen = self.vals.read_bits(6)? as u32 + 1;
                self.window = (lead, 64 - lead - mlen);
            }
            let (wlead, wtrail) = self.window;
            let meaningful = self.vals.read_bits(64 - wlead - wtrail)?;
            self.prev_bits ^= meaningful << wtrail;
            self.prev_bits
        };
        Some((t, f64::from_bits(bits)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

// ---------------------------------------------------------------------------
// Varint streams (timestamps)

fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Zigzag + LEB128 over `i128` — a delta-of-delta of two `u64` deltas
/// needs the wider type at the extremes.
fn put_ivarint(out: &mut Vec<u8>, v: i128) {
    let mut z = ((v << 1) ^ (v >> 127)) as u128;
    while z >= 0x80 {
        out.push((z as u8) | 0x80);
        z >>= 7;
    }
    out.push(z as u8);
}

struct VarintReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl VarintReader<'_> {
    fn read_uvarint(&mut self) -> Option<u64> {
        Some(self.read_raw()? as u64)
    }

    fn read_ivarint(&mut self) -> Option<i128> {
        let z = self.read_raw()?;
        Some(((z >> 1) as i128) ^ -((z & 1) as i128))
    }

    fn read_raw(&mut self) -> Option<u128> {
        let mut v: u128 = 0;
        let mut shift = 0u32;
        loop {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            v |= u128::from(b & 0x7f) << shift;
            if b < 0x80 {
                return Some(v);
            }
            shift += 7;
            if shift >= 128 {
                return None;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bit streams (values), MSB-first within each byte

struct BitWriter {
    out: Vec<u8>,
    cur: u8,
    used: u32,
}

impl BitWriter {
    fn with_capacity(samples: usize) -> BitWriter {
        BitWriter {
            out: Vec::with_capacity(samples * 2),
            cur: 0,
            used: 0,
        }
    }

    fn push_bit(&mut self, bit: bool) {
        self.cur = (self.cur << 1) | u8::from(bit);
        self.used += 1;
        if self.used == 8 {
            self.out.push(self.cur);
            self.cur = 0;
            self.used = 0;
        }
    }

    /// Push the low `n` bits of `value`, MSB first. `n` may be 64.
    fn push_bits(&mut self, value: u64, n: u32) {
        for i in (0..n).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    fn into_bytes(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.out.push(self.cur << (8 - self.used));
        }
        self.out
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    bit: usize,
}

impl BitReader<'_> {
    fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.bytes.get(self.bit / 8)?;
        let bit = (byte >> (7 - (self.bit % 8))) & 1 == 1;
        self.bit += 1;
        Some(bit)
    }

    fn read_bits(&mut self, n: u32) -> Option<u64> {
        let mut v: u64 = 0;
        for _ in 0..n {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(samples: &[Sample]) {
        let chunk = match Chunk::compress(samples) {
            Some(c) => c,
            None => {
                assert!(samples.is_empty());
                return;
            }
        };
        assert_eq!(chunk.count(), samples.len());
        let decoded: Vec<Sample> = chunk.iter().collect();
        assert_eq!(decoded.len(), samples.len());
        for (i, (&(t0, v0), &(t1, v1))) in samples.iter().zip(&decoded).enumerate() {
            assert_eq!(t0, t1, "timestamp {i}");
            assert_eq!(v0.to_bits(), v1.to_bits(), "value bits {i}");
        }
    }

    #[test]
    fn empty_run_has_no_chunk() {
        assert!(Chunk::compress(&[]).is_none());
    }

    #[test]
    fn single_sample_roundtrip() {
        roundtrip(&[(123_456_789, 42.5)]);
        roundtrip(&[(0, f64::NAN)]);
        roundtrip(&[(u64::MAX, -0.0)]);
    }

    #[test]
    fn regular_cadence_roundtrip() {
        let samples: Vec<Sample> = (0..1000u64)
            .map(|i| (i * 1_000_000_000, 130.0 + (i % 7) as f64))
            .collect();
        roundtrip(&samples);
        // The whole point: a regular cadence with small value jitter must
        // compress far below the 16 raw bytes per sample.
        let chunk = Chunk::compress(&samples).unwrap_or_else(|| unreachable!());
        let bpp = chunk.encoded_bytes() as f64 / samples.len() as f64;
        assert!(bpp < 4.0, "bytes/point {bpp:.2} not < 4.0");
    }

    #[test]
    fn constant_value_costs_one_bit() {
        let samples: Vec<Sample> = (0..8000u64).map(|i| (i * 1000, 1.5)).collect();
        let chunk = Chunk::compress(&samples).unwrap_or_else(|| unreachable!());
        roundtrip(&samples);
        // ~1 byte/pt timestamps (dod = 0) + ~1 bit/pt values.
        let bpp = chunk.encoded_bytes() as f64 / samples.len() as f64;
        assert!(bpp < 1.5, "bytes/point {bpp:.2} not < 1.5");
    }

    #[test]
    fn special_values_roundtrip_bit_exact() {
        roundtrip(&[
            (0, f64::INFINITY),
            (1, f64::NEG_INFINITY),
            (2, f64::NAN),
            (3, -f64::NAN),
            (4, 0.0),
            (5, -0.0),
            (6, f64::MIN_POSITIVE),
            (7, f64::MAX),
            (8, f64::MIN),
            (9, f64::EPSILON),
        ]);
    }

    #[test]
    fn duplicate_and_jittery_timestamps_roundtrip() {
        roundtrip(&[(10, 1.0), (10, 2.0), (10, 3.0), (11, 4.0), (100, 5.0)]);
        let samples: Vec<Sample> = (0..500u64)
            .map(|i| (i * 1000 + (i * 37) % 113, (i as f64).sin()))
            .collect();
        roundtrip(&samples);
    }

    #[test]
    fn extreme_timestamp_gaps_roundtrip() {
        roundtrip(&[(0, 1.0), (u64::MAX, 2.0)]);
        roundtrip(&[(0, 1.0), (u64::MAX - 1, 2.0), (u64::MAX, 3.0)]);
        roundtrip(&[(5, 1.0), (5, 1.0), (u64::MAX, 1.0)]);
    }

    #[test]
    fn window_change_paths_roundtrip() {
        // Force window widen/narrow transitions: alternate tiny and huge
        // mantissa changes.
        let mut samples = Vec::new();
        let mut v = 1.0f64;
        for i in 0..200u64 {
            v = if i % 3 == 0 { v * 1.0000001 } else { -v + i as f64 };
            samples.push((i * 10, v));
        }
        roundtrip(&samples);
    }

    #[test]
    fn size_hint_is_exact() {
        let samples: Vec<Sample> = (0..10u64).map(|i| (i, i as f64)).collect();
        let chunk = Chunk::compress(&samples).unwrap_or_else(|| unreachable!());
        let mut it = chunk.iter();
        assert_eq!(it.size_hint(), (10, Some(10)));
        it.next();
        assert_eq!(it.size_hint(), (9, Some(9)));
    }
}
