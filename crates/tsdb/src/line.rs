//! The InfluxDB line protocol.
//!
//! ```text
//! measurement,tag1=v1,tag2=v2 field1=1.5,field2=2 1465839830100400200
//! ```
//!
//! Commas, spaces and equals signs inside names and tag values are escaped
//! with a backslash, as InfluxDB does. Field values here are always floats
//! (the only kind Ruru writes).

use crate::point::Point;

/// Errors from parsing a protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineError {
    /// The line has too few sections (needs measurement+fields at minimum).
    MissingSection,
    /// A tag or field pair lacked an `=`.
    BadPair,
    /// A field value was not a number.
    BadNumber,
    /// The timestamp was not an integer.
    BadTimestamp,
    /// The measurement name was empty.
    EmptyMeasurement,
    /// No fields present.
    NoFields,
}

fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        if ch == ',' || ch == ' ' || ch == '=' || ch == '\\' {
            out.push('\\');
        }
        out.push(ch);
    }
}

/// Encode a point as one protocol line.
#[allow(clippy::disallowed_methods)] // sanctioned: the line protocol is text by definition
pub fn encode(p: &Point) -> String {
    let mut out = String::new();
    escape(&p.measurement, &mut out);
    for (k, v) in &p.tags {
        out.push(',');
        escape(k, &mut out);
        out.push('=');
        escape(v, &mut out);
    }
    out.push(' ');
    for (i, (k, v)) in p.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape(k, &mut out);
        out.push('=');
        out.push_str(&format!("{v}"));
    }
    out.push(' ');
    out.push_str(&p.timestamp_ns.to_string());
    out
}

/// Split `s` on unescaped occurrences of `sep`, unescaping the pieces.
fn split_unescaped(s: &str, sep: char) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            if let Some(next) = chars.next() {
                cur.push(next);
            }
        } else if ch == sep {
            parts.push(std::mem::take(&mut cur));
        } else {
            cur.push(ch);
        }
    }
    parts.push(cur);
    parts
}

/// Parse one protocol line into a [`Point`].
#[allow(clippy::disallowed_methods)] // sanctioned: the line protocol is text by definition
pub fn parse(line: &str) -> Result<Point, LineError> {
    // Section split must respect escapes but NOT unescape yet (tag/field
    // parsing needs the escapes intact). Do a manual scan.
    let mut sections: Vec<&str> = Vec::with_capacity(3);
    let bytes = line.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match b {
            // Skipping the escaped byte can land mid-way through a UTF-8
            // sequence (`\` before a multi-byte char); the checked slices
            // below turn that into a parse error instead of a panic.
            b'\\' => i = i.saturating_add(2),
            b' ' => {
                sections.push(line.get(start..i).ok_or(LineError::BadPair)?);
                start = i.saturating_add(1);
                i = i.saturating_add(1);
            }
            _ => i = i.saturating_add(1),
        }
    }
    sections.push(line.get(start..).unwrap_or(""));
    let (series_sec, fields_sec, ts_sec) = match sections.as_slice() {
        [a, b] => (*a, *b, None),
        [a, b, c] => (*a, *b, Some(*c)),
        _ => return Err(LineError::MissingSection),
    };

    // Series section: measurement,tag=v,...
    let series_parts = split_unescaped(series_sec, ',');
    let Some((measurement, tag_parts)) = series_parts.split_first() else {
        return Err(LineError::EmptyMeasurement);
    };
    let measurement = measurement.clone();
    if measurement.is_empty() {
        return Err(LineError::EmptyMeasurement);
    }
    let mut tags = Vec::new();
    for part in tag_parts {
        // `part` is already unescaped; split on the first '=' is safe only
        // if values contain no '='. To support escaped '=' we re-split the
        // raw text; for Ruru's tag values (cities, countries, ASNs) '=' does
        // not occur, so split-on-first-= of the unescaped text is correct.
        let (k, v) = part.split_once('=').ok_or(LineError::BadPair)?;
        tags.push((k.to_string(), v.to_string()));
    }

    // Fields section.
    let mut fields = Vec::new();
    for part in split_unescaped(fields_sec, ',') {
        let (k, v) = part.split_once('=').ok_or(LineError::BadPair)?;
        let v: f64 = v.parse().map_err(|_| LineError::BadNumber)?;
        fields.push((k.to_string(), v));
    }
    if fields.is_empty() {
        return Err(LineError::NoFields);
    }

    let timestamp_ns = match ts_sec {
        Some(ts) => ts.parse().map_err(|_| LineError::BadTimestamp)?,
        None => 0,
    };

    Ok(Point::new(measurement, tags, fields, timestamp_ns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_parse_roundtrip() {
        let p = Point::new(
            "latency",
            vec![
                ("src_city".into(), "Auckland".into()),
                ("dst_asn".into(), "64008".into()),
            ],
            vec![("total_ms".into(), 131.25), ("int_ms".into(), 1.2)],
            1_465_839_830_100_400_200,
        );
        let line = encode(&p);
        // Tags are emitted in sorted order; fields keep insertion order.
        assert!(line.starts_with("latency,dst_asn=64008,src_city=Auckland "), "{line}");
        assert!(line.ends_with(" 1465839830100400200"), "{line}");
        let back = parse(&line).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn escaping_roundtrip() {
        let p = Point::new(
            "my measurement",
            vec![("city".into(), "Los Angeles".into()), ("k,2".into(), "a=b".into())],
            vec![("f 1".into(), 2.0)],
            7,
        );
        let line = encode(&p);
        let back = parse(&line).unwrap();
        assert_eq!(back.measurement, "my measurement");
        assert_eq!(back.tag("city"), Some("Los Angeles"));
        assert_eq!(back.tag("k,2"), Some("a=b"));
        assert_eq!(back.field("f 1"), Some(2.0));
    }

    #[test]
    fn parse_without_timestamp_defaults_zero() {
        let p = parse("m value=1").unwrap();
        assert_eq!(p.timestamp_ns, 0);
        assert_eq!(p.field("value"), Some(1.0));
    }

    #[test]
    fn parse_without_tags() {
        let p = parse("cpu usage=0.5 123").unwrap();
        assert_eq!(p.measurement, "cpu");
        assert!(p.tags.is_empty());
        assert_eq!(p.timestamp_ns, 123);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(parse("onlymeasurement"), Err(LineError::MissingSection));
        assert_eq!(parse("m,badtag value=1 1"), Err(LineError::BadPair));
        assert_eq!(parse("m value=abc 1"), Err(LineError::BadNumber));
        assert_eq!(parse("m value=1 notanumber"), Err(LineError::BadTimestamp));
        assert_eq!(parse("m value=1 1 extra"), Err(LineError::MissingSection));
        assert_eq!(parse(",t=1 v=1 1"), Err(LineError::EmptyMeasurement));
    }

    #[test]
    fn escape_before_multibyte_char_is_rejected_not_panicking() {
        // `\` directly before a multi-byte character makes the escape scan
        // land on a non-boundary; the parser must error, not panic.
        let _ = parse("m\\\u{00e9} value=1 1");
        let _ = parse("\\\u{00e9}m,t\\\u{00e9}=x v=1");
    }

    #[test]
    fn negative_and_scientific_field_values() {
        let p = parse("m a=-1.5,b=2e3 9").unwrap();
        assert_eq!(p.field("a"), Some(-1.5));
        assert_eq!(p.field("b"), Some(2000.0));
    }
}
