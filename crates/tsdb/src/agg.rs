//! The aggregates Ruru's Grafana panels display: min, max, median, mean —
//! plus count, p95, p99 and standard deviation.

/// Aggregate statistics over a set of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Number of samples.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile, nearest-rank interpolated).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Aggregate {
    /// Compute aggregates; returns `None` for an empty set. `values` is
    /// sorted in place (callers hand over scratch buffers).
    pub fn compute(values: &mut [f64]) -> Option<Aggregate> {
        if values.is_empty() {
            return None;
        }
        values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let count = values.len();
        let sum: f64 = values.iter().sum();
        let mean = sum / count as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Some(Aggregate {
            count,
            min: values[0],
            max: values[count - 1],
            mean,
            median: percentile_sorted(values, 50.0),
            p95: percentile_sorted(values, 95.0),
            p99: percentile_sorted(values, 99.0),
            stddev: var.sqrt(),
        })
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&pct), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Aggregate::compute(&mut []).is_none());
    }

    #[test]
    fn single_value() {
        let a = Aggregate::compute(&mut [42.0]).unwrap();
        assert_eq!(a.count, 1);
        assert_eq!(a.min, 42.0);
        assert_eq!(a.max, 42.0);
        assert_eq!(a.mean, 42.0);
        assert_eq!(a.median, 42.0);
        assert_eq!(a.p99, 42.0);
        assert_eq!(a.stddev, 0.0);
    }

    #[test]
    fn known_small_set() {
        let mut v = [4.0, 1.0, 3.0, 2.0];
        let a = Aggregate::compute(&mut v).unwrap();
        assert_eq!(a.count, 4);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 4.0);
        assert_eq!(a.mean, 2.5);
        assert_eq!(a.median, 2.5);
        assert!((a.stddev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile_sorted(&v, 50.0) - 50.5).abs() < 1e-9);
        assert!((percentile_sorted(&v, 95.0) - 95.05).abs() < 1e-9);
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 100.0), 100.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut v = vec![5.0, 1.0, 9.0, 3.0, 7.0];
        let a = Aggregate::compute(&mut v).unwrap();
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 9.0);
        assert_eq!(a.median, 5.0);
    }

    #[test]
    fn p99_catches_outliers() {
        // 980 samples at ~130, 20 at 4000 (the firewall anomaly shape).
        let mut v: Vec<f64> = (0..980).map(|i| 130.0 + (i % 10) as f64 * 0.1).collect();
        v.extend(std::iter::repeat_n(4000.0, 20));
        let a = Aggregate::compute(&mut v).unwrap();
        assert!(a.median < 132.0);
        assert!(a.p99 > 1000.0, "p99 {} must expose the spike", a.p99);
        assert!(a.max == 4000.0);
    }

    #[test]
    #[should_panic(expected = "percentile of empty slice")]
    fn percentile_empty_panics() {
        percentile_sorted(&[], 50.0);
    }
}
