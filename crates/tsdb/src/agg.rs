//! The aggregates Ruru's Grafana panels display: min, max, median, mean —
//! plus count, p95, p99 and standard deviation.

/// Aggregate statistics over a set of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Number of samples.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile, nearest-rank interpolated).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Aggregate {
    /// Compute aggregates; returns `None` for an empty set. `values` is
    /// sorted in place (callers hand over scratch buffers).
    pub fn compute(values: &mut [f64]) -> Option<Aggregate> {
        if values.is_empty() {
            return None;
        }
        // total_cmp orders NaN deterministically (greatest) instead of
        // panicking on it: a NaN smuggled in by a corrupt sample sorts last
        // and shows up in max/p99 rather than aborting the detector.
        values.sort_unstable_by(|a, b| a.total_cmp(b));
        let count = values.len();
        let sum: f64 = values.iter().sum();
        // panic-ok: f64 division never panics (flagged conservatively)
        let mean = sum / count as f64;
        // panic-ok: f64 division never panics (flagged conservatively)
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Some(Aggregate {
            count,
            min: values.first().copied().unwrap_or(0.0),
            max: values.last().copied().unwrap_or(0.0),
            mean,
            median: percentile_sorted(values, 50.0),
            p95: percentile_sorted(values, 95.0),
            p99: percentile_sorted(values, 99.0),
            stddev: var.sqrt(),
        })
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
///
/// Total: an empty slice yields NaN (there is no percentile to report) and
/// `pct` is clamped to `0..=100`, so no input can abort a query path.
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    let Some((&first, _)) = sorted.split_first() else {
        return f64::NAN;
    };
    let pct = pct.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return first;
    }
    let rank = pct / 100.0 * (sorted.len().saturating_sub(1)) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let lo_v = sorted.get(lo).copied().unwrap_or(first);
    let hi_v = sorted.get(hi).copied().unwrap_or(lo_v);
    if lo == hi {
        lo_v
    } else {
        let frac = rank - lo as f64;
        lo_v * (1.0 - frac) + hi_v * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Aggregate::compute(&mut []).is_none());
    }

    #[test]
    fn single_value() {
        let a = Aggregate::compute(&mut [42.0]).unwrap();
        assert_eq!(a.count, 1);
        assert_eq!(a.min, 42.0);
        assert_eq!(a.max, 42.0);
        assert_eq!(a.mean, 42.0);
        assert_eq!(a.median, 42.0);
        assert_eq!(a.p99, 42.0);
        assert_eq!(a.stddev, 0.0);
    }

    #[test]
    fn known_small_set() {
        let mut v = [4.0, 1.0, 3.0, 2.0];
        let a = Aggregate::compute(&mut v).unwrap();
        assert_eq!(a.count, 4);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 4.0);
        assert_eq!(a.mean, 2.5);
        assert_eq!(a.median, 2.5);
        assert!((a.stddev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile_sorted(&v, 50.0) - 50.5).abs() < 1e-9);
        assert!((percentile_sorted(&v, 95.0) - 95.05).abs() < 1e-9);
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 100.0), 100.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut v = vec![5.0, 1.0, 9.0, 3.0, 7.0];
        let a = Aggregate::compute(&mut v).unwrap();
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 9.0);
        assert_eq!(a.median, 5.0);
    }

    #[test]
    fn p99_catches_outliers() {
        // 980 samples at ~130, 20 at 4000 (the firewall anomaly shape).
        let mut v: Vec<f64> = (0..980).map(|i| 130.0 + (i % 10) as f64 * 0.1).collect();
        v.extend(std::iter::repeat_n(4000.0, 20));
        let a = Aggregate::compute(&mut v).unwrap();
        assert!(a.median < 132.0);
        assert!(a.p99 > 1000.0, "p99 {} must expose the spike", a.p99);
        assert!(a.max == 4000.0);
    }

    #[test]
    fn percentile_empty_is_nan() {
        assert!(percentile_sorted(&[], 50.0).is_nan());
    }

    #[test]
    fn percentile_out_of_range_clamps() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile_sorted(&v, -5.0), 1.0);
        assert_eq!(percentile_sorted(&v, 250.0), 3.0);
    }

    #[test]
    fn nan_sample_does_not_abort() {
        let mut v = [2.0, f64::NAN, 1.0];
        let a = Aggregate::compute(&mut v).unwrap();
        // NaN sorts last under total_cmp: min stays finite, max is NaN.
        assert_eq!(a.min, 1.0);
        assert!(a.max.is_nan());
    }
}
