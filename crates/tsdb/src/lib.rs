#![warn(missing_docs)]

//! # ruru-tsdb — an embedded tagged time-series database
//!
//! The pipeline's long-term store: *"the geographically enriched
//! measurements are sent to a time-series database (InfluxDB) for long-term
//! storage … InfluxDB takes care of indexing data on geo-location and AS
//! information"*, and the Grafana UI queries it for *"min, max, median,
//! mean … for a required time interval"*.
//!
//! This crate reproduces the slice of InfluxDB that Ruru uses:
//!
//! * [`point`] — tagged, timestamped points and series keys.
//! * [`line`](crate::line) — the InfluxDB line protocol (parse + encode), the ingest
//!   format of the deployed system.
//! * [`agg`] — the aggregates Grafana panels request: count / min / max /
//!   mean / median / p95 / p99 / stddev.
//! * [`store`] — [`store::TsDb`]: concurrent ingest, tag-filtered and
//!   time-bucketed queries, retention enforcement and downsampling.
//! * [`sharded`] — [`sharded::IngestShard`]: contention-free single-writer
//!   ingest buffers merged into the store at end of run (the
//!   run-to-completion pipeline's per-queue ingest path).

pub mod agg;
pub mod line;
pub mod point;
pub mod sharded;
pub mod snapshot;
pub mod store;

pub use agg::Aggregate;
pub use point::Point;
pub use sharded::IngestShard;
pub use store::{Query, TsDb};
