#![warn(missing_docs)]

//! # ruru-tsdb — an embedded tagged time-series database
//!
//! The pipeline's long-term store: *"the geographically enriched
//! measurements are sent to a time-series database (InfluxDB) for long-term
//! storage … InfluxDB takes care of indexing data on geo-location and AS
//! information"*, and the Grafana UI queries it for *"min, max, median,
//! mean … for a required time interval"*.
//!
//! This crate reproduces the slice of InfluxDB that Ruru uses:
//!
//! * [`point`] — tagged, timestamped points and series keys.
//! * [`line`](crate::line) — the InfluxDB line protocol (parse + encode), the ingest
//!   format of the deployed system.
//! * [`agg`] — the aggregates Grafana panels request: count / min / max /
//!   mean / median / p95 / p99 / stddev.
//! * [`store`] — [`store::TsDb`]: two-phase (active → sealed) storage,
//!   tag-filtered and time-bucketed queries with bounded parallel
//!   fan-out, retention enforcement and downsampling.
//! * [`sharded`] — [`sharded::IngestShard`] / [`sharded::StripeWriter`]:
//!   contention-free single-writer ingest stripes folded into the store
//!   per rotation — the first-class dataplane write path in both
//!   execution modes.
//! * `compress` (private) — Gorilla-style sealed-chunk codec: timestamp
//!   delta-of-delta varints + value XOR with leading/trailing-zero
//!   windows, decoded in place by query cursors.
//! * `seal` (private) — sealing, chunk retention and downsample-rewrite:
//!   the cold maintenance half of the lifecycle.

pub mod agg;
mod compress;
pub mod line;
pub mod point;
mod seal;
pub mod sharded;
pub mod snapshot;
pub mod store;

pub use agg::Aggregate;
pub use point::Point;
pub use sharded::{IngestShard, StripeWriter};
pub use store::{Query, StorageStats, TsDb, MAX_QUERY_WORKERS};
