//! Per-writer striped ingest — the store's first-class write path.
//!
//! Serializing every producer on one global write lock is the scaling
//! ceiling the PR 6 scaling curve measured (`tsdb_write_lock`
//! bottleneck). An [`IngestShard`] is the contention-free alternative: a
//! private, single-writer mini-store (same sorted-run-per-series layout
//! as the shared store, no lock at all) that each writer fills
//! independently and folds into the shared [`crate::TsDb`] with
//! [`crate::store::TsDb::merge_shard`] — once per rotation interval
//! (mid-run, via [`StripeWriter`]) rather than once per point. Both
//! execution modes ride this path: pipelined enrichment workers write
//! through a [`StripeWriter`] each, run-to-completion lcores decode
//! their record logs into shards and merge on a virtual-time rotation.
//!
//! Merging is run-aware: each shard holds per-series sorted runs, so the
//! common case (disjoint series — every `latency` series carries a
//! `queue` tag) is a plain move, and overlapping series (e.g. `ruru_self`
//! exports) merge two sorted runs without re-sorting. Ties keep the
//! shared store's insertion order: samples already in the store stay
//! ahead of incoming equal-timestamp samples, exactly as repeated
//! [`crate::store::TsDb::write`] calls would have left them.

use crate::point::Point;
use std::collections::HashMap;

/// One stored sample: timestamp and value (per field).
pub(crate) type Sample = (u64, f64);

/// A private series buffer inside an [`IngestShard`] — the same shape as
/// the shared store's series (tag list + per-field sorted runs).
#[derive(Debug, Default)]
pub(crate) struct ShardSeries {
    pub(crate) tags: Vec<(String, String)>,
    pub(crate) fields: HashMap<String, Vec<Sample>>,
}

impl ShardSeries {
    #[allow(clippy::disallowed_methods)] // sanctioned: owned field key on first sight only; repeats hit the map
    fn insert(&mut self, field: &str, ts: u64, value: f64) {
        // alloc-ok: owned field key + map slot on first sight of a field;
        // repeats hit the existing entry. Bounded per point, enforced by
        // the counting-allocator audit (tests/alloc_stripe_ingest.rs).
        let run = self.fields.entry(field.to_string()).or_default();
        match run.last() {
            Some(&(last_ts, _)) if last_ts > ts => {
                // Out-of-order straggler: binary insert.
                let idx = run.partition_point(|&(t, _)| t <= ts);
                run.insert(idx, (ts, value));
            }
            _ => run.push((ts, value)),
        }
    }
}

/// A single-writer ingest buffer: one producer writes points without any
/// locking, and the whole shard is merged into the shared [`crate::TsDb`]
/// at the end of the run.
///
/// Unlike [`crate::store::TsDb::write`], [`IngestShard::write`] touches no
/// shared state — per-queue writers never contend on one store.
#[derive(Debug, Default)]
pub struct IngestShard {
    pub(crate) measurements: HashMap<String, HashMap<String, ShardSeries>>,
    pub(crate) points: u64,
}

impl IngestShard {
    /// An empty shard.
    pub fn new() -> IngestShard {
        IngestShard::default()
    }

    /// Buffer one point. Same semantics as [`crate::store::TsDb::write`],
    /// minus the lock: sorted-run append with a binary-insert fallback for
    /// out-of-order stragglers.
    pub fn write(&mut self, point: &Point) {
        // alloc-ok: map entry + owned measurement key — the bounded
        // per-point string cost of buffering into a private stripe,
        // enforced by the counting-allocator audit.
        let series_map = self.measurements.entry(point.measurement.clone()).or_default();
        let series = series_map
            .entry(point.series_key()) // alloc-ok: owned key per point, audited bound
            .or_insert_with(|| ShardSeries { // alloc-ok: once per new series, not per point
                tags: point.tags.clone(), // alloc-ok: once per new series, not per point
                fields: HashMap::new(),
            });
        for (field, value) in &point.fields {
            series.insert(field, point.timestamp_ns, *value);
        }
        self.points = self.points.saturating_add(1);
    }

    /// Points buffered so far (each counts toward
    /// [`crate::store::TsDb::points_ingested`] once merged).
    pub fn points_buffered(&self) -> u64 {
        self.points
    }

    /// True if nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.points == 0
    }
}

/// A per-writer ingest stripe: a private [`IngestShard`] plus the shared
/// store it folds into every `flush_points` buffered points. This is the
/// steady-state dataplane write path — [`StripeWriter::write`] touches
/// only writer-local memory; the store lock is taken whole-shard at
/// flush time, amortised across the stripe.
///
/// Callers own the flush discipline: un-flushed points are not counted
/// in [`crate::store::TsDb::points_ingested`], so a writer that exits
/// without [`StripeWriter::flush`] shows up as a conservation-identity
/// violation, never as silent loss.
pub struct StripeWriter {
    db: std::sync::Arc<crate::store::TsDb>,
    shard: IngestShard,
    flush_points: u64,
}

impl StripeWriter {
    pub(crate) fn new(db: std::sync::Arc<crate::store::TsDb>, flush_points: u64) -> StripeWriter {
        StripeWriter {
            db,
            shard: IngestShard::new(),
            flush_points: flush_points.max(1),
        }
    }

    /// Buffer one point into the private stripe; folds the stripe into
    /// the store when the flush threshold is reached. Returns the number
    /// of points merged into the store by this call (0 unless a flush
    /// triggered) so callers can maintain exact merge accounting.
    pub fn write(&mut self, point: &Point) -> u64 {
        self.shard.write(point);
        if self.shard.points >= self.flush_points {
            self.flush()
        } else {
            0
        }
    }

    /// Fold everything buffered into the store now. Returns points
    /// merged. Must be called before the writer exits.
    pub fn flush(&mut self) -> u64 {
        if self.shard.is_empty() {
            return 0;
        }
        let shard = core::mem::take(&mut self.shard);
        self.db.merge_shard(shard)
    }

    /// Points buffered in the stripe, not yet merged.
    pub fn points_buffered(&self) -> u64 {
        self.shard.points_buffered()
    }
}

/// Merge sorted run `src` into sorted run `dst`, keeping existing samples
/// ahead of incoming ones on timestamp ties (matching the insertion order
/// repeated `write` calls produce).
pub(crate) fn merge_runs(dst: &mut Vec<Sample>, src: Vec<Sample>) {
    if src.is_empty() {
        return;
    }
    let append_only = match (dst.last(), src.first()) {
        (Some(&(last, _)), Some(&(first, _))) => last <= first,
        _ => true,
    };
    if append_only {
        // alloc-ok: wholesale run move at merge time — O(series) merges
        // per flush, not per point (tests/alloc_stripe_ingest.rs bounds
        // the whole merge at a per-series constant).
        dst.extend(src);
        return;
    }
    let old = core::mem::take(dst);
    // alloc-ok: single exact reservation for the interleaved-run rebuild,
    // once per overlapping merge — never on the append-only fast path.
    dst.reserve(old.len() + src.len());
    // Slice-cursor two-way merge: samples are Copy pairs, and slice
    // patterns keep the body free of both fallible indexing and iterator
    // method calls the name-based analyzer call graph would over-resolve.
    let (mut a, mut b) = (old.as_slice(), src.as_slice());
    while !a.is_empty() || !b.is_empty() {
        let take_existing = match (a.first(), b.first()) {
            (Some(&(ta, _)), Some(&(tb, _))) => ta <= tb,
            (Some(_), None) => true,
            _ => false,
        };
        if take_existing {
            if let [s, rest @ ..] = a {
                dst.push(*s);
                a = rest;
            }
        } else if let [s, rest @ ..] = b {
            dst.push(*s);
            b = rest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Query, TsDb};

    fn point(city: &str, ms: f64, ts: u64) -> Point {
        Point::new(
            "latency",
            vec![("city".into(), city.into())],
            vec![("total_ms".into(), ms)],
            ts,
        )
    }

    #[test]
    fn shard_buffers_without_touching_the_store() {
        let mut shard = IngestShard::new();
        assert!(shard.is_empty());
        shard.write(&point("akl", 130.0, 10));
        shard.write(&point("akl", 131.0, 20));
        assert_eq!(shard.points_buffered(), 2);
        assert!(!shard.is_empty());
    }

    #[test]
    fn merge_disjoint_series_moves_runs() {
        let db = TsDb::new();
        let mut a = IngestShard::new();
        let mut b = IngestShard::new();
        for i in 0..100u64 {
            a.write(&point("akl", i as f64, i * 10));
            b.write(&point("lax", i as f64, i * 10 + 5));
        }
        assert_eq!(db.merge_shard(a), 100);
        assert_eq!(db.merge_shard(b), 100);
        assert_eq!(db.points_ingested(), 200);
        assert_eq!(db.series_count("latency"), 2);
        let agg = db.query(&Query::range("latency", "total_ms", 0, 10_000))[0]
            .agg
            .unwrap();
        assert_eq!(agg.count, 200);
    }

    #[test]
    fn merge_interleaves_overlapping_series_in_time_order() {
        let db = TsDb::new();
        db.write(&point("akl", 0.0, 0));
        db.write(&point("akl", 2.0, 200));
        let mut shard = IngestShard::new();
        shard.write(&point("akl", 1.0, 100));
        shard.write(&point("akl", 3.0, 300));
        db.merge_shard(shard);
        assert_eq!(db.points_ingested(), 4);
        let buckets =
            db.query(&Query::range("latency", "total_ms", 0, 400).with_buckets(100));
        let means: Vec<Option<f64>> =
            buckets.iter().map(|b| b.agg.map(|a| a.mean)).collect();
        assert_eq!(means, vec![Some(0.0), Some(1.0), Some(2.0), Some(3.0)]);
    }

    #[test]
    fn merged_state_matches_direct_writes() {
        // The differential property the pipeline's two execution modes
        // rely on: shard-then-merge must land in exactly the state direct
        // writes produce.
        let direct = TsDb::new();
        let sharded = TsDb::new();
        let mut shards = [IngestShard::new(), IngestShard::new()];
        let mut pts = Vec::new();
        for i in 0..50u64 {
            // Deterministic scramble: out-of-order and duplicate stamps.
            let ts = (i * 37) % 100;
            pts.push(point(if i % 2 == 0 { "akl" } else { "lax" }, i as f64, ts));
        }
        for (i, p) in pts.iter().enumerate() {
            direct.write(p);
            if let Some(s) = shards.get_mut(i % 2) {
                s.write(p);
            }
        }
        let [a, b] = shards;
        sharded.merge_shard(a);
        sharded.merge_shard(b);
        assert_eq!(sharded.points_ingested(), direct.points_ingested());
        assert_eq!(
            sharded.series_count("latency"),
            direct.series_count("latency")
        );
        for city in ["akl", "lax"] {
            let q = Query::range("latency", "total_ms", 0, 1000).with_tag("city", city);
            assert_eq!(direct.query(&q), sharded.query(&q), "city {city}");
        }
    }

    #[test]
    fn merge_runs_keeps_existing_ahead_on_ties() {
        let mut dst = vec![(10, 1.0), (20, 2.0)];
        merge_runs(&mut dst, vec![(5, 0.5), (10, 1.5), (30, 3.0)]);
        assert_eq!(dst, vec![(5, 0.5), (10, 1.0), (10, 1.5), (20, 2.0), (30, 3.0)]);
        // Append-only fast path.
        let mut dst = vec![(10, 1.0)];
        merge_runs(&mut dst, vec![(10, 2.0), (15, 3.0)]);
        assert_eq!(dst, vec![(10, 1.0), (10, 2.0), (15, 3.0)]);
        // Empty cases.
        let mut dst: Vec<Sample> = Vec::new();
        merge_runs(&mut dst, vec![(1, 1.0)]);
        assert_eq!(dst, vec![(1, 1.0)]);
        merge_runs(&mut dst, Vec::new());
        assert_eq!(dst, vec![(1, 1.0)]);
    }

    #[test]
    fn stripe_writer_flushes_on_threshold_and_on_demand() {
        let db = std::sync::Arc::new(TsDb::new());
        let mut stripe = db.stripe(10);
        let mut merged = 0u64;
        for i in 0..25u64 {
            merged += stripe.write(&point("akl", i as f64, i * 10));
        }
        // Two threshold flushes of 10 each; 5 points still buffered.
        assert_eq!(merged, 20);
        assert_eq!(stripe.points_buffered(), 5);
        assert_eq!(db.points_ingested(), 20);
        merged += stripe.flush();
        assert_eq!(merged, 25);
        assert_eq!(db.points_ingested(), 25);
        assert_eq!(stripe.flush(), 0, "flush of empty stripe is a noop");
        let agg = db.query(&Query::range("latency", "total_ms", 0, 1000))[0]
            .agg
            .unwrap();
        assert_eq!(agg.count, 25);
    }

    #[test]
    fn concurrent_stripes_land_every_point() {
        let db = std::sync::Arc::new(TsDb::new());
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let mut stripe = db.stripe(64);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    stripe.write(&point(if w % 2 == 0 { "akl" } else { "lax" }, w as f64, i));
                }
                stripe.flush();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.points_ingested(), 4000);
        let agg = db.query(&Query::range("latency", "total_ms", 0, 2000))[0]
            .agg
            .unwrap();
        assert_eq!(agg.count, 4000);
    }

    #[test]
    fn merge_empty_shard_is_a_noop() {
        let db = TsDb::new();
        assert_eq!(db.merge_shard(IngestShard::new()), 0);
        assert_eq!(db.points_ingested(), 0);
    }

    #[test]
    fn merge_preserves_multi_field_points() {
        let db = TsDb::new();
        let mut shard = IngestShard::new();
        shard.write(&Point::new(
            "latency",
            vec![("city".into(), "akl".into())],
            vec![("int_ms".into(), 1.0), ("ext_ms".into(), 130.0)],
            5,
        ));
        db.merge_shard(shard);
        assert_eq!(db.points_ingested(), 1);
        let int_agg = db.query(&Query::range("latency", "int_ms", 0, 10))[0]
            .agg
            .unwrap();
        assert_eq!(int_agg.mean, 1.0);
    }
}
