//! Points and series keys.

/// A single tagged, timestamped data point.
///
/// Tags are indexed dimensions (country, city, ASN…); fields are the
/// numeric values (latencies). A point's *series* is its measurement name
/// plus its sorted tag set — all points of one series share one storage run.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Measurement name, e.g. `"latency"`.
    pub measurement: String,
    /// Tag key/value pairs. Kept sorted by key (see [`Point::normalize`]).
    pub tags: Vec<(String, String)>,
    /// Field name/value pairs.
    pub fields: Vec<(String, f64)>,
    /// Timestamp in nanoseconds.
    pub timestamp_ns: u64,
}

impl Point {
    /// Build a point, normalizing the tag order.
    pub fn new(
        measurement: impl Into<String>,
        tags: Vec<(String, String)>,
        fields: Vec<(String, f64)>,
        timestamp_ns: u64,
    ) -> Point {
        let mut p = Point {
            measurement: measurement.into(),
            tags,
            fields,
            timestamp_ns,
        };
        p.normalize();
        p
    }

    /// Sort tags by key so equal tag sets produce equal series keys.
    pub fn normalize(&mut self) {
        self.tags.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// The series key: `measurement,k1=v1,k2=v2` over sorted tags.
    pub fn series_key(&self) -> String {
        // alloc-ok: one owned series key per buffered point — the by-design
        // string cost of striped ingest, bounded per point and enforced by
        // the counting-allocator audit (tests/alloc_stripe_ingest.rs).
        let mut key = self.measurement.clone();
        for (k, v) in &self.tags {
            key.push(',');
            key.push_str(k);
            key.push('=');
            key.push_str(v);
        }
        key
    }

    /// The value of tag `key`, if present.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The value of field `name`, if present.
    pub fn field(&self, name: &str) -> Option<f64> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    // Display/ToString in assertions is fine; the ban targets hot paths.
    #![allow(clippy::disallowed_methods)]
    use super::*;

    fn tags(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn series_key_is_order_independent() {
        let a = Point::new(
            "latency",
            tags(&[("city", "akl"), ("asn", "64000")]),
            vec![("total_ms".into(), 130.0)],
            1,
        );
        let b = Point::new(
            "latency",
            tags(&[("asn", "64000"), ("city", "akl")]),
            vec![("total_ms".into(), 130.0)],
            2,
        );
        assert_eq!(a.series_key(), b.series_key());
        assert_eq!(a.series_key(), "latency,asn=64000,city=akl");
    }

    #[test]
    fn tag_and_field_access() {
        let p = Point::new(
            "m",
            tags(&[("a", "1")]),
            vec![("x".into(), 2.5), ("y".into(), 3.5)],
            0,
        );
        assert_eq!(p.tag("a"), Some("1"));
        assert_eq!(p.tag("b"), None);
        assert_eq!(p.field("y"), Some(3.5));
        assert_eq!(p.field("z"), None);
    }

    #[test]
    fn tagless_series_key_is_measurement() {
        let p = Point::new("m", vec![], vec![("x".into(), 0.0)], 0);
        assert_eq!(p.series_key(), "m");
    }
}
