//! The traffic generator: Poisson flow arrivals over a weighted city-pair
//! mix, full TCP conversations, anomaly injection, and a ground-truth log.
//!
//! Events are produced as a time-ordered stream (a pending-packet heap fed
//! by the arrival processes), so day-long simulations run in bounded
//! memory. Timestamps are *tap times*: the instants packets pass Ruru's
//! optical tap, which is exactly what the measurement pipeline sees.

use crate::anomaly::Anomaly;
use crate::model::PathModel;
use crate::packet::{AddrPair, TcpPacketSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ruru_geo::synth::{SynthWorld, AUCKLAND, LOS_ANGELES};
use ruru_nic::Timestamp;
use ruru_wire::tcp::Flags;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How the flow arrival rate varies over the (simulated) day.
#[derive(Debug, Clone, PartialEq)]
pub enum RateProfile {
    /// Flat rate.
    Constant,
    /// Hourly multipliers on `flows_per_sec`, linearly interpolated across
    /// each hour and repeating every 24 h of simulated time.
    Hourly([f64; 24]),
}

impl RateProfile {
    /// A typical residential/enterprise mix: quiet 02:00–06:00, busy
    /// evenings — the shape REANNZ's link follows.
    pub fn diurnal() -> RateProfile {
        RateProfile::Hourly([
            0.45, 0.35, 0.30, 0.28, 0.30, 0.38, // 00–05
            0.55, 0.75, 0.95, 1.05, 1.10, 1.10, // 06–11
            1.05, 1.05, 1.00, 1.00, 1.05, 1.15, // 12–17
            1.30, 1.45, 1.50, 1.40, 1.10, 0.70, // 18–23
        ])
    }

    /// The multiplier at simulated time `t`.
    pub fn multiplier_at(&self, t: Timestamp) -> f64 {
        match self {
            RateProfile::Constant => 1.0,
            RateProfile::Hourly(hours) => {
                let secs_of_day = (t.as_nanos() / 1_000_000_000) % 86_400;
                let hour = (secs_of_day / 3600) as usize;
                let frac = (secs_of_day % 3600) as f64 / 3600.0;
                let a = hours[hour];
                let b = hours[(hour + 1) % 24];
                a + (b - a) * frac
            }
        }
    }

    /// The maximum multiplier (the thinning envelope).
    pub fn peak(&self) -> f64 {
        match self {
            RateProfile::Constant => 1.0,
            RateProfile::Hourly(hours) => hours.iter().cloned().fold(0.0, f64::max),
        }
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed; equal seeds give identical traffic.
    pub seed: u64,
    /// Mean new flows per second (Poisson arrivals) at multiplier 1.0.
    pub flows_per_sec: f64,
    /// Time-of-day modulation of the arrival rate.
    pub rate_profile: RateProfile,
    /// Generate flow arrivals until this simulated time.
    pub duration: Timestamp,
    /// Inclusive range of request/response exchanges per flow.
    pub data_exchanges: (u8, u8),
    /// Cities on the internal (NZ) side of the tap.
    pub internal_cities: Vec<usize>,
    /// Weighted cities on the external side.
    pub external_weights: Vec<(usize, u32)>,
    /// The path latency model.
    pub model: PathModel,
    /// Anomalies to inject.
    pub anomalies: Vec<Anomaly>,
    /// Emit TCP timestamp options (needed by the pping baseline).
    pub tcp_timestamps: bool,
    /// Fraction of flows using IPv6 (the tapped link is dual-stack).
    pub v6_fraction: f64,
    /// Record per-flow ground truth (disable for day-long runs).
    pub record_truth: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 1,
            flows_per_sec: 100.0,
            rate_profile: RateProfile::Constant,
            duration: Timestamp::from_secs(10),
            data_exchanges: (0, 3),
            internal_cities: vec![AUCKLAND, 2, 3], // Auckland, Wellington, Christchurch
            external_weights: vec![
                (LOS_ANGELES, 30),
                (6, 10), // San Francisco
                (7, 8),  // Seattle
                (8, 6),  // New York
                (4, 8),  // Sydney
                (13, 6), // Tokyo
                (16, 5), // Singapore
                (21, 5), // London
                (24, 4), // Frankfurt
                (12, 3), // Honolulu
            ],
            model: PathModel::default(),
            anomalies: Vec::new(),
            tcp_timestamps: true,
            v6_fraction: 0.1,
            record_truth: true,
        }
    }
}

impl GenConfig {
    /// The elephant-flow scenario: a modest number of long-lived flows,
    /// each carrying many request/response exchanges, with a mid-flow
    /// congestion shift that begins only after every handshake has
    /// completed (`arrivals_until < shift_start`). Handshake-only
    /// measurement sees nothing but clean setups; the continuous in-flow
    /// RTT path watches every exchange inside `[shift_start, shift_end)`
    /// jump by `shift_extra_ns`.
    pub fn elephant_flows(
        seed: u64,
        arrivals_until: Timestamp,
        shift_start: Timestamp,
        shift_end: Timestamp,
        shift_extra_ns: u64,
    ) -> GenConfig {
        GenConfig {
            seed,
            flows_per_sec: 30.0,
            duration: arrivals_until,
            // Long-lived flows: each exchange costs roughly one external
            // RTT plus think time (~0.3 s to the US west coast), so 20–40
            // exchanges keep a flow alive for many seconds — long enough
            // to straddle the shift window.
            data_exchanges: (20, 40),
            anomalies: vec![Anomaly::MidFlowLatencyShift {
                start: shift_start,
                end: shift_end,
                extra_ns: shift_extra_ns,
            }],
            ..GenConfig::default()
        }
    }
}

/// One tap event: a frame passing the tap at `at`.
#[derive(Debug, Clone)]
pub struct Event {
    /// Tap timestamp.
    pub at: Timestamp,
    /// The Ethernet frame bytes.
    pub frame: Vec<u8>,
}

/// Ground truth for one generated flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowTruth {
    /// Client address.
    pub src: ruru_wire::IpAddress,
    /// Server address.
    pub dst: ruru_wire::IpAddress,
    /// Client port.
    pub src_port: u16,
    /// Server port.
    pub dst_port: u16,
    /// When the SYN passed the tap.
    pub t_syn_tap: Timestamp,
    /// True external latency (SYN→SYN-ACK at the tap), ns.
    pub external_ns: u64,
    /// True internal latency (SYN-ACK→ACK at the tap), ns.
    pub internal_ns: u64,
    /// Client city index.
    pub client_city: usize,
    /// Server city index.
    pub server_city: usize,
    /// Whether the flow started inside a latency-anomaly window.
    pub anomalous: bool,
}

struct Scheduled {
    at: Timestamp,
    seq: u64,
    frame: Vec<u8>,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Scheduled {}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The generator. Iterate it to obtain time-ordered [`Event`]s.
pub struct TrafficGen {
    config: GenConfig,
    world: SynthWorld,
    rng: StdRng,
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_arrival: Option<Timestamp>,
    flood_cursors: Vec<(usize, Timestamp)>, // (anomaly idx, next syn time)
    seq: u64,
    truths: Vec<FlowTruth>,
    flows_started: u64,
    flood_syns: u64,
    packets_emitted: u64,
}

impl TrafficGen {
    /// Create a generator over a fresh synthetic world (2 providers/city).
    pub fn new(config: GenConfig) -> TrafficGen {
        Self::with_world(config, SynthWorld::generate(2))
    }

    /// Create a generator over a caller-provided world.
    pub fn with_world(config: GenConfig, world: SynthWorld) -> TrafficGen {
        assert!(config.flows_per_sec >= 0.0, "rate must be non-negative");
        assert!(
            !config.internal_cities.is_empty() && !config.external_weights.is_empty(),
            "need at least one city on each side"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let next_arrival = if config.flows_per_sec > 0.0 {
            Some(Timestamp::from_nanos(exp_interval_ns(
                config.flows_per_sec * config.rate_profile.peak(),
                &mut rng,
            )))
        } else {
            None
        };
        let flood_cursors = config
            .anomalies
            .iter()
            .enumerate()
            .filter_map(|(i, a)| match a {
                Anomaly::SynFlood { start, .. } => Some((i, *start)),
                _ => None,
            })
            .collect();
        TrafficGen {
            config,
            world,
            rng,
            heap: BinaryHeap::new(),
            next_arrival,
            flood_cursors,
            seq: 0,
            truths: Vec::new(),
            flows_started: 0,
            flood_syns: 0,
            packets_emitted: 0,
        }
    }

    /// Ground truth of flows scheduled so far (only if `record_truth`).
    pub fn truths(&self) -> &[FlowTruth] {
        &self.truths
    }

    /// `(flows started, flood SYNs, packets emitted)` so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.flows_started, self.flood_syns, self.packets_emitted)
    }

    /// Access the generator's world (e.g. for its geo database).
    pub fn world(&self) -> &SynthWorld {
        &self.world
    }

    fn push(&mut self, at: Timestamp, frame: Vec<u8>) {
        self.heap.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            frame,
        }));
        self.seq += 1;
    }

    fn pick_external_city(&mut self) -> usize {
        let total: u32 = self.config.external_weights.iter().map(|(_, w)| w).sum();
        let mut roll = self.rng.gen_range(0..total);
        for (city, w) in &self.config.external_weights {
            if roll < *w {
                return *city;
            }
            roll -= w;
        }
        self.config.external_weights[0].0
    }

    fn server_port(&mut self) -> u16 {
        match self.rng.gen_range(0..100u32) {
            0..=59 => 443,
            60..=84 => 80,
            85..=91 => 8080,
            92..=95 => 22,
            _ => 25,
        }
    }

    /// Schedule every packet of one flow starting (SYN at tap) at `t0`.
    fn schedule_flow(&mut self, t0: Timestamp) {
        let client_city = self.config.internal_cities
            [self.rng.gen_range(0..self.config.internal_cities.len())];
        let server_city = self.pick_external_city();
        let pair = if self.config.v6_fraction > 0.0 && self.rng.gen_bool(self.config.v6_fraction) {
            AddrPair::V6(
                self.world.sample_v6(client_city, &mut self.rng),
                self.world.sample_v6(server_city, &mut self.rng),
            )
        } else {
            AddrPair::V4(
                self.world.sample_v4(client_city, &mut self.rng),
                self.world.sample_v4(server_city, &mut self.rng),
            )
        };
        let src_port: u16 = self.rng.gen_range(32768..61000);
        let dst_port = self.server_port();
        let client_isn: u32 = self.rng.gen();
        let server_isn: u32 = self.rng.gen();

        // Anomalies can stretch the external handshake.
        let extra_ns: u64 = self
            .config
            .anomalies
            .iter()
            .map(|a| a.extra_setup_ns(t0))
            .sum();

        // The external leg is tap→server; internal is client→tap. The tap
        // sits at the NZ border, so approximate internal distance by the
        // client city → Auckland leg and external by Auckland → server.
        let m = self.config.model.clone();
        let e_base = m.base_owd_ns(AUCKLAND, server_city);
        let i_base = m.base_owd_ns(client_city, AUCKLAND);
        let e_leg1 = e_base + m.sample_jitter_ns(&mut self.rng);
        let e_leg2 = e_base + m.sample_jitter_ns(&mut self.rng);
        let i_leg1 = i_base + m.sample_jitter_ns(&mut self.rng);
        let i_leg2 = i_base + m.sample_jitter_ns(&mut self.rng);
        let p_server = m.sample_server_proc_ns(&mut self.rng);
        let p_client = m.sample_client_proc_ns(&mut self.rng);

        let external_ns = e_leg1 + p_server + e_leg2 + extra_ns;
        let internal_ns = i_leg1 + p_client + i_leg2;
        let t_synack = t0.advanced(external_ns);
        let t_ack = t_synack.advanced(internal_ns);

        // TCP timestamp clocks (1 kHz) per side.
        let ts_on = self.config.tcp_timestamps;
        let client_ts_base: u32 = self.rng.gen();
        let server_ts_base: u32 = self.rng.gen();
        let client_ts = |at: Timestamp| client_ts_base.wrapping_add((at.as_millis()) as u32);
        let server_ts = |at: Timestamp| server_ts_base.wrapping_add((at.as_millis()) as u32);

        // --- handshake ---
        let mut syn =
            TcpPacketSpec::control_pair(pair, src_port, dst_port, client_isn, 0, Flags::SYN);
        if ts_on {
            syn = syn.with_timestamps(client_ts(t0), 0);
        }
        self.push(t0, syn.build());

        let mut synack = TcpPacketSpec::control_pair(
            pair.flipped(),
            dst_port,
            src_port,
            server_isn,
            client_isn.wrapping_add(1),
            Flags::SYN | Flags::ACK,
        );
        if ts_on {
            synack = synack.with_timestamps(server_ts(t_synack), client_ts(t0));
        }
        self.push(t_synack, synack.build());

        let mut ack = TcpPacketSpec::control_pair(
            pair,
            src_port,
            dst_port,
            client_isn.wrapping_add(1),
            server_isn.wrapping_add(1),
            Flags::ACK,
        );
        if ts_on {
            ack = ack.with_timestamps(client_ts(t_ack), server_ts(t_synack));
        }
        self.push(t_ack, ack.build());

        // --- data exchanges ---
        let (lo, hi) = self.config.data_exchanges;
        let exchanges = if hi > lo {
            self.rng.gen_range(lo..=hi)
        } else {
            lo
        };
        let mut cseq = client_isn.wrapping_add(1);
        let mut sseq = server_isn.wrapping_add(1);
        let mut t = t_ack;
        let mut last_server_ts = server_ts(t_synack);
        for _ in 0..exchanges {
            // Client request.
            let think: u64 = self.rng.gen_range(1_000_000..50_000_000); // 1–50 ms
            t = t.advanced(think);
            let req_len = self.rng.gen_range(100..800usize);
            let mut req = TcpPacketSpec::control_pair(
                pair, src_port, dst_port, cseq, sseq, Flags::ACK | Flags::PSH,
            )
            .with_payload(req_len);
            if ts_on {
                req = req.with_timestamps(client_ts(t), last_server_ts);
            }
            self.push(t, req.build());
            let req_ts = client_ts(t);
            cseq = cseq.wrapping_add(req_len as u32);

            // Server response 2×external later. Mid-flow anomalies stretch
            // the response leg of exchanges whose request enters the
            // affected path inside their window — the handshake above is
            // already scheduled and stays clean.
            let data_extra: u64 = self
                .config
                .anomalies
                .iter()
                .map(|a| a.extra_data_ns(t))
                .sum();
            let resp_at = t
                .advanced(2 * e_base + m.sample_jitter_ns(&mut self.rng))
                .advanced(m.sample_server_proc_ns(&mut self.rng))
                .advanced(data_extra);
            let resp_len = self.rng.gen_range(200..1400usize);
            let mut resp = TcpPacketSpec::control_pair(
                pair.flipped(), dst_port, src_port, sseq, cseq, Flags::ACK | Flags::PSH,
            )
            .with_payload(resp_len);
            if ts_on {
                last_server_ts = server_ts(resp_at);
                resp = resp.with_timestamps(last_server_ts, req_ts);
            }
            self.push(resp_at, resp.build());
            sseq = sseq.wrapping_add(resp_len as u32);

            // Client ACK 2×internal later.
            let ack_at = resp_at.advanced(2 * i_base + m.sample_jitter_ns(&mut self.rng));
            let mut a = TcpPacketSpec::control_pair(
                pair, src_port, dst_port, cseq, sseq, Flags::ACK,
            );
            if ts_on {
                a = a.with_timestamps(client_ts(ack_at), last_server_ts);
            }
            self.push(ack_at, a.build());
            t = ack_at;
        }

        // --- close (half the flows FIN cleanly) ---
        if self.rng.gen_bool(0.5) {
            let fin_at = t.advanced(self.rng.gen_range(1_000_000..20_000_000));
            self.push(
                fin_at,
                TcpPacketSpec::control_pair(
                    pair, src_port, dst_port, cseq, sseq, Flags::FIN | Flags::ACK,
                )
                .build(),
            );
            let finack_at = fin_at.advanced(external_ns);
            self.push(
                finack_at,
                TcpPacketSpec::control_pair(
                    pair.flipped(),
                    dst_port,
                    src_port,
                    sseq,
                    cseq.wrapping_add(1),
                    Flags::FIN | Flags::ACK,
                )
                .build(),
            );
            self.push(
                finack_at.advanced(internal_ns),
                TcpPacketSpec::control_pair(
                    pair,
                    src_port,
                    dst_port,
                    cseq.wrapping_add(1),
                    sseq.wrapping_add(1),
                    Flags::ACK,
                )
                .build(),
            );
        }

        self.flows_started += 1;
        if self.config.record_truth {
            self.truths.push(FlowTruth {
                src: pair.src(),
                dst: pair.dst(),
                src_port,
                dst_port,
                t_syn_tap: t0,
                external_ns,
                internal_ns,
                client_city,
                server_city,
                anomalous: extra_ns > 0,
            });
        }
    }

    fn schedule_flood_syn(&mut self, anomaly_idx: usize, t: Timestamp) {
        let Anomaly::SynFlood { target_city, .. } = self.config.anomalies[anomaly_idx] else {
            return;
        };
        let dst = self.world.sample_v4(target_city, &mut self.rng);
        // Spoofed source: random address across the whole synthetic space.
        let spoof_city = self.rng.gen_range(0..self.world.city_count());
        let src = self.world.sample_v4(spoof_city, &mut self.rng);
        let spec = TcpPacketSpec::control(
            src,
            dst,
            self.rng.gen_range(1024..65535),
            443,
            self.rng.gen(),
            0,
            Flags::SYN,
        );
        self.push(t, spec.build());
        self.flood_syns += 1;
    }

    /// Pump arrival processes until the heap's head is guaranteed final.
    fn refill(&mut self) {
        loop {
            let horizon = self.heap.peek().map(|Reverse(s)| s.at);
            // Flow arrivals.
            let mut advanced = false;
            if let Some(na) = self.next_arrival {
                if na < self.config.duration && horizon.is_none_or(|h| na <= h) {
                    // Thinning (Lewis & Shedler): candidates arrive at the
                    // peak rate; accept with prob λ(t)/λ_peak. Rejected
                    // candidates advance time but schedule nothing.
                    let peak = self.config.rate_profile.peak();
                    let accept = self.config.rate_profile.multiplier_at(na) / peak;
                    if accept >= 1.0 || self.rng.gen_bool(accept.clamp(0.0, 1.0)) {
                        self.schedule_flow(na);
                    }
                    let step =
                        exp_interval_ns(self.config.flows_per_sec * peak, &mut self.rng);
                    self.next_arrival = Some(na.advanced(step));
                    advanced = true;
                } else if na >= self.config.duration {
                    self.next_arrival = None;
                }
            }
            // Flood arrivals.
            for ci in 0..self.flood_cursors.len() {
                let (ai, t) = self.flood_cursors[ci];
                let Anomaly::SynFlood {
                    end, syns_per_sec, ..
                } = self.config.anomalies[ai]
                else {
                    continue;
                };
                if t < end && self.heap.peek().map(|Reverse(s)| s.at).is_none_or(|h| t <= h) {
                    self.schedule_flood_syn(ai, t);
                    let step = exp_interval_ns(syns_per_sec as f64, &mut self.rng);
                    self.flood_cursors[ci].1 = t.advanced(step);
                    advanced = true;
                }
            }
            if !advanced {
                break;
            }
        }
    }
}

fn exp_interval_ns(rate_per_sec: f64, rng: &mut impl Rng) -> u64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    ((-u.ln() / rate_per_sec) * 1e9) as u64
}

impl Iterator for TrafficGen {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        self.refill();
        let Reverse(s) = self.heap.pop()?;
        self.packets_emitted += 1;
        Some(Event { at: s.at, frame: s.frame })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruru_flow::classify::{classify, ChecksumMode};
    use ruru_flow::{HandshakeTracker, TrackerConfig};

    fn small_config() -> GenConfig {
        GenConfig {
            seed: 42,
            flows_per_sec: 200.0,
            duration: Timestamp::from_secs(2),
            data_exchanges: (0, 2),
            ..GenConfig::default()
        }
    }

    #[test]
    fn events_are_time_ordered() {
        let gen = TrafficGen::new(small_config());
        let mut last = Timestamp::ZERO;
        let mut count = 0;
        for ev in gen {
            assert!(ev.at >= last, "events must be time-ordered");
            last = ev.at;
            count += 1;
        }
        assert!(count > 500, "expected plenty of packets, got {count}");
    }

    #[test]
    fn all_frames_validate() {
        let gen = TrafficGen::new(small_config());
        for ev in gen {
            classify(&ev.frame, ev.at, ChecksumMode::Validate)
                .expect("generated frames must be valid");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let collect = |seed| {
            let gen = TrafficGen::new(GenConfig {
                seed,
                ..small_config()
            });
            gen.map(|e| (e.at, e.frame)).collect::<Vec<_>>()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn tracker_measures_exactly_the_ground_truth() {
        let mut gen = TrafficGen::new(small_config());
        let mut tracker = HandshakeTracker::new(0, TrackerConfig::default());
        let mut measured = Vec::new();
        for ev in gen.by_ref() {
            let meta = classify(&ev.frame, ev.at, ChecksumMode::Validate).unwrap();
            if let Some(m) = tracker.process(&meta) {
                measured.push(m);
            }
        }
        let truths = gen.truths();
        assert_eq!(
            measured.len(),
            truths.len(),
            "every generated flow must be measured"
        );
        // Match measurements to truths by 4-tuple and compare exactly.
        for truth in truths {
            let m = measured
                .iter()
                .find(|m| {
                    m.src_port == truth.src_port
                        && m.dst_port == truth.dst_port
                        && m.src == truth.src
                })
                .expect("truth has a measurement");
            assert_eq!(m.external_ns, truth.external_ns);
            assert_eq!(m.internal_ns, truth.internal_ns);
        }
    }

    #[test]
    fn external_latency_matches_geography() {
        // LA-only external mix: external latency ≈ AKL-LAX RTT ~105-140ms.
        let cfg = GenConfig {
            external_weights: vec![(LOS_ANGELES, 1)],
            internal_cities: vec![AUCKLAND],
            data_exchanges: (0, 0),
            flows_per_sec: 100.0,
            duration: Timestamp::from_secs(2),
            ..small_config()
        };
        let mut gen = TrafficGen::new(cfg);
        for _ in gen.by_ref() {}
        let truths = gen.truths();
        assert!(!truths.is_empty());
        for t in truths {
            let ms = t.external_ns as f64 / 1e6;
            assert!((100.0..160.0).contains(&ms), "external {ms} ms");
            let int_ms = t.internal_ns as f64 / 1e6;
            assert!(int_ms < 10.0, "internal {int_ms} ms should be small");
        }
    }

    #[test]
    fn firewall_anomaly_stretches_affected_flows_only() {
        let cfg = GenConfig {
            anomalies: vec![Anomaly::firewall_4s(
                Timestamp::from_millis(500),
                Timestamp::from_millis(700),
            )],
            data_exchanges: (0, 0),
            ..small_config()
        };
        let mut gen = TrafficGen::new(cfg);
        for _ in gen.by_ref() {}
        let truths = gen.truths();
        let (hit, clean): (Vec<&FlowTruth>, Vec<&FlowTruth>) =
            truths.iter().partition(|t| t.anomalous);
        assert!(!hit.is_empty(), "some flows start inside the window");
        assert!(!clean.is_empty());
        for t in &hit {
            assert!(
                t.t_syn_tap >= Timestamp::from_millis(500)
                    && t.t_syn_tap < Timestamp::from_millis(700)
            );
            assert!(t.external_ns >= 4_000_000_000);
        }
        for t in &clean {
            assert!(t.external_ns < 1_000_000_000);
        }
    }

    #[test]
    fn congestion_shift_invisible_to_handshakes_but_not_inflow() {
        // Elephant flows: every handshake completes before the shift
        // window opens, so handshake-only measurement sees a clean run —
        // while the in-flow RTT stream jumps for every exchange inside
        // the window. LA-only external mix keeps the clean data-leg RTT
        // below ~150 ms (2×OWD + jitter + proc), so the 60 ms shift
        // separates the populations deterministically.
        let shift_start = Timestamp::from_secs(4);
        let shift_end = Timestamp::from_secs(8);
        let cfg = GenConfig {
            external_weights: vec![(LOS_ANGELES, 1)],
            internal_cities: vec![AUCKLAND],
            ..GenConfig::elephant_flows(
                21,
                Timestamp::from_secs(1),
                shift_start,
                shift_end,
                60_000_000,
            )
        };
        let mut gen = TrafficGen::new(cfg);
        let mut tracker = HandshakeTracker::new(0, TrackerConfig::default());
        let mut inflow =
            ruru_flow::InflowTracker::new(0, ruru_flow::InflowConfig::default());
        let mut handshake_max = 0u64;
        let mut pre = Vec::new(); // samples observed before the window
        let mut during = Vec::new(); // samples observed inside it
        for ev in gen.by_ref() {
            let meta = classify(&ev.frame, ev.at, ChecksumMode::Validate).unwrap();
            if let Some(m) = tracker.process(&meta) {
                handshake_max = handshake_max.max(m.external_ns + m.internal_ns);
            }
            if let Some(rtt) = inflow.process(&meta) {
                if ev.at < shift_start {
                    pre.push(rtt);
                } else if ev.at < shift_end {
                    during.push(rtt);
                }
            }
        }
        assert!(!gen.truths().is_empty());
        assert!(
            gen.truths().iter().all(|t| t.t_syn_tap < Timestamp::from_secs(1)),
            "all flows set up before the shift"
        );
        // Handshake-only view: nothing anomalous, ever.
        assert!(
            handshake_max < 160_000_000,
            "handshakes stay clean: {handshake_max} ns"
        );
        assert!(pre.len() > 100 && during.len() > 100, "both phases sampled");
        // Before the window no external data leg exceeds clean AKL↔LAX.
        assert!(pre.iter().all(|&r| r < 160_000_000));
        // Inside it, shifted exchanges are unmistakable: ≥ 2×OWD + 60 ms.
        let shifted = during.iter().filter(|&&r| r >= 160_000_000).count();
        assert!(
            shifted > 50,
            "in-flow sampling sees the regression: {shifted} of {}",
            during.len()
        );
    }

    #[test]
    fn syn_flood_emits_extra_syns_without_truth_entries() {
        let cfg = GenConfig {
            flows_per_sec: 10.0,
            duration: Timestamp::from_secs(1),
            anomalies: vec![Anomaly::SynFlood {
                start: Timestamp::from_millis(200),
                end: Timestamp::from_millis(400),
                syns_per_sec: 5_000,
                target_city: LOS_ANGELES,
            }],
            ..small_config()
        };
        let mut gen = TrafficGen::new(cfg);
        let mut syn_count = 0u64;
        for ev in gen.by_ref() {
            let meta = classify(&ev.frame, ev.at, ChecksumMode::Trust).unwrap();
            if meta.flags.is_syn_only() {
                syn_count += 1;
            }
        }
        let (flows, floods, _) = gen.stats();
        assert!(floods > 500, "flood SYNs injected: {floods}");
        assert_eq!(gen.truths().len() as u64, flows);
        assert!(syn_count >= floods + flows);
    }

    #[test]
    fn diurnal_profile_shapes_arrivals() {
        // One simulated day at low resolution: night hours must carry far
        // fewer flows than the evening peak.
        let cfg = GenConfig {
            seed: 77,
            flows_per_sec: 2.0,
            duration: Timestamp::from_secs(86_400),
            data_exchanges: (0, 0),
            rate_profile: RateProfile::diurnal(),
            tcp_timestamps: false,
            ..GenConfig::default()
        };
        let mut gen = TrafficGen::new(cfg);
        for _ in gen.by_ref() {}
        let mut per_hour = [0u32; 24];
        for t in gen.truths() {
            per_hour[(t.t_syn_tap.as_nanos() / 1_000_000_000 / 3600) as usize % 24] += 1;
        }
        let night: u32 = per_hour[2..5].iter().sum();
        let evening: u32 = per_hour[19..22].iter().sum();
        assert!(
            (evening as f64) > 2.5 * night as f64,
            "evening {evening} vs night {night}: {per_hour:?}"
        );
    }

    #[test]
    fn rate_profile_multiplier_interpolates() {
        let p = RateProfile::diurnal();
        let h3 = p.multiplier_at(Timestamp::from_secs(3 * 3600));
        let h3_5 = p.multiplier_at(Timestamp::from_secs(3 * 3600 + 1800));
        let h4 = p.multiplier_at(Timestamp::from_secs(4 * 3600));
        assert!((h3_5 - (h3 + h4) / 2.0).abs() < 1e-9, "midpoint interpolates");
        // Wraps at midnight.
        let h23_5 = p.multiplier_at(Timestamp::from_secs(23 * 3600 + 1800));
        let day2 = p.multiplier_at(Timestamp::from_secs(86_400 + 23 * 3600 + 1800));
        assert_eq!(h23_5, day2);
        assert_eq!(RateProfile::Constant.multiplier_at(Timestamp::ZERO), 1.0);
        assert!(p.peak() >= 1.5);
    }

    #[test]
    fn zero_rate_produces_no_flows() {
        let cfg = GenConfig {
            flows_per_sec: 0.0,
            ..small_config()
        };
        let mut gen = TrafficGen::new(cfg);
        assert!(gen.next().is_none());
    }

    #[test]
    fn truth_recording_can_be_disabled() {
        let cfg = GenConfig {
            record_truth: false,
            ..small_config()
        };
        let mut gen = TrafficGen::new(cfg);
        for _ in gen.by_ref() {}
        assert!(gen.truths().is_empty());
        assert!(gen.stats().0 > 0);
    }
}
