//! Injectable anomalies — the ground truth for the detection experiments.
//!
//! §3 of the paper describes two real incidents Ruru surfaced: a periodic
//! firewall update adding **4000 ms** to every connection started inside a
//! short nightly window, and SYN floods. Both are reproduced here as
//! deterministic injections so detector precision/recall can be computed.

use ruru_nic::Timestamp;

/// An anomaly active during `[start, end)` of simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anomaly {
    /// Connections *started* inside the window take `extra_ns` longer to
    /// complete setup on the external side (the firewall holds the SYN).
    SetupLatencySpike {
        /// Window start.
        start: Timestamp,
        /// Window end (exclusive).
        end: Timestamp,
        /// Added external latency in nanoseconds (the paper's case: 4 s).
        extra_ns: u64,
    },
    /// A flood of spoofed SYNs (never completed) toward one server.
    SynFlood {
        /// Window start.
        start: Timestamp,
        /// Window end (exclusive).
        end: Timestamp,
        /// Flood rate in SYNs per second.
        syns_per_sec: u64,
        /// City index hosting the victim (victim address is sampled there).
        target_city: usize,
    },
}

impl Anomaly {
    /// The paper's firewall incident: 4000 ms added to all connections
    /// started within the window.
    pub fn firewall_4s(start: Timestamp, end: Timestamp) -> Anomaly {
        Anomaly::SetupLatencySpike {
            start,
            end,
            extra_ns: 4_000_000_000,
        }
    }

    /// The anomaly's active window.
    pub fn window(&self) -> (Timestamp, Timestamp) {
        match self {
            Anomaly::SetupLatencySpike { start, end, .. } => (*start, *end),
            Anomaly::SynFlood { start, end, .. } => (*start, *end),
        }
    }

    /// True if `t` falls inside the window.
    pub fn active_at(&self, t: Timestamp) -> bool {
        let (s, e) = self.window();
        t >= s && t < e
    }

    /// The extra setup latency this anomaly imposes on a flow starting at
    /// `t` (zero for non-latency anomalies).
    pub fn extra_setup_ns(&self, t: Timestamp) -> u64 {
        match self {
            Anomaly::SetupLatencySpike { extra_ns, .. } if self.active_at(t) => *extra_ns,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firewall_window_boundaries() {
        let a = Anomaly::firewall_4s(Timestamp::from_secs(10), Timestamp::from_secs(40));
        assert!(!a.active_at(Timestamp::from_secs(9)));
        assert!(a.active_at(Timestamp::from_secs(10)));
        assert!(a.active_at(Timestamp::from_secs(39)));
        assert!(!a.active_at(Timestamp::from_secs(40)));
        assert_eq!(a.extra_setup_ns(Timestamp::from_secs(20)), 4_000_000_000);
        assert_eq!(a.extra_setup_ns(Timestamp::from_secs(50)), 0);
    }

    #[test]
    fn synflood_has_no_latency_effect() {
        let a = Anomaly::SynFlood {
            start: Timestamp::ZERO,
            end: Timestamp::from_secs(1),
            syns_per_sec: 1000,
            target_city: 0,
        };
        assert!(a.active_at(Timestamp::from_millis(500)));
        assert_eq!(a.extra_setup_ns(Timestamp::from_millis(500)), 0);
    }
}
