//! Injectable anomalies — the ground truth for the detection experiments.
//!
//! §3 of the paper describes two real incidents Ruru surfaced: a periodic
//! firewall update adding **4000 ms** to every connection started inside a
//! short nightly window, and SYN floods. Both are reproduced here as
//! deterministic injections so detector precision/recall can be computed.

use ruru_nic::Timestamp;

/// An anomaly active during `[start, end)` of simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anomaly {
    /// Connections *started* inside the window take `extra_ns` longer to
    /// complete setup on the external side (the firewall holds the SYN).
    SetupLatencySpike {
        /// Window start.
        start: Timestamp,
        /// Window end (exclusive).
        end: Timestamp,
        /// Added external latency in nanoseconds (the paper's case: 4 s).
        extra_ns: u64,
    },
    /// A congestion event on the external path: request/response exchanges
    /// whose server leg happens inside the window take `extra_ns` longer,
    /// regardless of when the flow's handshake completed. Invisible to
    /// handshake-only measurement — flows set up before the window keep
    /// their clean setup RTT — but the continuous in-flow RTT path sees
    /// every affected exchange.
    MidFlowLatencyShift {
        /// Window start.
        start: Timestamp,
        /// Window end (exclusive).
        end: Timestamp,
        /// Added external one-way response delay in nanoseconds.
        extra_ns: u64,
    },
    /// A flood of spoofed SYNs (never completed) toward one server.
    SynFlood {
        /// Window start.
        start: Timestamp,
        /// Window end (exclusive).
        end: Timestamp,
        /// Flood rate in SYNs per second.
        syns_per_sec: u64,
        /// City index hosting the victim (victim address is sampled there).
        target_city: usize,
    },
}

impl Anomaly {
    /// The paper's firewall incident: 4000 ms added to all connections
    /// started within the window.
    pub fn firewall_4s(start: Timestamp, end: Timestamp) -> Anomaly {
        Anomaly::SetupLatencySpike {
            start,
            end,
            extra_ns: 4_000_000_000,
        }
    }

    /// A mid-flow congestion shift: 60 ms added to every data exchange
    /// whose server leg falls inside the window (the elephant-flow
    /// scenario's regression, invisible to handshake-only sampling).
    pub fn congestion_shift_60ms(start: Timestamp, end: Timestamp) -> Anomaly {
        Anomaly::MidFlowLatencyShift {
            start,
            end,
            extra_ns: 60_000_000,
        }
    }

    /// The anomaly's active window.
    pub fn window(&self) -> (Timestamp, Timestamp) {
        match self {
            Anomaly::SetupLatencySpike { start, end, .. } => (*start, *end),
            Anomaly::MidFlowLatencyShift { start, end, .. } => (*start, *end),
            Anomaly::SynFlood { start, end, .. } => (*start, *end),
        }
    }

    /// True if `t` falls inside the window.
    pub fn active_at(&self, t: Timestamp) -> bool {
        let (s, e) = self.window();
        t >= s && t < e
    }

    /// The extra setup latency this anomaly imposes on a flow starting at
    /// `t` (zero for non-latency anomalies).
    pub fn extra_setup_ns(&self, t: Timestamp) -> u64 {
        match self {
            Anomaly::SetupLatencySpike { extra_ns, .. } if self.active_at(t) => *extra_ns,
            _ => 0,
        }
    }

    /// The extra delay this anomaly imposes on a data exchange whose
    /// request passes the tap at `t` (zero for setup-only anomalies:
    /// the firewall holds SYNs, not established traffic).
    pub fn extra_data_ns(&self, t: Timestamp) -> u64 {
        match self {
            Anomaly::MidFlowLatencyShift { extra_ns, .. } if self.active_at(t) => *extra_ns,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firewall_window_boundaries() {
        let a = Anomaly::firewall_4s(Timestamp::from_secs(10), Timestamp::from_secs(40));
        assert!(!a.active_at(Timestamp::from_secs(9)));
        assert!(a.active_at(Timestamp::from_secs(10)));
        assert!(a.active_at(Timestamp::from_secs(39)));
        assert!(!a.active_at(Timestamp::from_secs(40)));
        assert_eq!(a.extra_setup_ns(Timestamp::from_secs(20)), 4_000_000_000);
        assert_eq!(a.extra_setup_ns(Timestamp::from_secs(50)), 0);
    }

    #[test]
    fn congestion_shift_affects_data_not_setup() {
        let a = Anomaly::congestion_shift_60ms(Timestamp::from_secs(4), Timestamp::from_secs(8));
        // Setup path untouched: a flow starting mid-window still gets a
        // clean handshake.
        assert_eq!(a.extra_setup_ns(Timestamp::from_secs(5)), 0);
        // Data exchanges inside the window are stretched; outside, clean.
        assert_eq!(a.extra_data_ns(Timestamp::from_secs(3)), 0);
        assert_eq!(a.extra_data_ns(Timestamp::from_secs(4)), 60_000_000);
        assert_eq!(a.extra_data_ns(Timestamp::from_secs(7)), 60_000_000);
        assert_eq!(a.extra_data_ns(Timestamp::from_secs(8)), 0);
        // The firewall anomaly is the mirror image.
        let fw = Anomaly::firewall_4s(Timestamp::from_secs(4), Timestamp::from_secs(8));
        assert_eq!(fw.extra_data_ns(Timestamp::from_secs(5)), 0);
        assert_eq!(fw.extra_setup_ns(Timestamp::from_secs(5)), 4_000_000_000);
    }

    #[test]
    fn synflood_has_no_latency_effect() {
        let a = Anomaly::SynFlood {
            start: Timestamp::ZERO,
            end: Timestamp::from_secs(1),
            syns_per_sec: 1000,
            target_city: 0,
        };
        assert!(a.active_at(Timestamp::from_millis(500)));
        assert_eq!(a.extra_setup_ns(Timestamp::from_millis(500)), 0);
    }
}
