//! The path latency model.
//!
//! One-way delay between two points = great-circle distance at the speed of
//! light in fiber (~200,000 km/s ⇒ 5 µs/km), multiplied by a route
//! inflation factor (real paths are not great circles), plus per-hop
//! queueing/forwarding delay, plus exponential jitter. These are the
//! standard ingredients of transit latency models and land the simulated
//! Auckland↔Los Angeles RTT in the ~130 ms band REANNZ observed.

use rand::Rng;
use ruru_geo::synth::{distance_km, CITIES};

/// Nanoseconds of one-way propagation per kilometre of fiber.
pub const NS_PER_KM: f64 = 5_000.0;

/// Parameters of the latency model.
#[derive(Debug, Clone)]
pub struct PathModel {
    /// Multiplier on great-circle distance (cable routing detours).
    pub route_inflation: f64,
    /// Fixed one-way floor: local loop + first/last router, ns.
    pub owd_floor_ns: u64,
    /// Mean of the exponential per-packet jitter, ns.
    pub jitter_mean_ns: u64,
    /// Server SYN-ACK processing delay range (uniform), ns.
    pub server_proc_ns: (u64, u64),
    /// Client ACK turnaround delay range (uniform), ns.
    pub client_proc_ns: (u64, u64),
}

impl Default for PathModel {
    fn default() -> Self {
        PathModel {
            route_inflation: 1.2,
            owd_floor_ns: 250_000,          // 0.25 ms
            jitter_mean_ns: 150_000,        // 0.15 ms
            server_proc_ns: (50_000, 1_000_000), // 0.05–1 ms
            client_proc_ns: (20_000, 500_000),   // 0.02–0.5 ms
        }
    }
}

impl PathModel {
    /// Deterministic baseline one-way delay between two cities (no jitter).
    pub fn base_owd_ns(&self, city_a: usize, city_b: usize) -> u64 {
        let a = &CITIES[city_a];
        let b = &CITIES[city_b];
        let d = distance_km(a.lat, a.lon, b.lat, b.lon);
        (d * NS_PER_KM * self.route_inflation) as u64 + self.owd_floor_ns
    }

    /// Sample a jittered one-way delay.
    pub fn sample_owd_ns(&self, city_a: usize, city_b: usize, rng: &mut impl Rng) -> u64 {
        self.base_owd_ns(city_a, city_b) + self.sample_jitter_ns(rng)
    }

    /// Sample exponential jitter.
    pub fn sample_jitter_ns(&self, rng: &mut impl Rng) -> u64 {
        if self.jitter_mean_ns == 0 {
            return 0;
        }
        let u: f64 = rng.gen_range(1e-9..1.0);
        (-(u.ln()) * self.jitter_mean_ns as f64) as u64
    }

    /// Sample the server's handshake processing delay.
    pub fn sample_server_proc_ns(&self, rng: &mut impl Rng) -> u64 {
        rng.gen_range(self.server_proc_ns.0..=self.server_proc_ns.1)
    }

    /// Sample the client's ACK turnaround delay.
    pub fn sample_client_proc_ns(&self, rng: &mut impl Rng) -> u64 {
        rng.gen_range(self.client_proc_ns.0..=self.client_proc_ns.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ruru_geo::synth::{AUCKLAND, LOS_ANGELES};

    #[test]
    fn auckland_la_rtt_lands_near_observed_130ms() {
        let m = PathModel::default();
        let owd = m.base_owd_ns(AUCKLAND, LOS_ANGELES);
        let rtt_ms = 2.0 * owd as f64 / 1e6;
        // Observed trans-Pacific AKL-LAX RTT is ~128-135 ms.
        assert!((115.0..150.0).contains(&rtt_ms), "rtt {rtt_ms} ms");
    }

    #[test]
    fn same_city_hits_the_floor() {
        let m = PathModel::default();
        assert_eq!(m.base_owd_ns(AUCKLAND, AUCKLAND), m.owd_floor_ns);
    }

    #[test]
    fn owd_is_symmetric() {
        let m = PathModel::default();
        assert_eq!(m.base_owd_ns(0, 5), m.base_owd_ns(5, 0));
    }

    #[test]
    fn jitter_is_positive_with_sane_mean() {
        let m = PathModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| m.sample_jitter_ns(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        let expect = m.jitter_mean_ns as f64;
        assert!(
            (mean - expect).abs() < expect * 0.1,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn zero_jitter_model_is_deterministic() {
        let m = PathModel {
            jitter_mean_ns: 0,
            ..PathModel::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            m.sample_owd_ns(0, 1, &mut rng),
            m.base_owd_ns(0, 1)
        );
    }

    #[test]
    fn proc_delays_within_bounds() {
        let m = PathModel::default();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let s = m.sample_server_proc_ns(&mut rng);
            assert!((m.server_proc_ns.0..=m.server_proc_ns.1).contains(&s));
            let c = m.sample_client_proc_ns(&mut rng);
            assert!((m.client_proc_ns.0..=m.client_proc_ns.1).contains(&c));
        }
    }
}
