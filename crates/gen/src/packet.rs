//! Checksummed TCP/IP frame construction, dual-stack.
//!
//! The single frame builder used by the generator, the integration tests
//! and the benches. Frames are always internally consistent (lengths and
//! checksums), so `classify` in validate mode accepts them — and fault
//! injection then has something real to corrupt.

use ruru_wire::checksum::PseudoHeader;
use ruru_wire::{ethernet, ipv4, ipv6, tcp};

/// Source/destination addresses of one packet, either family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrPair {
    /// IPv4 endpoints.
    V4([u8; 4], [u8; 4]),
    /// IPv6 endpoints.
    V6([u8; 16], [u8; 16]),
}

impl AddrPair {
    /// The pair with source and destination swapped (the reply direction).
    pub fn flipped(&self) -> AddrPair {
        match *self {
            AddrPair::V4(s, d) => AddrPair::V4(d, s),
            AddrPair::V6(s, d) => AddrPair::V6(d, s),
        }
    }

    /// The source as a wire-level address.
    pub fn src(&self) -> ruru_wire::IpAddress {
        match *self {
            AddrPair::V4(s, _) => ruru_wire::IpAddress::V4(ipv4::Address(s)),
            AddrPair::V6(s, _) => ruru_wire::IpAddress::V6(ipv6::Address(s)),
        }
    }

    /// The destination as a wire-level address.
    pub fn dst(&self) -> ruru_wire::IpAddress {
        match *self {
            AddrPair::V4(_, d) => ruru_wire::IpAddress::V4(ipv4::Address(d)),
            AddrPair::V6(_, d) => ruru_wire::IpAddress::V6(ipv6::Address(d)),
        }
    }
}

/// Everything needed to emit one TCP packet.
#[derive(Debug, Clone)]
pub struct TcpPacketSpec {
    /// Endpoint addresses (either family).
    pub pair: AddrPair,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags.
    pub flags: tcp::Flags,
    /// TCP payload length (filled with a deterministic byte pattern).
    pub payload_len: usize,
    /// TCP timestamps option, if any.
    pub timestamps: Option<(u32, u32)>,
}

impl TcpPacketSpec {
    /// A zero-payload spec with the given flags (IPv4 convenience).
    pub fn control(
        src: [u8; 4],
        dst: [u8; 4],
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: tcp::Flags,
    ) -> TcpPacketSpec {
        Self::control_pair(AddrPair::V4(src, dst), src_port, dst_port, seq, ack, flags)
    }

    /// A zero-payload spec for either address family.
    pub fn control_pair(
        pair: AddrPair,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: tcp::Flags,
    ) -> TcpPacketSpec {
        TcpPacketSpec {
            pair,
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            payload_len: 0,
            timestamps: None,
        }
    }

    /// Attach a TCP timestamps option.
    pub fn with_timestamps(mut self, tsval: u32, tsecr: u32) -> TcpPacketSpec {
        self.timestamps = Some((tsval, tsecr));
        self
    }

    /// Set the payload length.
    pub fn with_payload(mut self, len: usize) -> TcpPacketSpec {
        self.payload_len = len;
        self
    }

    fn tcp_repr(&self) -> tcp::Repr {
        let mut options = tcp::OptionList::default();
        if self.flags.is_syn_only() {
            options.push(tcp::TcpOption::Mss(1460)).expect("fits");
        }
        if let Some((tsval, tsecr)) = self.timestamps {
            options
                .push(tcp::TcpOption::Timestamps { tsval, tsecr })
                .expect("fits");
        }
        tcp::Repr {
            src_port: self.src_port,
            dst_port: self.dst_port,
            seq: self.seq,
            ack: self.ack,
            flags: self.flags,
            window: 65535,
            options,
        }
    }

    fn fill_payload(buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(31).wrapping_add(7);
        }
    }

    /// Build the Ethernet frame.
    pub fn build(&self) -> Vec<u8> {
        let tcp_repr = self.tcp_repr();
        let tcp_len = tcp_repr.header_len() + self.payload_len;
        match self.pair {
            AddrPair::V4(src, dst) => {
                let ip_repr = ipv4::Repr {
                    src: ipv4::Address(src),
                    dst: ipv4::Address(dst),
                    protocol: ipv4::Protocol::Tcp,
                    ttl: 58,
                    payload_len: tcp_len,
                };
                let mut buf = vec![0u8; ethernet::HEADER_LEN + ip_repr.total_len()];
                ethernet::Repr {
                    src: ethernet::Address([2, 0, 0, 0, 0, 1]),
                    dst: ethernet::Address([2, 0, 0, 0, 0, 2]),
                    ethertype: ethernet::EtherType::Ipv4,
                }
                .emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
                let mut ip = ipv4::Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
                ip_repr.emit(&mut ip);
                let ph: PseudoHeader = ip_repr.pseudo_header();
                let hdr_len = tcp_repr.header_len();
                let tcp_buf = ip.payload_mut();
                Self::fill_payload(&mut tcp_buf[hdr_len..]);
                let mut seg = tcp::Packet::new_unchecked(tcp_buf);
                tcp_repr.emit(&mut seg, &ph);
                buf
            }
            AddrPair::V6(src, dst) => {
                let ip_repr = ipv6::Repr {
                    src: ipv6::Address(src),
                    dst: ipv6::Address(dst),
                    protocol: ipv4::Protocol::Tcp,
                    hop_limit: 58,
                    payload_len: tcp_len,
                };
                let mut buf = vec![0u8; ethernet::HEADER_LEN + ip_repr.total_len()];
                ethernet::Repr {
                    src: ethernet::Address([2, 0, 0, 0, 0, 1]),
                    dst: ethernet::Address([2, 0, 0, 0, 0, 2]),
                    ethertype: ethernet::EtherType::Ipv6,
                }
                .emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
                let mut ip = ipv6::Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
                ip_repr.emit(&mut ip);
                let ph = ip_repr.pseudo_header();
                let hdr_len = tcp_repr.header_len();
                let tcp_buf = ip.payload_mut();
                Self::fill_payload(&mut tcp_buf[hdr_len..]);
                let mut seg = tcp::Packet::new_unchecked(tcp_buf);
                tcp_repr.emit(&mut seg, &ph);
                buf
            }
        }
    }
}

/// Build an IPv6 TCP control frame (kept for tests that want one call).
pub fn build_v6_control(
    src: [u8; 16],
    dst: [u8; 16],
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: tcp::Flags,
) -> Vec<u8> {
    TcpPacketSpec::control_pair(AddrPair::V6(src, dst), src_port, dst_port, seq, ack, flags).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruru_flow::classify::{classify, ChecksumMode};
    use ruru_nic::Timestamp;

    #[test]
    fn built_frames_pass_validation() {
        let frame = TcpPacketSpec::control(
            [100, 0, 0, 1],
            [100, 8, 0, 1],
            51000,
            443,
            1234,
            0,
            tcp::Flags::SYN,
        )
        .with_timestamps(99, 0)
        .build();
        let meta = classify(&frame, Timestamp::ZERO, ChecksumMode::Validate).unwrap();
        assert!(meta.flags.is_syn_only());
        assert_eq!(meta.timestamps, Some((99, 0)));
        assert_eq!(meta.payload_len, 0);
    }

    #[test]
    fn payload_frames_validate() {
        let frame = TcpPacketSpec::control(
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            1,
            2,
            10,
            20,
            tcp::Flags::ACK | tcp::Flags::PSH,
        )
        .with_payload(512)
        .build();
        let meta = classify(&frame, Timestamp::ZERO, ChecksumMode::Validate).unwrap();
        assert_eq!(meta.payload_len, 512);
    }

    #[test]
    fn syn_carries_mss_option() {
        let frame = TcpPacketSpec::control(
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            1,
            2,
            0,
            0,
            tcp::Flags::SYN,
        )
        .build();
        let eth = ethernet::Frame::new_checked(&frame[..]).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        let seg = tcp::Packet::new_checked(ip.payload()).unwrap();
        let has_mss = seg
            .options()
            .any(|o| matches!(o, Ok(tcp::TcpOption::Mss(1460))));
        assert!(has_mss);
    }

    #[test]
    fn v6_frames_validate() {
        let frame = build_v6_control(
            [0x24; 16],
            [0x26; 16],
            50000,
            443,
            7,
            0,
            tcp::Flags::SYN,
        );
        let meta = classify(&frame, Timestamp::ZERO, ChecksumMode::Validate).unwrap();
        assert!(!meta.src.is_v4());
        assert!(meta.flags.is_syn_only());
    }

    #[test]
    fn v6_payload_frames_validate() {
        let frame = TcpPacketSpec::control_pair(
            AddrPair::V6([0x24; 16], [0x26; 16]),
            50000,
            443,
            7,
            8,
            tcp::Flags::ACK | tcp::Flags::PSH,
        )
        .with_payload(700)
        .with_timestamps(5, 6)
        .build();
        let meta = classify(&frame, Timestamp::ZERO, ChecksumMode::Validate).unwrap();
        assert_eq!(meta.payload_len, 700);
        assert_eq!(meta.timestamps, Some((5, 6)));
    }

    #[test]
    fn addr_pair_helpers() {
        let p = AddrPair::V4([1, 2, 3, 4], [5, 6, 7, 8]);
        assert_eq!(p.flipped(), AddrPair::V4([5, 6, 7, 8], [1, 2, 3, 4]));
        assert!(p.src().is_v4());
        let p6 = AddrPair::V6([1; 16], [2; 16]);
        assert!(!p6.flipped().src().is_v4());
        assert_eq!(p6.flipped().dst(), p6.src());
    }
}
