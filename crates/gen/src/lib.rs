#![warn(missing_docs)]

//! # ruru-gen — synthetic Internet traffic with ground truth
//!
//! The paper deploys Ruru on a tapped 10 Gbit/s Auckland↔Los Angeles link
//! carrying live user traffic. We cannot ship that link, so this crate
//! generates the closest controllable equivalent: TCP flows between real
//! city locations, with handshake timing derived from great-circle
//! propagation delays plus realistic jitter — **and the ground truth
//! recorded**, which the live link could never provide. Every experiment's
//! accuracy claims are checked against this truth.
//!
//! * [`packet`] — checksummed Ethernet/IPv4/IPv6+TCP frame builders.
//! * [`model`] — the path latency model (fiber propagation × route
//!   inflation + hop delay + jitter) and per-flow delay sampling.
//! * [`generator`] — Poisson flow arrivals over a weighted city-pair mix;
//!   emits a time-ordered stream of tap events (frames with timestamps) and
//!   a [`generator::FlowTruth`] log.
//! * [`anomaly`] — injectable anomalies: the nightly firewall window that
//!   adds 4000 ms to connection setup (the paper's case study), and SYN
//!   floods (its second detection example).

pub mod anomaly;
pub mod generator;
pub mod model;
pub mod packet;

pub use anomaly::Anomaly;
pub use generator::{Event, FlowTruth, GenConfig, RateProfile, TrafficGen};
pub use model::PathModel;
