//! A workspace-local, loom-compatible concurrency model checker.
//!
//! This crate provides drop-in shims for the `std::sync` / `std::cell` /
//! `std::thread` primitives used by Ruru's hot path, plus [`model`], which
//! runs a closure under every thread interleaving (bounded by a CHESS-style
//! preemption budget) and fails with a reproducible schedule on the first
//! assertion failure, data race, or deadlock. The library is named `loom`
//! and mirrors the upstream crate's API surface that the workspace needs,
//! so shimmed crates can write `use loom::...` under `cfg(loom)` exactly as
//! they would against the real crate (the build environment is offline, so
//! the checker lives in-tree).
//!
//! Two modes:
//!
//! - **Inside [`model`]**: every primitive routes through the serializing
//!   scheduler in [`rt`]. Atomics carry release/acquire vector clocks,
//!   [`cell::UnsafeCell`] accesses are checked for happens-before races,
//!   mutexes/condvars block threads at the scheduler level, and every
//!   visible operation is a scheduling point.
//! - **Outside [`model`]** (e.g. ordinary unit tests or doctests compiled
//!   with `--cfg loom`): every primitive transparently falls back to plain
//!   `std` behavior, so a `--cfg loom` build of the whole workspace still
//!   runs its regular test suite.
//!
//! Knobs (environment variables): `LOOM_MAX_PREEMPTIONS` (default 2),
//! `LOOM_MAX_BRANCHES` (per-execution operation cap, default 50 000),
//! `LOOM_MAX_EXECUTIONS` (default 500 000).

#![warn(missing_docs)]

mod rt;

use rt::{vc_join, vc_leq, Blocker, Point, VClock};
use std::sync::Mutex as StdMutex;

/// Run `f` under every explored thread interleaving.
///
/// Panics (re-raising the model's own panic) if any execution fails an
/// assertion, races on an [`cell::UnsafeCell`], or deadlocks; the failing
/// schedule is printed to stderr first.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    rt::model(f);
}

/// Lock a meta mutex, tolerating poison (an abandoned execution may have
/// unwound while holding it; the data is still consistent because model
/// threads are serialized).
fn plock<T>(m: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// cell
// ---------------------------------------------------------------------------

/// Checked interior mutability.
pub mod cell {
    use super::*;

    #[derive(Default)]
    struct CellMeta {
        /// Clock of the last write.
        writes: VClock,
        /// Join of the clocks of all reads since the last write.
        reads: VClock,
    }

    /// An `UnsafeCell` that, inside [`crate::model`], checks every access
    /// against the happens-before relation and fails the execution on a
    /// data race. Outside a model it is a plain `std` `UnsafeCell`.
    ///
    /// Access is through closures (`with` / `with_mut`) rather than `get`,
    /// so each access is a single checkable event.
    #[derive(Default)]
    pub struct UnsafeCell<T> {
        data: std::cell::UnsafeCell<T>,
        meta: StdMutex<CellMeta>,
    }

    impl<T> UnsafeCell<T> {
        /// Wrap `value`.
        pub const fn new(value: T) -> UnsafeCell<T> {
            UnsafeCell {
                data: std::cell::UnsafeCell::new(value),
                meta: StdMutex::new(CellMeta {
                    writes: Vec::new(),
                    reads: Vec::new(),
                }),
            }
        }

        /// Unwrap the value.
        pub fn into_inner(self) -> T {
            self.data.into_inner()
        }

        /// Immutable (shared) access: the pointer must only be read.
        ///
        /// In a model, fails the execution if a write to this cell has not
        /// happened-before the calling thread.
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            if rt::in_model() {
                rt::sync_point(Point::Op);
                let race = {
                    let mut meta = plock(&self.meta);
                    rt::with_my_clock(|mine| {
                        if vc_leq(&meta.writes, mine) {
                            let mine = mine.clone();
                            vc_join(&mut meta.reads, &mine);
                            false
                        } else {
                            true
                        }
                    })
                };
                if race {
                    rt::fail("data race: unsynchronized read of UnsafeCell concurrent with a write".into());
                }
            }
            f(self.data.get())
        }

        /// Mutable (exclusive) access: the pointer may be written.
        ///
        /// In a model, fails the execution if any prior read or write of
        /// this cell has not happened-before the calling thread.
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            if rt::in_model() {
                rt::sync_point(Point::Op);
                let race = {
                    let mut meta = plock(&self.meta);
                    rt::with_my_clock(|mine| {
                        if vc_leq(&meta.writes, mine) && vc_leq(&meta.reads, mine) {
                            meta.writes = mine.clone();
                            meta.reads.clear();
                            false
                        } else {
                            true
                        }
                    })
                };
                if race {
                    rt::fail("data race: unsynchronized write of UnsafeCell concurrent with another access".into());
                }
            }
            f(self.data.get())
        }
    }

    // SAFETY: sending the cell moves the contained `T` between threads,
    // which is exactly `T: Send`; the tracking metadata is `Send` already.
    unsafe impl<T: Send> Send for UnsafeCell<T> {}
}

// ---------------------------------------------------------------------------
// hint
// ---------------------------------------------------------------------------

/// Spin-loop hint that doubles as a scheduling point in models.
pub mod hint {
    use super::*;

    /// In a model, a voluntary yield point (so spin loops cannot starve
    /// the thread they are waiting on); otherwise `std::hint::spin_loop`.
    pub fn spin_loop() {
        if rt::in_model() {
            rt::sync_point(Point::Yield);
        } else {
            std::hint::spin_loop();
        }
    }
}

// ---------------------------------------------------------------------------
// sync
// ---------------------------------------------------------------------------

/// Synchronization primitives: atomics, `Mutex`, `Condvar`, `RwLock`.
pub mod sync {
    use super::*;
    use std::ops::{Deref, DerefMut};
    use std::time::Duration;

    pub use std::sync::{Arc, LockResult, PoisonError, TryLockError, Weak};

    /// Model-aware atomic types.
    pub mod atomic {
        use super::super::*;

        pub use std::sync::atomic::Ordering;

        /// Acquire-side happens-before: join the atomic's published clock
        /// into the loading thread's clock.
        fn hb_load(meta: &StdMutex<VClock>, order: Ordering) {
            if matches!(order, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
                let meta = plock(meta);
                rt::with_my_clock(|mine| vc_join(mine, &meta));
            }
        }

        /// Release-side happens-before for a plain store: a release store
        /// publishes the writer's clock; a relaxed store publishes nothing
        /// (and ends any release sequence headed at this atomic).
        fn hb_store(meta: &StdMutex<VClock>, order: Ordering) {
            let mut meta = plock(meta);
            if matches!(order, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
                rt::with_my_clock(|mine| *meta = mine.clone());
            } else {
                meta.clear();
            }
        }

        /// Read-modify-write happens-before: may acquire the published
        /// clock, may join its own clock into it; a relaxed RMW leaves the
        /// published clock intact (it continues the release sequence).
        fn hb_rmw(meta: &StdMutex<VClock>, order: Ordering) {
            let mut meta = plock(meta);
            rt::with_my_clock(|mine| {
                if matches!(order, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
                    vc_join(mine, &meta);
                }
                if matches!(order, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
                    let snapshot = mine.clone();
                    vc_join(&mut meta, &snapshot);
                }
            });
        }

        macro_rules! atomic_int {
            ($(#[$attr:meta])* $name:ident, $std:ident, $prim:ty) => {
                $(#[$attr])*
                #[derive(Default)]
                pub struct $name {
                    v: std::sync::atomic::$std,
                    meta: StdMutex<VClock>,
                }

                impl $name {
                    /// A new atomic holding `v`.
                    pub const fn new(v: $prim) -> $name {
                        $name {
                            v: std::sync::atomic::$std::new(v),
                            meta: StdMutex::new(Vec::new()),
                        }
                    }

                    /// Unwrap the value.
                    pub fn into_inner(self) -> $prim {
                        self.v.into_inner()
                    }

                    /// Atomic load.
                    pub fn load(&self, order: Ordering) -> $prim {
                        if rt::in_model() {
                            rt::sync_point(Point::Op);
                            let v = self.v.load(Ordering::Relaxed);
                            hb_load(&self.meta, order);
                            v
                        } else {
                            self.v.load(order)
                        }
                    }

                    /// Atomic store.
                    pub fn store(&self, val: $prim, order: Ordering) {
                        if rt::in_model() {
                            rt::sync_point(Point::Op);
                            self.v.store(val, Ordering::Relaxed);
                            hb_store(&self.meta, order);
                        } else {
                            self.v.store(val, order);
                        }
                    }

                    /// Atomic swap.
                    pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                        self.rmw(order, |_| val)
                    }

                    /// Atomic add, returning the previous value.
                    pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                        if rt::in_model() {
                            self.rmw(order, |cur| cur.wrapping_add(val))
                        } else {
                            self.v.fetch_add(val, order)
                        }
                    }

                    /// Atomic subtract, returning the previous value.
                    pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                        if rt::in_model() {
                            self.rmw(order, |cur| cur.wrapping_sub(val))
                        } else {
                            self.v.fetch_sub(val, order)
                        }
                    }

                    /// Atomic bitwise OR, returning the previous value.
                    pub fn fetch_or(&self, val: $prim, order: Ordering) -> $prim {
                        if rt::in_model() {
                            self.rmw(order, |cur| cur | val)
                        } else {
                            self.v.fetch_or(val, order)
                        }
                    }

                    /// Atomic bitwise AND, returning the previous value.
                    pub fn fetch_and(&self, val: $prim, order: Ordering) -> $prim {
                        if rt::in_model() {
                            self.rmw(order, |cur| cur & val)
                        } else {
                            self.v.fetch_and(val, order)
                        }
                    }

                    /// Atomic maximum, returning the previous value.
                    pub fn fetch_max(&self, val: $prim, order: Ordering) -> $prim {
                        if rt::in_model() {
                            self.rmw(order, |cur| cur.max(val))
                        } else {
                            self.v.fetch_max(val, order)
                        }
                    }

                    /// Atomic minimum, returning the previous value.
                    pub fn fetch_min(&self, val: $prim, order: Ordering) -> $prim {
                        if rt::in_model() {
                            self.rmw(order, |cur| cur.min(val))
                        } else {
                            self.v.fetch_min(val, order)
                        }
                    }

                    /// Atomic compare-and-exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        if rt::in_model() {
                            rt::sync_point(Point::Op);
                            let v = self.v.load(Ordering::Relaxed);
                            if v == current {
                                self.v.store(new, Ordering::Relaxed);
                                hb_rmw(&self.meta, success);
                                Ok(v)
                            } else {
                                hb_load(&self.meta, failure);
                                Err(v)
                            }
                        } else {
                            self.v.compare_exchange(current, new, success, failure)
                        }
                    }

                    /// Like [`Self::compare_exchange`]; the model never
                    /// fails spuriously.
                    pub fn compare_exchange_weak(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        if rt::in_model() {
                            self.compare_exchange(current, new, success, failure)
                        } else {
                            self.v.compare_exchange_weak(current, new, success, failure)
                        }
                    }

                    /// Serialized read-modify-write (model mode only).
                    fn rmw(&self, order: Ordering, f: impl FnOnce($prim) -> $prim) -> $prim {
                        if rt::in_model() {
                            rt::sync_point(Point::Op);
                            let v = self.v.load(Ordering::Relaxed);
                            self.v.store(f(v), Ordering::Relaxed);
                            hb_rmw(&self.meta, order);
                            v
                        } else {
                            // Only `swap` reaches here outside a model.
                            self.v.swap(f(self.v.load(Ordering::Relaxed)), order)
                        }
                    }
                }
            };
        }

        atomic_int!(
            /// Model-aware `AtomicUsize`.
            AtomicUsize,
            AtomicUsize,
            usize
        );
        atomic_int!(
            /// Model-aware `AtomicU64`.
            AtomicU64,
            AtomicU64,
            u64
        );
        atomic_int!(
            /// Model-aware `AtomicU32`.
            AtomicU32,
            AtomicU32,
            u32
        );

        /// Model-aware `AtomicBool`.
        #[derive(Default)]
        pub struct AtomicBool {
            v: std::sync::atomic::AtomicBool,
            meta: StdMutex<VClock>,
        }

        impl AtomicBool {
            /// A new atomic holding `v`.
            pub const fn new(v: bool) -> AtomicBool {
                AtomicBool {
                    v: std::sync::atomic::AtomicBool::new(v),
                    meta: StdMutex::new(Vec::new()),
                }
            }

            /// Unwrap the value.
            pub fn into_inner(self) -> bool {
                self.v.into_inner()
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> bool {
                if rt::in_model() {
                    rt::sync_point(Point::Op);
                    let v = self.v.load(Ordering::Relaxed);
                    hb_load(&self.meta, order);
                    v
                } else {
                    self.v.load(order)
                }
            }

            /// Atomic store.
            pub fn store(&self, val: bool, order: Ordering) {
                if rt::in_model() {
                    rt::sync_point(Point::Op);
                    self.v.store(val, Ordering::Relaxed);
                    hb_store(&self.meta, order);
                } else {
                    self.v.store(val, order);
                }
            }

            /// Atomic swap.
            pub fn swap(&self, val: bool, order: Ordering) -> bool {
                if rt::in_model() {
                    rt::sync_point(Point::Op);
                    let v = self.v.load(Ordering::Relaxed);
                    self.v.store(val, Ordering::Relaxed);
                    hb_rmw(&self.meta, order);
                    v
                } else {
                    self.v.swap(val, order)
                }
            }

            /// Atomic compare-and-exchange.
            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                success: Ordering,
                failure: Ordering,
            ) -> Result<bool, bool> {
                if rt::in_model() {
                    rt::sync_point(Point::Op);
                    let v = self.v.load(Ordering::Relaxed);
                    if v == current {
                        self.v.store(new, Ordering::Relaxed);
                        hb_rmw(&self.meta, success);
                        Ok(v)
                    } else {
                        hb_load(&self.meta, failure);
                        Err(v)
                    }
                } else {
                    self.v.compare_exchange(current, new, success, failure)
                }
            }
        }
    }

    struct MutexMeta {
        /// Lazily assigned per-execution scheduler object id (0 = none).
        id: usize,
        locked: bool,
        /// Release clock: joined from each unlocker, acquired by lockers.
        clock: VClock,
    }

    /// A model-aware mutual-exclusion lock with the `std::sync::Mutex` API
    /// (`lock()` returns a `LockResult`; poisoning never actually occurs).
    ///
    /// The protected value lives in an `UnsafeCell` rather than an inner
    /// `std` mutex so that a model thread blocked in [`Condvar::wait`] (or
    /// suspended by the scheduler) never holds an OS lock that another
    /// model thread would then really block on.
    pub struct Mutex<T> {
        cell: std::cell::UnsafeCell<T>,
        meta: StdMutex<MutexMeta>,
        /// Fallback mode blocks on this (paired with `meta`).
        cv: std::sync::Condvar,
    }

    // SAFETY: the `locked` flag in `meta` (enforced by the scheduler in
    // model mode, and by `cv`-based blocking in fallback mode) guarantees
    // at most one thread holds a guard, so access to the cell is exclusive;
    // moving/sharing the mutex therefore only requires `T: Send`.
    unsafe impl<T: Send> Send for Mutex<T> {}
    // SAFETY: as above — guard exclusivity makes `&Mutex<T>` safe to share.
    unsafe impl<T: Send> Sync for Mutex<T> {}

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T> Mutex<T> {
        /// A new unlocked mutex holding `value`.
        pub const fn new(value: T) -> Mutex<T> {
            Mutex {
                cell: std::cell::UnsafeCell::new(value),
                meta: StdMutex::new(MutexMeta {
                    id: 0,
                    locked: false,
                    clock: Vec::new(),
                }),
                cv: std::sync::Condvar::new(),
            }
        }

        /// Unwrap the value.
        pub fn into_inner(self) -> LockResult<T> {
            Ok(self.cell.into_inner())
        }

        /// Exclusive access without locking.
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            Ok(self.cell.get_mut())
        }

        fn object_id(&self) -> usize {
            let mut meta = plock(&self.meta);
            if meta.id == 0 {
                meta.id = rt::new_object_id();
            }
            meta.id
        }

        /// Acquire (blocking). Never actually returns `Err`.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            if rt::in_model() {
                rt::sync_point(Point::Op);
                self.model_acquire();
            } else {
                let mut meta = plock(&self.meta);
                while meta.locked {
                    meta = self.cv.wait(meta).unwrap_or_else(|e| e.into_inner());
                }
                meta.locked = true;
            }
            Ok(MutexGuard {
                mx: self,
                _not_send: std::marker::PhantomData,
            })
        }

        /// Model-mode acquire loop: take the lock or block at the
        /// scheduler until an unlock wakes us. Callers provide the
        /// scheduling point.
        fn model_acquire(&self) {
            let id = self.object_id();
            loop {
                {
                    let mut meta = plock(&self.meta);
                    if !meta.locked {
                        meta.locked = true;
                        let clock = meta.clock.clone();
                        drop(meta);
                        rt::with_my_clock(|mine| vc_join(mine, &clock));
                        return;
                    }
                }
                rt::block_on(Blocker::Mutex(id));
            }
        }

        /// Release. In model mode this is deliberately *not* a scheduling
        /// point (the next visible operation of the unlocking thread is),
        /// which keeps unlock safe to run from guard `Drop` during panic
        /// unwinding.
        fn unlock(&self) {
            if rt::in_model() {
                let id;
                {
                    let mut meta = plock(&self.meta);
                    meta.locked = false;
                    id = meta.id;
                    rt::with_my_clock(|mine| {
                        let snapshot = mine.clone();
                        vc_join(&mut meta.clock, &snapshot);
                    });
                }
                rt::unblock_where(|b| b == Blocker::Mutex(id));
            } else {
                plock(&self.meta).locked = false;
                self.cv.notify_one();
            }
        }
    }

    /// RAII guard for [`Mutex`].
    pub struct MutexGuard<'a, T> {
        mx: &'a Mutex<T>,
        _not_send: std::marker::PhantomData<*mut T>,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: the guard proves exclusive ownership of the lock
            // (see the `Sync` impl on `Mutex`), so the cell cannot be
            // accessed concurrently.
            unsafe { &*self.mx.cell.get() }
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as in `deref` — the held lock makes this exclusive.
            unsafe { &mut *self.mx.cell.get() }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            self.mx.unlock();
        }
    }

    /// Result of [`Condvar::wait_timeout`].
    pub struct WaitTimeoutResult {
        timed_out: bool,
    }

    impl WaitTimeoutResult {
        /// True if the wait ended because the timeout elapsed.
        pub fn timed_out(&self) -> bool {
            self.timed_out
        }
    }

    /// A model-aware condition variable with the `std::sync::Condvar` API.
    ///
    /// In model mode, `wait_timeout` is a nondeterministic choice: the
    /// explorer covers both "a notify arrives" and "the timeout fires
    /// first" (and force-fires timeouts when every thread is blocked, so
    /// models with timed waits always terminate).
    pub struct Condvar {
        std: std::sync::Condvar,
        id: std::sync::atomic::AtomicUsize,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl Condvar {
        /// A new condition variable.
        pub const fn new() -> Condvar {
            Condvar {
                std: std::sync::Condvar::new(),
                id: std::sync::atomic::AtomicUsize::new(0),
            }
        }

        fn object_id(&self) -> usize {
            use std::sync::atomic::Ordering as O;
            let id = self.id.load(O::Relaxed);
            if id != 0 {
                return id;
            }
            let id = rt::new_object_id();
            self.id.store(id, O::Relaxed);
            id
        }

        /// Block until notified, releasing `guard` while waiting.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let mx = guard.mx;
            std::mem::forget(guard);
            if rt::in_model() {
                let id = self.object_id();
                rt::sync_point(Point::Op);
                mx.unlock();
                rt::block_on(Blocker::Condvar(id));
                mx.model_acquire();
            } else {
                let mut meta = plock(&mx.meta);
                meta.locked = false;
                mx.cv.notify_one();
                meta = self.std.wait(meta).unwrap_or_else(|e| e.into_inner());
                while meta.locked {
                    meta = mx.cv.wait(meta).unwrap_or_else(|e| e.into_inner());
                }
                meta.locked = true;
            }
            Ok(MutexGuard {
                mx,
                _not_send: std::marker::PhantomData,
            })
        }

        /// Block until notified or `dur` elapses.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            let mx = guard.mx;
            std::mem::forget(guard);
            let timed_out;
            if rt::in_model() {
                let id = self.object_id();
                rt::sync_point(Point::Op);
                mx.unlock();
                timed_out = if rt::decide_bool() {
                    // Explore the branch where the timeout beats any notify.
                    true
                } else {
                    rt::block_on(Blocker::CondvarTimeout(id))
                };
                mx.model_acquire();
            } else {
                let mut meta = plock(&mx.meta);
                meta.locked = false;
                mx.cv.notify_one();
                let (mut m, res) = self
                    .std
                    .wait_timeout(meta, dur)
                    .unwrap_or_else(|e| e.into_inner());
                timed_out = res.timed_out();
                while m.locked {
                    m = mx.cv.wait(m).unwrap_or_else(|e| e.into_inner());
                }
                m.locked = true;
            }
            Ok((
                MutexGuard {
                    mx,
                    _not_send: std::marker::PhantomData,
                },
                WaitTimeoutResult { timed_out },
            ))
        }

        /// Wake one waiter.
        pub fn notify_one(&self) {
            if rt::in_model() {
                let id = self.object_id();
                rt::sync_point(Point::Op);
                rt::unblock_one(|b| {
                    b == Blocker::Condvar(id) || b == Blocker::CondvarTimeout(id)
                });
            } else {
                self.std.notify_one();
            }
        }

        /// Wake all waiters.
        pub fn notify_all(&self) {
            if rt::in_model() {
                let id = self.object_id();
                rt::sync_point(Point::Op);
                rt::unblock_where(|b| {
                    b == Blocker::Condvar(id) || b == Blocker::CondvarTimeout(id)
                });
            } else {
                self.std.notify_all();
            }
        }
    }

    /// A reader-writer lock with the `std::sync::RwLock` API.
    ///
    /// In this checker, readers are serialized (it is a [`Mutex`] inside):
    /// strictly stronger mutual exclusion, so every schedule it admits is a
    /// schedule the real `RwLock` admits too — race freedom verified here
    /// carries over, at the cost of not exploring reader-reader overlap
    /// (which is invisible to race detection anyway: readers don't write).
    pub struct RwLock<T> {
        inner: Mutex<T>,
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    impl<T> RwLock<T> {
        /// A new unlocked lock holding `value`.
        pub const fn new(value: T) -> RwLock<T> {
            RwLock {
                inner: Mutex::new(value),
            }
        }

        /// Unwrap the value.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }

        /// Shared access (serialized in the model).
        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            Ok(RwLockReadGuard {
                g: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
            })
        }

        /// Exclusive access.
        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            Ok(RwLockWriteGuard {
                g: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
            })
        }
    }

    /// RAII shared guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T> {
        g: MutexGuard<'a, T>,
    }

    impl<T> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.g
        }
    }

    /// RAII exclusive guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T> {
        g: MutexGuard<'a, T>,
    }

    impl<T> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.g
        }
    }

    impl<T> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.g
        }
    }
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

/// Model-aware threads.
pub mod thread {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            tid: usize,
            slot: Arc<StdMutex<Option<T>>>,
        },
    }

    /// Handle to a spawned thread (model or real).
    pub struct JoinHandle<T> {
        inner: Inner<T>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread and take its return value.
        pub fn join(self) -> std::thread::Result<T> {
            match self.inner {
                Inner::Std(h) => h.join(),
                Inner::Model { tid, slot } => {
                    rt::join_thread(tid);
                    // A model-thread panic aborts the whole execution
                    // before join can observe it, so the slot is filled.
                    Ok(plock(&slot)
                        .take()
                        .expect("joined model thread left no result"))
                }
            }
        }
    }

    /// Spawn a thread running `f`. In a model, the thread is scheduled by
    /// the explorer (and counts against its small thread budget).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if rt::in_model() {
            let slot = Arc::new(StdMutex::new(None));
            let slot2 = Arc::clone(&slot);
            let tid = rt::spawn_thread(Box::new(move || {
                let out = f();
                *plock(&slot2) = Some(out);
            }));
            JoinHandle {
                inner: Inner::Model { tid, slot },
            }
        } else {
            JoinHandle {
                inner: Inner::Std(std::thread::spawn(f)),
            }
        }
    }

    /// Named-thread builder mirroring `std::thread::Builder` (the name is
    /// only applied to real threads; model threads are `loom-<tid>`).
    #[derive(Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// A new builder.
        pub fn new() -> Builder {
            Builder::default()
        }

        /// Set the thread name.
        pub fn name(mut self, name: String) -> Builder {
            self.name = Some(name);
            self
        }

        /// Spawn like [`spawn`]; errors only on real-thread spawn failure.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            if rt::in_model() {
                Ok(spawn(f))
            } else {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                Ok(JoinHandle {
                    inner: Inner::Std(b.spawn(f)?),
                })
            }
        }
    }

    /// Voluntarily cede the processor (a free scheduling switch in models,
    /// so spin-with-yield loops always let their peer make progress).
    pub fn yield_now() {
        if rt::in_model() {
            rt::sync_point(Point::Yield);
        } else {
            std::thread::yield_now();
        }
    }

    /// Park with a timeout. In a model this is a nondeterministic choice
    /// between timing out immediately and blocking until the scheduler
    /// force-fires the timeout (no `unpark` exists in the modeled API).
    pub fn park_timeout(dur: Duration) {
        if rt::in_model() {
            rt::sync_point(Point::Op);
            if !rt::decide_bool() {
                rt::block_on(Blocker::Park);
            }
        } else {
            std::thread::park_timeout(dur);
        }
    }
}

// ---------------------------------------------------------------------------
// Self-tests: the checker checking itself.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::cell::UnsafeCell;
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Duration;

    fn fails(f: impl Fn() + Send + Sync + 'static) -> bool {
        catch_unwind(AssertUnwindSafe(move || super::model(f))).is_err()
    }

    #[test]
    fn explores_multiple_executions() {
        let count = Arc::new(std::sync::Mutex::new(0usize));
        let count2 = Arc::clone(&count);
        super::model(move || {
            *count2.lock().unwrap() += 1;
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let t = super::thread::spawn(move || {
                a2.store(1, Ordering::Release);
            });
            let _ = a.load(Ordering::Acquire);
            t.join().unwrap();
        });
        assert!(*count.lock().unwrap() > 1, "expected >1 interleaving");
    }

    #[test]
    fn atomic_fetch_add_sums() {
        super::model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let t = super::thread::spawn(move || {
                a2.fetch_add(1, Ordering::AcqRel);
            });
            a.fetch_add(1, Ordering::AcqRel);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::Acquire), 2);
        });
    }

    #[test]
    // Sharing an unsynchronized UnsafeCell across threads is the bug shape
    // these models exist to detect; the Sync impls below are deliberate.
    #[allow(clippy::arc_with_non_send_sync)]
    fn detects_unsafecell_lost_update() {
        assert!(fails(|| {
            let c = Arc::new(UnsafeCell::new(0u32));
            let c2 = Arc::clone(&c);
            // SAFETY-free wrapper: UnsafeCell is Send; sharing it between
            // threads without synchronization is exactly the bug under test.
            struct Share<T>(Arc<UnsafeCell<T>>);
            // SAFETY: test-only — we are deliberately creating the race
            // the checker must detect.
            unsafe impl<T: Send> Sync for Share<T> {}
            // SAFETY: as above.
            unsafe impl<T: Send> Send for Share<T> {}
            let s = Share(c2);
            let t = super::thread::spawn(move || {
                let s = s; // capture the whole wrapper, not the Arc field
                s.0.with_mut(|p| {
                    // SAFETY: pointer from with_mut is valid for the closure.
                    unsafe { *p += 1 }
                });
            });
            c.with_mut(|p| {
                // SAFETY: pointer from with_mut is valid for the closure.
                unsafe { *p += 1 }
            });
            t.join().unwrap();
        }));
    }

    #[test]
    // As above: the wrapper's Sync impl makes the cross-thread sharing sound
    // for the model; the bare Arc<UnsafeCell<_>> is intermediate scaffolding.
    #[allow(clippy::arc_with_non_send_sync)]
    fn release_acquire_publishes() {
        struct Share<T>(Arc<UnsafeCell<T>>);
        // SAFETY: test-only sharing; accesses are ordered by the
        // release/acquire flag below, which is what the test verifies.
        unsafe impl<T: Send> Sync for Share<T> {}
        // SAFETY: as above.
        unsafe impl<T: Send> Send for Share<T> {}
        super::model(|| {
            let cell = Share(Arc::new(UnsafeCell::new(0u32)));
            let flag = Arc::new(AtomicBool::new(false));
            let (f2, c2) = (Arc::clone(&flag), Share(Arc::clone(&cell.0)));
            let t = super::thread::spawn(move || {
                let c2 = c2; // capture the whole wrapper, not the Arc field
                c2.0.with_mut(|p| {
                    // SAFETY: happens-before the Release store below.
                    unsafe { *p = 42 }
                });
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                let v = cell.0.with(|p| {
                    // SAFETY: Acquire load observed the flag, so the write
                    // above happens-before this read.
                    unsafe { *p }
                });
                assert_eq!(v, 42);
            }
            t.join().unwrap();
        });
    }

    #[test]
    // As above: deliberately racy sharing, wrapped for the checker to flag.
    #[allow(clippy::arc_with_non_send_sync)]
    fn detects_relaxed_publication_race() {
        struct Share<T>(Arc<UnsafeCell<T>>);
        // SAFETY: test-only — the Relaxed flag provides no ordering, which
        // is the race the checker must detect.
        unsafe impl<T: Send> Sync for Share<T> {}
        // SAFETY: as above.
        unsafe impl<T: Send> Send for Share<T> {}
        assert!(fails(|| {
            let cell = Share(Arc::new(UnsafeCell::new(0u32)));
            let flag = Arc::new(AtomicBool::new(false));
            let (f2, c2) = (Arc::clone(&flag), Share(Arc::clone(&cell.0)));
            let t = super::thread::spawn(move || {
                let c2 = c2; // capture the whole wrapper, not the Arc field
                c2.0.with_mut(|p| {
                    // SAFETY: valid pointer; the *ordering* is what's broken.
                    unsafe { *p = 42 }
                });
                f2.store(true, Ordering::Relaxed);
            });
            if flag.load(Ordering::Relaxed) {
                cell.0.with(|p| {
                    // SAFETY: valid pointer; racy by construction.
                    let _ = unsafe { *p };
                });
            }
            t.join().unwrap();
        }));
    }

    #[test]
    fn mutex_serializes_increments() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = Arc::clone(&m);
            let t = super::thread::spawn(move || {
                *m2.lock().unwrap() += 1;
            });
            *m.lock().unwrap() += 1;
            t.join().unwrap();
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    #[test]
    fn detects_lock_order_deadlock() {
        assert!(fails(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = super::thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop((_ga, _gb));
            t.join().unwrap();
        }));
    }

    #[test]
    fn condvar_handoff() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = super::thread::spawn(move || {
                let (m, cv) = &*pair2;
                *m.lock().unwrap() = true;
                cv.notify_one();
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            drop(ready);
            t.join().unwrap();
        });
    }

    #[test]
    fn condvar_wait_timeout_terminates_without_notify() {
        super::model(|| {
            let m = Mutex::new(());
            let cv = Condvar::new();
            let g = m.lock().unwrap();
            let (g, res) = cv.wait_timeout(g, Duration::from_millis(1)).unwrap();
            assert!(res.timed_out());
            drop(g);
        });
    }

    #[test]
    fn park_timeout_always_returns() {
        super::model(|| {
            super::thread::park_timeout(Duration::from_millis(1));
        });
    }

    #[test]
    fn yield_spin_loop_makes_progress() {
        super::model(|| {
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let t = super::thread::spawn(move || {
                f2.store(true, Ordering::Release);
            });
            while !flag.load(Ordering::Acquire) {
                super::thread::yield_now();
            }
            t.join().unwrap();
        });
    }

    #[test]
    fn join_returns_value() {
        super::model(|| {
            let t = super::thread::spawn(|| 7u32);
            assert_eq!(t.join().unwrap(), 7);
        });
    }

    #[test]
    fn fallback_outside_model_behaves_like_std() {
        // No model() wrapper: everything takes the std fallback path.
        let a = Arc::new(AtomicUsize::new(0));
        let m = Arc::new(Mutex::new(0u32));
        let (a2, m2) = (Arc::clone(&a), Arc::clone(&m));
        let t = super::thread::spawn(move || {
            a2.fetch_add(1, Ordering::AcqRel);
            *m2.lock().unwrap() += 1;
        });
        a.fetch_add(1, Ordering::AcqRel);
        *m.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(a.load(Ordering::Acquire), 2);
        assert_eq!(*m.lock().unwrap(), 2);
        let c = UnsafeCell::new(5u32);
        // SAFETY: single-threaded access in the fallback path.
        assert_eq!(c.with(|p| unsafe { *p }), 5);
    }
}
