//! The model-checking runtime: a serializing scheduler that explores thread
//! interleavings by depth-first search over scheduling decisions.
//!
//! Execution model: at most one model thread runs at a time. Every *visible*
//! operation (atomic access, cell access, lock, spawn, join, yield, park)
//! first calls into the scheduler, which decides — by replaying a recorded
//! decision path, then extending it — which thread performs the next visible
//! operation. After an execution finishes, the last decision with an
//! unexplored alternative is advanced and the model closure is run again.
//!
//! Exploration is bounded CHESS-style: switching away from a runnable
//! thread costs one *preemption*, and executions are limited to
//! `LOOM_MAX_PREEMPTIONS` of them (voluntary switches at `yield_now`,
//! blocking, and thread exit are free). This keeps the state space small
//! while still covering the interleavings that expose real bugs.
//!
//! Happens-before is tracked with per-thread vector clocks. Release stores
//! publish the writer's clock on the atomic; acquire loads join it. Cell
//! accesses check that the previous conflicting access happened-before the
//! current thread, and fail the execution with a data-race report if not.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Upper bound on model threads (keeps vector clocks and schedules tiny).
pub(crate) const MAX_THREADS: usize = 6;

/// Panic payload used to unwind sibling threads after a failure; never
/// reported as the model's own failure.
pub(crate) struct Abandoned;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock: `clock[t]` is the latest operation of thread `t` that
/// happens-before the clock's owner.
pub(crate) type VClock = Vec<u32>;

pub(crate) fn vc_join(a: &mut VClock, b: &VClock) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (i, v) in b.iter().enumerate() {
        if a[i] < *v {
            a[i] = *v;
        }
    }
}

/// True when every component of `a` is ≤ the matching component of `b`,
/// i.e. the event stamped `a` happens-before a thread whose clock is `b`.
pub(crate) fn vc_leq(a: &VClock, b: &VClock) -> bool {
    a.iter()
        .enumerate()
        .all(|(i, v)| *v == 0 || b.get(i).copied().unwrap_or(0) >= *v)
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

/// What a non-runnable thread is waiting for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Blocker {
    /// Waiting to acquire model mutex `id`.
    Mutex(usize),
    /// Waiting on condvar `id` (plain `wait`: only a notify can wake it).
    Condvar(usize),
    /// Waiting on condvar `id` with a timeout (scheduler may force-wake).
    CondvarTimeout(usize),
    /// In `park_timeout` (scheduler may force-wake).
    Park,
    /// Waiting for thread `tid` to finish.
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(Blocker),
    Finished,
}

struct ThreadState {
    status: Status,
    clock: VClock,
    final_clock: Option<VClock>,
    /// Set by the scheduler when a soft block (park/wait_timeout) was ended
    /// by the timeout rather than a notify; consumed by the blocked op.
    timed_out: bool,
}

/// The kind of scheduling point, which determines candidate ordering and
/// preemption accounting.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Point {
    /// A visible operation; staying on the current thread is free.
    Op,
    /// A voluntary yield; moving to the next runnable thread is free.
    Yield,
    /// The current thread just blocked or finished; any switch is free.
    Forced,
}

/// One recorded decision: the ordered options (tag = thread id, or 0/1 for
/// boolean choices) with their preemption cost, and which one was taken.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Decision {
    options: Vec<(u32, u8)>,
    chosen: usize,
}

#[derive(Default)]
struct Schedule {
    path: Vec<Decision>,
    cursor: usize,
}

struct Registry {
    threads: Vec<ThreadState>,
    current: usize,
    schedule: Schedule,
    preemptions: usize,
    max_preemptions: usize,
    max_branches: usize,
    ops: usize,
    next_obj: usize,
    trace: Vec<u32>,
    failed: Option<String>,
    failure: Option<Box<dyn Any + Send>>,
    execution_done: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct RtShared {
    reg: StdMutex<Registry>,
    cv: StdCondvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<RtShared>, usize)>> = const { RefCell::new(None) };
}

/// The `(runtime, thread-id)` of the calling model thread, or `None` when
/// called outside `loom::model` (the transparent-fallback path).
pub(crate) fn current() -> Option<(Arc<RtShared>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// True when the caller is a thread managed by an active model execution.
///
/// Deliberately false while the thread is unwinding: destructors that run
/// during a panic (ring drains, pool returns, guard unlocks) must not
/// re-enter the scheduler — a nested [`Abandoned`] panic inside a `Drop`
/// would abort the process. The execution is already being abandoned, so
/// those destructors safely take the plain-`std` fallback path instead.
pub(crate) fn in_model() -> bool {
    !std::thread::panicking() && CURRENT.with(|c| c.borrow().is_some())
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl RtShared {
    fn new(path: Vec<Decision>, max_preemptions: usize, max_branches: usize) -> RtShared {
        RtShared {
            reg: StdMutex::new(Registry {
                threads: Vec::new(),
                current: 0,
                schedule: Schedule { path, cursor: 0 },
                preemptions: 0,
                max_preemptions,
                max_branches,
                ops: 0,
                next_obj: 0,
                trace: Vec::new(),
                failed: None,
                failure: None,
                execution_done: false,
                os_handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Registry> {
        self.reg.lock().unwrap_or_else(|e| e.into_inner())
    }
}

// ---------------------------------------------------------------------------
// Failure plumbing
// ---------------------------------------------------------------------------

/// Record a failure (first one wins), wake every thread so it can unwind,
/// and panic the calling thread with the report.
fn fail_locked(rt: &RtShared, reg: &mut Registry, msg: String) -> ! {
    if reg.failed.is_none() {
        reg.failed = Some(msg.clone());
        reg.failure = Some(Box::new(msg.clone()));
    }
    let _ = reg;
    rt.cv.notify_all();
    panic::panic_any(Abandoned)
}

pub(crate) fn fail(msg: String) -> ! {
    let (rt, _me) = current().expect("loom runtime failure outside a model");
    let mut reg = rt.lock();
    fail_locked(&rt, &mut reg, msg)
}

// ---------------------------------------------------------------------------
// Scheduling core
// ---------------------------------------------------------------------------

/// Pick (and transfer control to) the thread that performs the next visible
/// operation. Must be called with the registry locked, by thread `me`.
fn schedule_next(rt: &RtShared, reg: &mut Registry, me: usize, kind: Point) {
    let runnable: Vec<usize> = (0..reg.threads.len())
        .filter(|&t| reg.threads[t].status == Status::Runnable)
        .collect();

    let mut options: Vec<(u32, u8)> = Vec::new();
    if runnable.is_empty() {
        // Stalled: force the lowest soft-blocked thread's timeout to fire,
        // or report deadlock / completion.
        let soft = (0..reg.threads.len()).find(|&t| {
            matches!(
                reg.threads[t].status,
                Status::Blocked(Blocker::Park) | Status::Blocked(Blocker::CondvarTimeout(_))
            )
        });
        if let Some(t) = soft {
            reg.threads[t].timed_out = true;
            reg.threads[t].status = Status::Runnable;
            options.push((t as u32, 0));
        } else if reg.threads.iter().all(|t| t.status == Status::Finished) {
            reg.execution_done = true;
            rt.cv.notify_all();
            return;
        } else {
            let blocked: Vec<(usize, Blocker)> = (0..reg.threads.len())
                .filter_map(|t| match reg.threads[t].status {
                    Status::Blocked(b) => Some((t, b)),
                    _ => None,
                })
                .collect();
            fail_locked(rt, reg, format!("deadlock: blocked threads {blocked:?}"));
        }
    } else {
        let me_runnable = kind != Point::Forced && reg.threads[me].status == Status::Runnable;
        match kind {
            Point::Op if me_runnable => {
                options.push((me as u32, 0));
                options.extend(runnable.iter().filter(|&&t| t != me).map(|&t| (t as u32, 1)));
            }
            Point::Yield if me_runnable => {
                // Round-robin: the free choice deschedules the yielder so
                // spin loops written with `yield_now` always make progress.
                let mut others: Vec<usize> = runnable
                    .iter()
                    .copied()
                    .filter(|&t| t != me)
                    .collect();
                let pivot = others
                    .iter()
                    .position(|&t| t > me)
                    .unwrap_or(0)
                    .min(others.len().saturating_sub(1));
                others.rotate_left(pivot);
                match others.split_first() {
                    Some((&first, rest)) => {
                        options.push((first as u32, 0));
                        options.extend(rest.iter().map(|&t| (t as u32, 1)));
                        options.push((me as u32, 1));
                    }
                    None => options.push((me as u32, 0)),
                }
            }
            _ => {
                // Forced switch: the current thread blocked or finished.
                options.extend(runnable.iter().map(|&t| (t as u32, 0)));
            }
        }
    }

    let (tag, cost) = consult(rt, reg, options);
    reg.preemptions += cost as usize;
    reg.trace.push(tag);
    reg.current = tag as usize;
    rt.cv.notify_all();
}

/// Replay or extend the decision path; returns the chosen option.
fn consult(rt: &RtShared, reg: &mut Registry, options: Vec<(u32, u8)>) -> (u32, u8) {
    if options.len() == 1 {
        return options[0];
    }
    let cursor = reg.schedule.cursor;
    if cursor < reg.schedule.path.len() {
        let d = &reg.schedule.path[cursor];
        if d.options != options {
            let msg = format!(
                "non-deterministic model: replay mismatch at decision {cursor} \
                 (recorded {:?}, observed {options:?})",
                d.options
            );
            fail_locked(rt, reg, msg);
        }
        let chosen = d.chosen;
        reg.schedule.cursor += 1;
        options[chosen]
    } else {
        let budget = reg.max_preemptions.saturating_sub(reg.preemptions);
        let chosen = options
            .iter()
            .position(|&(_, cost)| (cost as usize) <= budget)
            .expect("option 0 is always free");
        reg.schedule.path.push(Decision {
            options: options.clone(),
            chosen,
        });
        reg.schedule.cursor += 1;
        options[chosen]
    }
}

/// Advance the decision path to the next unexplored schedule. Returns false
/// when the (preemption-bounded) state space is exhausted.
fn advance(path: &mut Vec<Decision>, max_preemptions: usize) -> bool {
    loop {
        if path.is_empty() {
            return false;
        }
        let used: usize = path[..path.len() - 1]
            .iter()
            .map(|d| d.options[d.chosen].1 as usize)
            .sum();
        let d = path.last_mut().expect("non-empty path");
        let mut next = d.chosen + 1;
        while next < d.options.len() && used + d.options[next].1 as usize > max_preemptions {
            next += 1;
        }
        if next < d.options.len() {
            d.chosen = next;
            return true;
        }
        path.pop();
    }
}

// ---------------------------------------------------------------------------
// Thread-side entry points (called by the loom type shims)
// ---------------------------------------------------------------------------

fn wait_for_turn(rt: &RtShared, mut reg: std::sync::MutexGuard<'_, Registry>, me: usize) {
    while reg.failed.is_none()
        && !(reg.current == me && reg.threads[me].status == Status::Runnable)
    {
        reg = rt.cv.wait(reg).unwrap_or_else(|e| e.into_inner());
    }
    if reg.failed.is_some() {
        drop(reg);
        panic::panic_any(Abandoned);
    }
}

/// A visible operation boundary: decide who runs next, suspend if it is not
/// us, and tick our clock. No-op outside a model or while unwinding.
pub(crate) fn sync_point(kind: Point) {
    if !in_model() {
        return;
    }
    let Some((rt, me)) = current() else { return };
    let mut reg = rt.lock();
    if reg.failed.is_some() {
        drop(reg);
        panic::panic_any(Abandoned);
    }
    reg.ops += 1;
    if reg.ops > reg.max_branches {
        let msg = format!(
            "model exceeded {} operations in one execution — livelock, or raise LOOM_MAX_BRANCHES",
            reg.max_branches
        );
        fail_locked(&rt, &mut reg, msg);
    }
    let clock = &mut reg.threads[me].clock;
    if clock.len() <= me {
        clock.resize(me + 1, 0);
    }
    clock[me] += 1;
    schedule_next(&rt, &mut reg, me, kind);
    wait_for_turn(&rt, reg, me);
}

/// Block the calling thread on `blocker` until another thread clears it.
/// Returns whether the wake was a forced timeout.
pub(crate) fn block_on(blocker: Blocker) -> bool {
    let (rt, me) = current().expect("blocking loom op outside a model");
    let mut reg = rt.lock();
    reg.threads[me].status = Status::Blocked(blocker);
    schedule_next(&rt, &mut reg, me, Point::Forced);
    wait_for_turn(&rt, reg, me);
    let mut reg = rt.lock();
    let timed_out = reg.threads[me].timed_out;
    reg.threads[me].timed_out = false;
    timed_out
}

/// Make every thread blocked on `pred` runnable again.
pub(crate) fn unblock_where(pred: impl Fn(Blocker) -> bool) {
    let (rt, _me) = current().expect("loom wake outside a model");
    let mut reg = rt.lock();
    for t in reg.threads.iter_mut() {
        if let Status::Blocked(b) = t.status {
            if pred(b) {
                t.status = Status::Runnable;
            }
        }
    }
}

/// Wake the single lowest-id thread blocked on `pred`; returns whether one
/// was found.
pub(crate) fn unblock_one(pred: impl Fn(Blocker) -> bool) -> bool {
    let (rt, _me) = current().expect("loom wake outside a model");
    let mut reg = rt.lock();
    for t in reg.threads.iter_mut() {
        if let Status::Blocked(b) = t.status {
            if pred(b) {
                t.status = Status::Runnable;
                return true;
            }
        }
    }
    false
}

/// A two-way nondeterministic choice. The `false` branch is the free
/// default; exploring the `true` branch costs a preemption (bounding how
/// many spontaneous timeouts a single execution may take).
pub(crate) fn decide_bool() -> bool {
    if !in_model() {
        return false;
    }
    let Some((rt, _me)) = current() else {
        return false;
    };
    let mut reg = rt.lock();
    let (tag, cost) = consult(&rt, &mut reg, vec![(0, 0), (1, 1)]);
    reg.preemptions += cost as usize;
    tag == 1
}

/// Allocate a fresh per-execution object id (mutexes, condvars).
pub(crate) fn new_object_id() -> usize {
    let (rt, _me) = current().expect("loom object id outside a model");
    let mut reg = rt.lock();
    reg.next_obj += 1;
    reg.next_obj
}

/// Run `f` with the calling thread's vector clock.
pub(crate) fn with_my_clock<R>(f: impl FnOnce(&mut VClock) -> R) -> R {
    let (rt, me) = current().expect("loom clock access outside a model");
    let mut reg = rt.lock();
    f(&mut reg.threads[me].clock)
}

// ---------------------------------------------------------------------------
// Thread lifecycle
// ---------------------------------------------------------------------------

/// Register and start a new model thread running `body`; returns its tid.
pub(crate) fn spawn_thread(body: Box<dyn FnOnce() + Send>) -> usize {
    let (rt, me) = current().expect("loom spawn outside a model");
    sync_point(Point::Op);
    let mut reg = rt.lock();
    let tid = reg.threads.len();
    if tid >= MAX_THREADS {
        let msg = format!("model spawned more than {MAX_THREADS} threads");
        fail_locked(&rt, &mut reg, msg);
    }
    let mut clock = reg.threads[me].clock.clone();
    if clock.len() <= tid {
        clock.resize(tid + 1, 0);
    }
    clock[tid] += 1;
    reg.threads.push(ThreadState {
        status: Status::Runnable,
        clock,
        final_clock: None,
        timed_out: false,
    });
    let rt2 = Arc::clone(&rt);
    let handle = std::thread::Builder::new()
        .name(format!("loom-{tid}"))
        .spawn(move || run_thread(rt2, tid, body))
        .expect("spawn model thread");
    reg.os_handles.push(handle);
    drop(reg);
    tid
}

/// Body of every controlled OS thread: wait for the first turn, run, then
/// hand control back and mark ourselves finished.
///
/// Everything that can panic (including the pre-body turn wait, which
/// unwinds with [`Abandoned`] when another thread has already failed) runs
/// under `catch_unwind`, so the finish bookkeeping below always executes —
/// otherwise the coordinator would wait on `execution_done` forever.
fn run_thread(rt: Arc<RtShared>, tid: usize, body: Box<dyn FnOnce() + Send>) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt), tid)));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        {
            let reg = rt.lock();
            wait_for_turn(&rt, reg, tid);
        }
        body();
    }));
    CURRENT.with(|c| *c.borrow_mut() = None);

    {
        let mut reg = rt.lock();
        if let Err(payload) = result {
            if payload.downcast_ref::<Abandoned>().is_none() && reg.failed.is_none() {
                reg.failed = Some(describe_panic(payload.as_ref()));
                reg.failure = Some(payload);
            }
        }
        let final_clock = reg.threads[tid].clock.clone();
        reg.threads[tid].status = Status::Finished;
        reg.threads[tid].final_clock = Some(final_clock);
        // Wake joiners.
        for t in reg.threads.iter_mut() {
            if t.status == Status::Blocked(Blocker::Join(tid)) {
                t.status = Status::Runnable;
            }
        }
        if reg.failed.is_some() {
            if reg.threads.iter().all(|t| t.status == Status::Finished) {
                reg.execution_done = true;
            }
            rt.cv.notify_all();
            return;
        }
    }
    // The final hand-off can itself detect a failure (deadlock among the
    // remaining threads) and unwind; catch it so this OS thread exits
    // cleanly instead of aborting the process from a panicking landing pad.
    let _ = panic::catch_unwind(AssertUnwindSafe(|| {
        let mut reg = rt.lock();
        schedule_next(&rt, &mut reg, tid, Point::Forced);
    }));
}

#[allow(clippy::disallowed_methods)] // sanctioned: test-harness failure reporting
fn describe_panic(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

/// Wait for thread `tid` to finish, joining its clock into ours.
pub(crate) fn join_thread(tid: usize) {
    let (rt, me) = current().expect("loom join outside a model");
    sync_point(Point::Op);
    loop {
        {
            let mut reg = rt.lock();
            if reg.threads[tid].status == Status::Finished {
                let fc = reg.threads[tid]
                    .final_clock
                    .clone()
                    .expect("finished thread has a final clock");
                vc_join(&mut reg.threads[me].clock, &fc);
                return;
            }
        }
        block_on(Blocker::Join(tid));
    }
}

// ---------------------------------------------------------------------------
// The model loop
// ---------------------------------------------------------------------------

/// Run `f` under every (preemption-bounded) thread interleaving.
pub(crate) fn model(f: impl Fn() + Send + Sync + 'static) {
    assert!(
        !in_model(),
        "nested loom::model calls are not supported"
    );
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_branches = env_usize("LOOM_MAX_BRANCHES", 50_000);
    let max_executions = env_usize("LOOM_MAX_EXECUTIONS", 500_000);
    let f = Arc::new(f);
    let mut path: Vec<Decision> = Vec::new();
    let mut executions = 0usize;

    loop {
        executions += 1;
        assert!(
            executions <= max_executions,
            "loom: state space exceeds {max_executions} executions; \
             shrink the model or raise LOOM_MAX_EXECUTIONS"
        );
        let rt = Arc::new(RtShared::new(
            std::mem::take(&mut path),
            max_preemptions,
            max_branches,
        ));
        {
            let mut reg = rt.lock();
            reg.threads.push(ThreadState {
                status: Status::Runnable,
                clock: vec![1],
                final_clock: None,
                timed_out: false,
            });
            let rt2 = Arc::clone(&rt);
            let f2 = Arc::clone(&f);
            let handle = std::thread::Builder::new()
                .name("loom-0".into())
                .spawn(move || run_thread(rt2, 0, Box::new(move || f2())))
                .expect("spawn model main thread");
            reg.os_handles.push(handle);
        }
        let (failure, trace, explored_path, handles) = {
            let mut reg = rt.lock();
            while !reg.execution_done {
                reg = rt.cv.wait(reg).unwrap_or_else(|e| e.into_inner());
            }
            (
                reg.failure.take(),
                std::mem::take(&mut reg.trace),
                std::mem::take(&mut reg.schedule.path),
                std::mem::take(&mut reg.os_handles),
            )
        };
        for h in handles {
            let _ = h.join();
        }
        if let Some(payload) = failure {
            eprintln!(
                "loom: execution #{executions} failed; schedule (thread ids): {trace:?}"
            );
            panic::resume_unwind(payload);
        }
        path = explored_path;
        if !advance(&mut path, max_preemptions) {
            eprintln!("loom: model passed; explored {executions} executions");
            return;
        }
    }
}
