//! `cargo xtask account-check` — static loss-accounting and
//! counter-conservation analyzer (DESIGN.md §15).
//!
//! A measurement pipeline that silently drops records lies about the
//! network: an unaccounted discard is indistinguishable from real loss.
//! PR 5 made counter conservation a *dynamic* invariant; this pass proves
//! the complementary *static* property — no discard site reachable from
//! the dataplane roots is unaccounted:
//!
//! 1. **Discard-site detection** — early-exit shapes in functions
//!    reachable from the dataplane roots (`dataplane_worker`,
//!    `run_to_completion_worker`, `detector_loop`, the burst APIs, the
//!    telemetry collector):
//!    - `continue` / `break` inside per-packet/per-record loops
//!      (`unaccounted-continue`),
//!    - `?` and `return Err(..)` / `return None` propagating a failure
//!      out of the hot path (`unaccounted-try`),
//!    - match arms that drop a failure payload — `Err(_) =>` /
//!      `None =>` (`match-drop`),
//!    - `let _ =` discarding a `Result`-returning mq/tsdb send
//!      (`discarded-send`).
//!
//!    Each site must be **paired** with an accounting write — a
//!    `RejectCounters`/telemetry counter increment in the same innermost
//!    block (for match arms: the arm body), or a directly-called helper
//!    whose body increments one — or carry an audited
//!    `// account-ok: <reason>` annotation. Empty-reason and stale
//!    annotations are violations, same policy as `panic-ok`/`alloc-ok`.
//!    Sites whose line mentions `Reject` are accounted by construction:
//!    the typed `Reject` is the accounting currency, recorded per-cause
//!    at the engine catch-site (`rejects.record(reject)`).
//!
//! 2. **Counter liveness** (`dead-counter`) — every metric id declared
//!    against a `RegistryBuilder` must have at least one write site on a
//!    reachable path: the declared binding (struct field or `let`) must
//!    be used outside its declaration, in a function the roots reach.
//!    Snapshot export needs no per-metric check — the registry is
//!    fixed-shape, so every declared id is folded into every `Snapshot`
//!    by construction (enforced by `ruru-telemetry`'s own tests).
//!
//! 3. **Conservation-manifest liveness** (`identity-term-missing`) —
//!    every `Counter(..)`/`Gauge(..)`/`Hist(..)` term named in
//!    `crates/pipeline/src/conservation.rs` must be a declared, live
//!    metric, so the identity list the dynamic tests evaluate can never
//!    drift from what exists. A workspace that declares metrics but has
//!    no manifest fails loudly (`conservation-manifest`).
//!
//! `tsdb` is exempt from discard scanning: its `Result` surface is
//! query-path control flow (missing series, empty ranges), not record
//! accounting — and ingest conservation is enforced dynamically by the
//! `tsdb-accounting` and `tsdb-merge-accounting` identities instead. So
//! are the
//! E7 comparison baselines under `flow/src/baseline/` — deliberately
//! lossy reference designs whose misses are the experiment's subject.

use crate::callgraph::{
    analyzer_json, match_brace, skip_ws, word_positions, Finding, Workspace,
};
use crate::panic_check::DATAPLANE_CRATES;
use crate::suppress::Suppressions;
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

/// Loss-accounting roots: the per-record worker loops, the burst APIs
/// records flow through, and the telemetry collector (gauge mirror
/// writes live there).
const ROOTS: &[(&str, &str)] = &[
    ("pipeline", "dataplane_worker"),
    ("pipeline", "run_to_completion_worker"),
    ("pipeline", "detector_loop"),
    ("pipeline", "collect_into"),
    // Flow burst surface.
    ("flow", "process_burst"),
    ("flow", "lookup_burst"),
    ("flow", "insert_burst"),
    ("flow", "classify_mbuf"),
    ("flow", "housekeep_guarded"),
    // Continuous in-flow RTT burst surface, pinned by type so coverage
    // survives if the unqualified names above are ever narrowed.
    ("flow", "InflowTracker::process_burst"),
    ("flow", "InflowTracker::housekeep_guarded"),
    // Message-queue batch surface.
    ("mq", "send_batch"),
    ("mq", "recv_batch"),
    ("mq", "try_recv_batch"),
    ("mq", "publish_batch"),
    // NIC burst surface.
    ("nic", "rx_burst"),
    ("nic", "push_burst"),
    ("nic", "pop_burst"),
    // Telemetry write + collect protocol.
    ("telemetry", "burst_begin"),
    ("telemetry", "burst_end"),
    ("telemetry", "snapshot_into"),
    // Enrichment-pool handle bundle: the pool loop itself lives in
    // ruru-analytics (outside the scanned dataplane crates), so the
    // counters it writes are rooted at the handle constructor.
    ("pipeline", "pool_telemetry"),
];

/// Line patterns that count as an accounting write: per-cause reject
/// recording, the engine's local reject tally, registry writes, the
/// collector's torn-shard tally, the pull-mirrored stat-struct bumps
/// (`TrackerStats`/port/bus stats — `collect_into` turns them into
/// registry gauges), the lock-free drop tallies (`drops.fetch_add`), and
/// the detector's decode-failure delta (flushed via `counter_add`).
const ACCOUNT_PATTERNS: &[&str] = &[
    ".record(",
    "record_bus_closed(",
    "counter_add(",
    "gauge_store(",
    "hist_record(",
    "reject_counts",
    "skipped_shards",
    "stats.",
    ".fetch_add(",
    "decode_errors",
];

/// `Result`-returning send surfaces whose value must not be discarded
/// with `let _ =` without accounting.
const SEND_PATTERNS: &[&str] = &[
    ".send(",
    "send_batch(",
    ".try_send(",
    ".publish(",
    "publish_batch(",
    ".write(",
    "write_line(",
];

/// Crates exempt from discard scanning: tsdb `Result`s are query-path
/// control flow, and its ingest is conserved dynamically by the
/// tsdb accounting identities.
const DISCARD_EXEMPT: &[&str] = &["tsdb"];

/// One declared metric id: name literal, bound identifier, declaration
/// site.
struct MetricDecl {
    name: String,
    ident: Option<String>,
    file: usize,
    /// 0-based declaration line.
    line: usize,
}

/// The full result of one `account-check` run.
pub struct AccountAnalysis {
    pub fn_count: usize,
    pub edge_count: usize,
    /// Unpaired, unannotated discard sites + liveness failures.
    pub violations: Vec<Finding>,
    /// Suppressed sites: (path, 1-based line, audited reason).
    pub audited: Vec<(String, usize, String)>,
    /// `account-ok` audit failures (empty reason, unused annotation).
    pub annotation_errors: Vec<Finding>,
    /// Reachable discard shapes that were paired with accounting.
    pub paired_sites: usize,
    /// Discard shapes in functions no root reaches (reported, not fatal).
    pub unreachable_sites: usize,
    /// Metric ids declared against a `RegistryBuilder`.
    pub metrics_declared: usize,
    /// Conservation-manifest terms checked.
    pub identity_terms: usize,
    /// Per-crate (crate, fns, reachable fns, violations).
    pub per_crate: Vec<(String, usize, usize, usize)>,
}

/// CLI entry: `cargo xtask account-check [--root DIR] [--json PATH]`.
pub fn run(args: &[String]) -> ExitCode {
    let cli = match crate::check_all::parse_cli("account-check", args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    match analyze(&cli.root) {
        Ok(a) => {
            if let Some(path) = &cli.json {
                let section = json_section(&a);
                if let Err(e) = crate::callgraph::write_json_report(path, &[section]) {
                    eprintln!("account-check: {e}");
                    return ExitCode::FAILURE;
                }
            }
            report(&a)
        }
        Err(e) => {
            eprintln!("account-check: {e}");
            ExitCode::FAILURE
        }
    }
}

/// All fatal findings, ordered violations-then-annotation-errors.
pub fn findings_of(a: &AccountAnalysis) -> Vec<&Finding> {
    a.violations.iter().chain(&a.annotation_errors).collect()
}

/// This analyzer's section of the shared `--json` report.
pub fn json_section(a: &AccountAnalysis) -> String {
    analyzer_json("account-check", &findings_of(a), a.audited.len())
}

/// Print the per-crate report and turn the analysis into an exit code.
fn report(a: &AccountAnalysis) -> ExitCode {
    println!(
        "account-check: {} fns, {} call edges across {}",
        a.fn_count,
        a.edge_count,
        DATAPLANE_CRATES.join(", ")
    );
    for (name, fns, reachable, viols) in &a.per_crate {
        println!("  {name:<9} {fns:>4} fns  {reachable:>4} reachable  {viols:>3} violation(s)");
    }
    println!(
        "  paired discard sites: {}; audited account-ok: {}; discards outside the reachable dataplane: {}",
        a.paired_sites,
        a.audited.len(),
        a.unreachable_sites
    );
    println!(
        "  metrics declared: {}; conservation identity terms: {}",
        a.metrics_declared, a.identity_terms
    );
    let total = a.violations.len() + a.annotation_errors.len();
    if total == 0 {
        println!("account-check: clean");
        return ExitCode::SUCCESS;
    }
    for v in a.violations.iter().chain(&a.annotation_errors) {
        eprintln!("{v}");
    }
    eprintln!("account-check: {total} violation(s)");
    ExitCode::FAILURE
}

/// Run the analyzer over `<root>/crates/{wire,nic,flow,mq,tsdb,telemetry,pipeline}`.
pub fn analyze(root: &Path) -> Result<AccountAnalysis, String> {
    let ws = Workspace::load(root, DATAPLANE_CRATES)?;
    let reach = ws.reach(ROOTS);
    let mut sup =
        Suppressions::new("account-ok:", "account-ok-empty", "account-ok-unused");
    let mut violations = Vec::new();
    let mut crate_viols: HashMap<&str, usize> = HashMap::new();
    let mut paired_sites = 0usize;
    let mut unreachable_sites = 0usize;

    // First char index of each line in the file's flat stream.
    let line_starts: Vec<Vec<usize>> = ws
        .files
        .iter()
        .map(|f| {
            let mut starts = Vec::with_capacity(f.view.code.len() + 1);
            let mut acc = 0usize;
            for l in &f.view.code {
                starts.push(acc);
                acc += l.chars().count() + 1; // + '\n'
            }
            starts.push(acc);
            starts
        })
        .collect();

    // Fns whose body performs an accounting write (helper pairing, depth 1).
    let accounting: Vec<bool> = ws
        .fns
        .iter()
        .map(|f| {
            let file = &ws.files[f.file];
            (f.start_line..=f.end_line).any(|ln| {
                file.view
                    .code
                    .get(ln)
                    .is_some_and(|l| ACCOUNT_PATTERNS.iter().any(|p| l.contains(p)))
            })
        })
        .collect();

    // --- pass 1: discard-site detection ---------------------------------
    for (fi, file) in ws.files.iter().enumerate() {
        if DISCARD_EXEMPT.contains(&file.crate_name.as_str()) {
            continue;
        }
        // The E7 comparison baselines (expiring/pping/synonly) are
        // deliberately lossy reference implementations, not the production
        // dataplane — their whole point is to measure what unaccounted
        // designs miss.
        if file.rel.contains("/baseline/") {
            continue;
        }
        for (idx, line) in file.view.code.iter().enumerate() {
            if file.view.in_tests[idx] || line.trim_start().starts_with('#') {
                continue;
            }
            let hits = classify_line(line);
            if hits.is_empty() {
                continue;
            }
            let Some(owner) = ws.innermost_fn(fi, idx) else {
                continue; // top-level item, not executable dataplane code
            };
            if sup.check(&ws, fi, idx, &ws.label(owner)) {
                continue;
            }
            if !reach.reachable[owner] {
                unreachable_sites += hits.len();
                continue;
            }
            for (rule, col) in hits {
                let site_pos = line_starts[fi][idx] + col;
                if is_paired(&ws, &accounting, fi, owner, site_pos, rule, idx) {
                    paired_sites += 1;
                    continue;
                }
                *crate_viols.entry(crate_of(&file.rel)).or_default() += 1;
                violations.push(Finding {
                    rule,
                    path: file.rel.clone(),
                    line: idx + 1,
                    func: ws.label(owner),
                    snippet: ws.snippet(fi, idx),
                    witness: reach.witness(&ws, owner),
                });
            }
        }
    }

    // --- pass 2: counter liveness ----------------------------------------
    let decls = collect_metric_decls(&ws);
    for d in &decls {
        if sup.check(&ws, d.file, d.line, "-") {
            continue;
        }
        if !metric_is_live(&ws, &reach, d) {
            *crate_viols
                .entry(crate_of(&ws.files[d.file].rel))
                .or_default() += 1;
            violations.push(Finding {
                rule: "dead-counter",
                path: ws.files[d.file].rel.clone(),
                line: d.line + 1,
                func: format!("metric `{}`", d.name),
                snippet: ws.snippet(d.file, d.line),
                witness: vec!["no reachable write site".into()],
            });
        }
    }

    // --- pass 3: conservation-manifest liveness --------------------------
    let mut identity_terms = 0usize;
    let manifest = ws
        .files
        .iter()
        .position(|f| f.rel.ends_with("pipeline/src/conservation.rs"));
    match manifest {
        None if !decls.is_empty() => {
            violations.push(Finding {
                rule: "conservation-manifest",
                path: "crates/pipeline/src/conservation.rs".into(),
                line: 1,
                func: "-".into(),
                snippet: "metrics are declared but no conservation manifest exists".into(),
                witness: vec!["manifest audit".into()],
            });
        }
        None => {}
        Some(mi) => {
            for (name, idx) in manifest_terms(&ws, mi) {
                identity_terms += 1;
                let decl = decls.iter().find(|d| d.name == name);
                let live = decl.is_some_and(|d| metric_is_live(&ws, &reach, d));
                if decl.is_none() || !live {
                    if sup.check(&ws, mi, idx, "-") {
                        continue;
                    }
                    let why = if decl.is_none() {
                        "term is not a declared metric"
                    } else {
                        "term's metric has no reachable write site"
                    };
                    *crate_viols.entry("pipeline").or_default() += 1;
                    violations.push(Finding {
                        rule: "identity-term-missing",
                        path: ws.files[mi].rel.clone(),
                        line: idx + 1,
                        func: format!("term `{name}`"),
                        snippet: ws.snippet(mi, idx),
                        witness: vec![why.into()],
                    });
                }
            }
        }
    }

    sup.audit_unused(&ws);

    // --- per-crate rollup -------------------------------------------------
    let mut per_crate = Vec::new();
    for krate in DATAPLANE_CRATES {
        let fns = ws
            .fns
            .iter()
            .filter(|f| ws.files[f.file].crate_name == *krate)
            .count();
        let reachable = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(id, f)| ws.files[f.file].crate_name == *krate && reach.reachable[*id])
            .count();
        per_crate.push((
            krate.to_string(),
            fns,
            reachable,
            crate_viols.get(*krate).copied().unwrap_or(0),
        ));
    }

    Ok(AccountAnalysis {
        fn_count: ws.fns.len(),
        edge_count: ws.edge_count,
        violations,
        audited: std::mem::take(&mut sup.audited),
        annotation_errors: std::mem::take(&mut sup.errors),
        paired_sites,
        unreachable_sites,
        metrics_declared: decls.len(),
        identity_terms,
        per_crate,
    })
}

fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("?")
}

/// Discard shapes on one comment/string-stripped code line:
/// `(rule, char column)` per hit.
fn classify_line(line: &str) -> Vec<(&'static str, usize)> {
    let mut hits = Vec::new();
    // A typed `Reject` on the line is the accounting currency itself:
    // constructing/propagating it hands the loss to the engine catch-site,
    // which records per-cause. Wire's typed parse errors are the same
    // currency one hop earlier: `classify_mbuf` converts each `Error`
    // variant into its `Reject` cause at the crate boundary.
    let carries_reject = line.contains("Reject") || line.contains("Err(Error::");
    for kw in ["continue", "break"] {
        for pos in word_positions(line, kw) {
            hits.push(("unaccounted-continue", col_of(line, pos)));
        }
    }
    if !carries_reject {
        for (pos, _) in line.char_indices().filter(|&(_, c)| c == '?') {
            if line[pos..].starts_with("?Sized") {
                continue;
            }
            hits.push(("unaccounted-try", col_of(line, pos)));
        }
        for pos in word_positions(line, "return") {
            let rest = &line[pos..];
            if rest.contains("Err(") || !word_positions(rest, "None").is_empty() {
                hits.push(("unaccounted-try", col_of(line, pos)));
            }
        }
        for (pos, _) in line.match_indices("=>") {
            let pat = &line[..pos];
            let trimmed = pat.trim();
            let arm_pat = trimmed.rsplit(',').next().unwrap_or(trimmed).trim();
            if pat.contains("Err(_") || arm_pat == "None" {
                hits.push(("match-drop", col_of(line, pos)));
            }
        }
    }
    if line.contains("let _ =") && SEND_PATTERNS.iter().any(|p| line.contains(p)) {
        let pos = line.find("let _ =").unwrap_or(0);
        hits.push(("discarded-send", col_of(line, pos)));
    }
    hits
}

/// Byte position → char column (the flat stream is char-indexed).
fn col_of(line: &str, byte_pos: usize) -> usize {
    line[..byte_pos].chars().count()
}

/// Is the discard at `site_pos` (flat char index) paired with an
/// accounting write in its innermost block — or, for a match arm, its arm
/// body — either directly or through a directly-called accounting helper?
fn is_paired(
    ws: &Workspace,
    accounting: &[bool],
    fi: usize,
    owner: usize,
    site_pos: usize,
    rule: &str,
    line_idx: usize,
) -> bool {
    let flat = &ws.flats[fi];
    let f = &ws.fns[owner];
    let (start, end) = if rule == "match-drop" {
        // Arm scope: the `{ ... }` after `=>`, or the rest of the line.
        let mut p = site_pos + 2; // past "=>"
        p = skip_ws(&flat.chars, p);
        if flat.chars.get(p) == Some(&'{') {
            (p, match_brace(&flat.chars, p))
        } else {
            let mut e = p;
            while e < flat.chars.len() && flat.chars[e] != '\n' {
                e += 1;
            }
            (p, e)
        }
    } else {
        // Innermost block containing the site.
        let mut stack: Vec<usize> = Vec::new();
        let from = f.body_start.min(site_pos);
        for p in from..site_pos.min(flat.chars.len()) {
            match flat.chars[p] {
                '{' => stack.push(p),
                '}' => {
                    stack.pop();
                }
                _ => {}
            }
        }
        match stack.last() {
            Some(&open) => (open, match_brace(&flat.chars, open)),
            None => (f.body_start, f.body_end),
        }
    };

    let text: String = flat.chars[start.min(flat.chars.len())..end.min(flat.chars.len())]
        .iter()
        .collect();
    if ACCOUNT_PATTERNS.iter().any(|p| text.contains(p)) {
        return true;
    }
    // Directly-called helper whose body accounts.
    let first_line = *flat.line_of.get(start).unwrap_or(&line_idx);
    let last_line = *flat
        .line_of
        .get(end.min(flat.line_of.len().saturating_sub(1)))
        .unwrap_or(&line_idx);
    for call in &ws.calls[owner] {
        if call.line < first_line || call.line > last_line {
            continue;
        }
        if ws
            .resolve(call, f)
            .into_iter()
            .any(|target| accounting[target])
        {
            return true;
        }
    }
    false
}

/// Every metric declared against a `RegistryBuilder`: lines of the form
/// `field: b.counter("name")` / `let id = b.gauge("name")` inside a fn
/// whose body mentions `RegistryBuilder`. Query-side `.counter("x")`
/// calls on a `Snapshot` live in other fns and are not collected.
fn collect_metric_decls(ws: &Workspace) -> Vec<MetricDecl> {
    let mut decls = Vec::new();
    for f in &ws.fns {
        let file = &ws.files[f.file];
        let in_builder_fn = (f.start_line..=f.end_line).any(|ln| {
            file.view
                .code
                .get(ln)
                .is_some_and(|l| l.contains("RegistryBuilder"))
        });
        if !in_builder_fn {
            continue;
        }
        for ln in f.start_line..=f.end_line {
            let Some(code) = file.view.code.get(ln) else {
                continue;
            };
            if file.view.in_tests[ln] {
                continue;
            }
            for pat in [".counter(", ".gauge(", ".histogram("] {
                for (pos, _) in code.match_indices(pat) {
                    let Some(raw) = file.raw.get(ln) else { continue };
                    let Some(name) = literal_after(raw, pat) else {
                        continue; // dynamic name: not a declaration form
                    };
                    decls.push(MetricDecl {
                        name,
                        ident: binding_ident(&code[..pos]),
                        file: f.file,
                        line: ln,
                    });
                }
            }
        }
    }
    decls
}

/// First `"..."` literal after `pat` in `raw`.
fn literal_after(raw: &str, pat: &str) -> Option<String> {
    let after = &raw[raw.find(pat)? + pat.len()..];
    let after = after.trim_start();
    let rest = after.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The identifier a declaration binds: `ident: b.counter(..)` (struct
/// field) or `let ident = b.counter(..)`.
fn binding_ident(prefix: &str) -> Option<String> {
    let mut s = prefix.trim_end();
    // Strip the builder receiver chain (`b`, `builder`, `self.b`, ...).
    while s
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.')
    {
        s = &s[..s.len() - s.chars().next_back().map_or(0, char::len_utf8)];
    }
    s = s.trim_end();
    let sep = s.chars().next_back()?;
    if sep != ':' && sep != '=' {
        return None;
    }
    s = s[..s.len() - 1].trim_end();
    let ident: String = s
        .chars()
        .rev()
        .take_while(|&c| c.is_alphanumeric() || c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(ident)
    }
}

/// A declared metric is live when its binding is used outside the
/// declaration, in a fn some root reaches (the collector counts — it is
/// rooted). Id-typed struct/signature lines are declarations, not uses.
fn metric_is_live(
    ws: &Workspace,
    reach: &crate::callgraph::Reach,
    d: &MetricDecl,
) -> bool {
    let Some(ident) = &d.ident else { return false };
    for (fi, file) in ws.files.iter().enumerate() {
        for (idx, line) in file.view.code.iter().enumerate() {
            if file.view.in_tests[idx] || (fi == d.file && idx == d.line) {
                continue;
            }
            if [".counter(", ".gauge(", ".histogram("]
                .iter()
                .any(|p| line.contains(p))
            {
                continue;
            }
            if ["CounterId", "GaugeId", "HistId"].iter().any(|t| line.contains(t)) {
                continue;
            }
            if word_positions(line, ident).is_empty() {
                continue;
            }
            let Some(owner) = ws.innermost_fn(fi, idx) else {
                continue;
            };
            if reach.reachable[owner] {
                return true;
            }
        }
    }
    false
}

/// `Counter("x")` / `Gauge("x")` / `Hist("x")` terms named in the
/// conservation manifest: `(metric name, 0-based line)`.
fn manifest_terms(ws: &Workspace, mi: usize) -> Vec<(String, usize)> {
    let file = &ws.files[mi];
    let mut terms = Vec::new();
    for (idx, code) in file.view.code.iter().enumerate() {
        if file.view.in_tests[idx] {
            continue;
        }
        for kind in ["Counter(", "Gauge(", "Hist("] {
            if word_positions(code, &kind[..kind.len() - 1]).is_empty() {
                continue;
            }
            let Some(raw) = file.raw.get(idx) else { continue };
            // The code view strips string contents, so extract names from
            // the raw line; anything after a `//` is commentary.
            let scan = raw.find("//").map_or(raw.as_str(), |c| &raw[..c]);
            for pos in word_positions(scan, &kind[..kind.len() - 1]) {
                if !scan[pos..].starts_with(kind) {
                    continue;
                }
                if let Some(name) = literal_after(&scan[pos..], kind) {
                    terms.push((name, idx));
                }
            }
        }
    }
    terms.sort();
    terms.dedup();
    terms
}

#[cfg(test)]
mod tests;
