//! `cargo xtask check-all` — run every static pass (lint, panic-check,
//! hotpath-check, account-check) with per-step timing, as the single
//! entry point CI and `scripts/check.sh` invoke. With `--json PATH`, the
//! findings of all four passes are written into one combined report
//! (`-` for stdout) for upload as a CI artifact.

use crate::callgraph::{json_escape, write_json_report, Finding};
use std::path::PathBuf;
use std::process::ExitCode;

/// Shared CLI surface of the analyzers: `[--root DIR] [--json PATH]`.
pub struct CliArgs {
    pub root: PathBuf,
    pub json: Option<String>,
}

/// Parse the shared flags, printing usage errors under `name`.
pub fn parse_cli(name: &str, args: &[String]) -> Result<CliArgs, ExitCode> {
    let mut root = None;
    let mut json = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("{name}: --root needs a directory");
                    return Err(ExitCode::from(2));
                }
            },
            "--json" => match it.next() {
                Some(p) => json = Some(p.clone()),
                None => {
                    eprintln!("{name}: --json needs a path (or `-` for stdout)");
                    return Err(ExitCode::from(2));
                }
            },
            other => {
                eprintln!("{name}: unknown flag {other}");
                return Err(ExitCode::from(2));
            }
        }
    }
    Ok(CliArgs {
        root: root.unwrap_or_else(crate::lexer::workspace_root),
        json,
    })
}

/// CLI entry: `cargo xtask check-all [--root DIR] [--json PATH]`.
pub fn run(args: &[String]) -> ExitCode {
    let cli = match parse_cli("check-all", args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let mut sections: Vec<String> = Vec::new();
    let mut failed: Vec<&'static str> = Vec::new();

    // Host tooling wall-clock, never dataplane time.
    let now = std::time::Instant::now;

    let t = now();
    let lint_result = crate::lint::lint_dir(&cli.root);
    match &lint_result {
        Ok((files, violations)) => {
            sections.push(lint_json(violations));
            if violations.is_empty() {
                step_line("lint", true, t.elapsed(), &format!("{files} files clean"));
            } else {
                for v in violations {
                    eprintln!("{v}");
                }
                step_line("lint", false, t.elapsed(), &format!("{} violation(s)", violations.len()));
                failed.push("lint");
            }
        }
        Err(e) => {
            eprintln!("lint: {e}");
            failed.push("lint");
        }
    }

    let t = now();
    match crate::panic_check::analyze(&cli.root) {
        Ok(a) => {
            let findings = crate::panic_check::findings_of(&a);
            sections.push(crate::panic_check::json_section(&a));
            if findings.is_empty() {
                step_line("panic-check", true, t.elapsed(), &summary(a.fn_count, a.audited.len()));
            } else {
                print_findings(&findings);
                step_line("panic-check", false, t.elapsed(), &format!("{} finding(s)", findings.len()));
                failed.push("panic-check");
            }
        }
        Err(e) => {
            eprintln!("panic-check: {e}");
            failed.push("panic-check");
        }
    }

    let t = now();
    match crate::hotpath_check::analyze(&cli.root) {
        Ok(a) => {
            let findings = crate::hotpath_check::findings_of(&a);
            sections.push(crate::hotpath_check::json_section(&a));
            if findings.is_empty() {
                step_line(
                    "hotpath-check",
                    true,
                    t.elapsed(),
                    &summary(a.fn_count, a.audited_alloc + a.audited_lock),
                );
            } else {
                print_findings(&findings);
                step_line("hotpath-check", false, t.elapsed(), &format!("{} finding(s)", findings.len()));
                failed.push("hotpath-check");
            }
        }
        Err(e) => {
            eprintln!("hotpath-check: {e}");
            failed.push("hotpath-check");
        }
    }

    let t = now();
    match crate::account_check::analyze(&cli.root) {
        Ok(a) => {
            let findings = crate::account_check::findings_of(&a);
            sections.push(crate::account_check::json_section(&a));
            if findings.is_empty() {
                step_line("account-check", true, t.elapsed(), &summary(a.fn_count, a.audited.len()));
            } else {
                print_findings(&findings);
                step_line("account-check", false, t.elapsed(), &format!("{} finding(s)", findings.len()));
                failed.push("account-check");
            }
        }
        Err(e) => {
            eprintln!("account-check: {e}");
            failed.push("account-check");
        }
    }

    if let Some(path) = &cli.json {
        if let Err(e) = write_json_report(path, &sections) {
            eprintln!("check-all: {e}");
            return ExitCode::FAILURE;
        }
        if path != "-" {
            println!("check-all: findings report written to {path}");
        }
    }

    if failed.is_empty() {
        println!("check-all: all passes clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("check-all: FAILED ({})", failed.join(", "));
        ExitCode::FAILURE
    }
}

fn summary(fns: usize, audited: usize) -> String {
    format!("{fns} fns, {audited} audited suppression(s)")
}

fn step_line(name: &str, ok: bool, elapsed: std::time::Duration, detail: &str) {
    println!(
        "check-all: [{}] {name:<13} {:>6.2}s  {detail}",
        if ok { "ok" } else { "FAIL" },
        elapsed.as_secs_f64()
    );
}

fn print_findings(findings: &[&Finding]) {
    for f in findings {
        eprintln!("{f}");
    }
}

/// Lint violations in the shared findings JSON shape (no call-graph, so
/// no witness chain).
fn lint_json(violations: &[crate::lint::Violation]) -> String {
    let items: Vec<String> = violations
        .iter()
        .map(|v| {
            format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"func\":\"-\",\"snippet\":\"{}\",\"witness\":[]}}",
                json_escape(v.rule),
                json_escape(&v.path),
                v.line,
                json_escape(&v.message)
            )
        })
        .collect();
    format!(
        "{{\"analyzer\":\"lint\",\"findings\":[{}],\"audited\":0}}",
        items.join(",")
    )
}
