//! Shared suppression-annotation scanner for the static analyzers.
//!
//! Every analyzer pass shares one annotation grammar: a finding on a line
//! may be suppressed by `// <needle> <reason>` on the same line or in the
//! comment block directly above it (`panic-ok:` for panic-check,
//! `alloc-ok:` / `lock-ok:` for hotpath-check, `account-ok:` for
//! account-check). The policy is identical across passes — a suppression
//! with an empty reason is a violation, and an annotation that no longer
//! suppresses anything (stale after a refactor) is a violation — so the
//! bookkeeping lives here rather than being re-implemented per analyzer.

use crate::callgraph::{Finding, Workspace};
use crate::lexer::annotation_above_at;
use std::collections::HashSet;

/// Tracks one annotation grammar (`panic-ok:` / `alloc-ok:` / `lock-ok:` /
/// `account-ok:`): which annotations suppressed a finding, which carried
/// no reason, and — after the scan — which suppressed nothing at all
/// (stale).
pub struct Suppressions {
    needle: &'static str,
    rule_empty: &'static str,
    rule_unused: &'static str,
    used: HashSet<(usize, usize)>,
    /// Suppressed sites: (path, 1-based line, audited reason).
    pub audited: Vec<(String, usize, String)>,
    /// Empty-reason findings collected during [`Suppressions::check`].
    pub errors: Vec<Finding>,
}

impl Suppressions {
    pub fn new(
        needle: &'static str,
        rule_empty: &'static str,
        rule_unused: &'static str,
    ) -> Suppressions {
        Suppressions {
            needle,
            rule_empty,
            rule_unused,
            used: HashSet::new(),
            audited: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// If line `idx` of `file` carries the annotation (inline or in the
    /// comment block directly above), record it as used and return true —
    /// the caller should skip its finding. Empty reasons are collected as
    /// annotation errors.
    pub fn check(&mut self, ws: &Workspace, file: usize, idx: usize, func: &str) -> bool {
        let Some((ann_line, reason)) =
            annotation_above_at(&ws.files[file].view, idx, self.needle)
        else {
            return false;
        };
        self.used.insert((file, ann_line));
        if reason.is_empty() {
            self.errors.push(Finding {
                rule: self.rule_empty,
                path: ws.files[file].rel.clone(),
                line: ann_line + 1,
                func: func.to_string(),
                snippet: ws.snippet(file, ann_line),
                witness: vec!["annotation audit".into()],
            });
        } else {
            self.audited
                .push((ws.files[file].rel.clone(), idx + 1, reason));
        }
        true
    }

    /// Scan every comment for annotations that never suppressed anything
    /// and append them to `errors`. Call once, after the full scan.
    pub fn audit_unused(&mut self, ws: &Workspace) {
        for (fi, file) in ws.files.iter().enumerate() {
            for (idx, comment) in file.view.comments.iter().enumerate() {
                if file.view.in_tests[idx] || !comment.contains(self.needle) {
                    continue;
                }
                if !self.used.contains(&(fi, idx)) {
                    self.errors.push(Finding {
                        rule: self.rule_unused,
                        path: file.rel.clone(),
                        line: idx + 1,
                        func: "-".into(),
                        snippet: ws.snippet(fi, idx),
                        witness: vec!["annotation audit".into()],
                    });
                }
            }
        }
    }
}
