//! `cargo xtask lint` — the concurrency invariants rustc cannot enforce
//! (see DESIGN.md §9). Rules:
//!
//! 1. **unsafe-allowlist** — `unsafe` code may only appear in the modules
//!    that implement the two lock-free structures (`ruru-nic`'s `ring.rs`
//!    and `queue.rs`) and in the model checker itself (`crates/loom`).
//! 2. **safety-comment** — every `unsafe` block or `unsafe impl` must have
//!    a `// SAFETY:` comment on the same line or in the comment block
//!    immediately above it.
//! 3. **seqcst-ban** — `Ordering::SeqCst` is banned (`crates/loom` exempt).
//! 4. **relaxed-head-tail** — a `Relaxed` access on a line touching the
//!    ring's `head`/`tail` counters must carry a `lint: relaxed-ok` comment.
//! 5. **sleep-ban** — `thread::sleep` may not appear in the poll-mode hot
//!    path; idle waiting must go through `ruru_nic::backoff::Backoff`.
//! 6. **raw-atomic-import** — inside the shimmed crates (`ruru-nic`,
//!    `ruru-mq`), production code must take atomics from the crate's
//!    `sync` shim, never `std::sync::atomic` directly.
//!
//! Test code (`mod tests` regions, `tests/` files, `benches/`) is exempt
//! from 4–6.

use crate::lexer::{annotated_above, collect_rs_files, lex, unicode_ident, FileView};
use std::path::Path;
use std::process::ExitCode;

/// Run the lint over `<root>/crates`, printing violations.
pub fn lint(root: &Path) -> ExitCode {
    match lint_dir(root) {
        Ok((files, violations)) => {
            if violations.is_empty() {
                println!("xtask lint: {files} files clean");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Collect every violation under `<root>/crates`; returns (files checked,
/// violations). Separated from [`lint`] so fixture tests can drive it.
pub fn lint_dir(root: &Path) -> Result<(usize, Vec<Violation>), String> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();
    let mut violations = Vec::new();
    for path in &files {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(check_file(&rel, &source));
    }
    Ok((files.len(), violations))
}

/// One lint finding, displayed as `path:line: [rule] message`.
#[derive(Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Files allowed to contain `unsafe` (the audited lock-free cores and the
/// model checker).
fn unsafe_allowed(path: &str) -> bool {
    path == "crates/nic/src/ring.rs"
        || path == "crates/nic/src/queue.rs"
        // Burst prefetch staging issues `_mm_prefetch` cache hints.
        || path == "crates/flow/src/table/burst.rs"
        // The steady-state allocation audits install a counting
        // `#[global_allocator]` — inherently an `unsafe impl`.
        || path == "crates/flow/tests/alloc_steady_state.rs"
        || path == "crates/telemetry/tests/alloc_steady_state.rs"
        || path == "crates/tsdb/tests/alloc_stripe_ingest.rs"
        || path == "crates/bench/src/bin/flow_table_report.rs"
        || path == "crates/bench/src/bin/scaling_report.rs"
        || path == "crates/bench/src/bin/tsdb_report.rs"
        || path == "crates/bench/src/bin/inflow_report.rs"
        || path.starts_with("crates/loom/")
        || path.starts_with("crates/xtask/")
}

/// Crates exempt from the SeqCst ban (the checker dispatches on orderings;
/// xtask's own sources spell them in lint rules and tests).
fn seqcst_allowed(path: &str) -> bool {
    path.starts_with("crates/loom/") || path.starts_with("crates/xtask/")
}

/// Production code of the shimmed crates: must import atomics via `sync`.
fn shimmed(path: &str) -> bool {
    (path.starts_with("crates/nic/src/")
        || path.starts_with("crates/mq/src/")
        || path.starts_with("crates/telemetry/src/"))
        && !path.ends_with("/sync.rs")
}

/// Hot-path modules where `thread::sleep` is banned.
fn hot_path(path: &str) -> bool {
    path.starts_with("crates/nic/src/")
        || path.starts_with("crates/flow/src/table/")
        || path.starts_with("crates/telemetry/src/")
        || path == "crates/pipeline/src/engine.rs"
        || path == "crates/pipeline/src/telemetry.rs"
}

/// Integration-test / bench files: exempt from the style rules (4–6).
fn test_file(path: &str) -> bool {
    path.contains("/tests/") || path.contains("/benches/")
}

/// Apply every rule to one file.
pub fn check_file(path: &str, source: &str) -> Vec<Violation> {
    let view: FileView = lex(source);
    let mut out = Vec::new();
    let push = |out: &mut Vec<Violation>, line: usize, rule: &'static str, message: String| {
        out.push(Violation {
            path: path.to_string(),
            line: line + 1,
            rule,
            message,
        });
    };

    for (idx, line) in view.code.iter().enumerate() {
        let has_word = |w: &str| {
            line.match_indices(w).any(|(pos, _)| {
                let before = line[..pos].chars().next_back();
                let after = line[pos + w.len()..].chars().next();
                !before.is_some_and(unicode_ident) && !after.is_some_and(unicode_ident)
            })
        };

        // Rule 1 + 2: unsafe allowlist and SAFETY comments.
        if has_word("unsafe") {
            if !unsafe_allowed(path) {
                push(
                    &mut out,
                    idx,
                    "unsafe-allowlist",
                    "`unsafe` outside the audited lock-free modules (ring.rs, queue.rs, crates/loom)"
                        .into(),
                );
            } else if !annotated_above(&view, idx, "SAFETY:") {
                push(
                    &mut out,
                    idx,
                    "safety-comment",
                    "`unsafe` without a `// SAFETY:` comment on or directly above it".into(),
                );
            }
        }

        // Rule 3: SeqCst ban.
        if line.contains("SeqCst") && !seqcst_allowed(path) {
            push(
                &mut out,
                idx,
                "seqcst-ban",
                "`Ordering::SeqCst` is banned; use the weakest ordering that is provably sufficient"
                    .into(),
            );
        }

        let in_test_code = view.in_tests[idx] || test_file(path);

        // Rule 4: Relaxed on head/tail needs a relaxed-ok annotation.
        if !in_test_code
            && !seqcst_allowed(path)
            && line.contains("Relaxed")
            && (has_word("head") || has_word("tail"))
            && !annotated_above(&view, idx, "lint: relaxed-ok")
        {
            push(
                &mut out,
                idx,
                "relaxed-head-tail",
                "`Relaxed` access to a head/tail counter without a `lint: relaxed-ok` justification"
                    .into(),
            );
        }

        // Rule 5: no sleeping on the hot path.
        if !in_test_code && hot_path(path) && line.contains("thread::sleep") {
            push(
                &mut out,
                idx,
                "sleep-ban",
                "`thread::sleep` in a poll-mode hot module; use backoff::Backoff".into(),
            );
        }

        // Rule 6: shimmed crates must not bypass the sync shim.
        if !in_test_code && shimmed(path) && line.contains("std::sync::atomic") {
            push(
                &mut out,
                idx,
                "raw-atomic-import",
                "raw `std::sync::atomic` in a shimmed crate; import via the crate's `sync` module"
                    .into(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(path: &str, src: &str) -> Vec<&'static str> {
        check_file(path, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_file_passes() {
        let src = "use crate::sync::atomic::AtomicU64;\nfn f() -> u32 { 1 }\n";
        assert!(rules("crates/nic/src/port.rs", src).is_empty());
    }

    #[test]
    fn unsafe_outside_allowlist_flagged() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(rules("crates/mq/src/chan.rs", src), ["unsafe-allowlist"]);
        // Same code in an allowlisted file only wants a SAFETY comment.
        assert_eq!(rules("crates/nic/src/ring.rs", src), ["safety-comment"]);
    }

    #[test]
    fn safety_comment_satisfies_allowlisted_unsafe() {
        let src = "// SAFETY: p is valid for reads by contract.\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert!(rules("crates/nic/src/ring.rs", src).is_empty());
        let inline = "fn f(p: *const u8) -> u8 { unsafe { *p } } // SAFETY: contract\n";
        assert!(rules("crates/nic/src/queue.rs", inline).is_empty());
    }

    #[test]
    fn blank_line_detaches_safety_comment() {
        let src = "// SAFETY: stale justification.\n\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(rules("crates/nic/src/ring.rs", src), ["safety-comment"]);
    }

    #[test]
    fn unsafe_in_comments_and_strings_ignored() {
        let src = "//! This module avoids unsafe code.\nconst HINT: &str = \"unsafe\";\n/* unsafe */\n";
        assert!(rules("crates/flow/src/table.rs", src).is_empty());
    }

    #[test]
    fn seqcst_flagged_except_in_loom() {
        let src = "fn f(x: &std::sync::atomic::AtomicU32) { x.load(core::sync::atomic::Ordering::SeqCst); }\n";
        assert_eq!(
            rules("crates/tsdb/src/store.rs", src),
            ["seqcst-ban"]
        );
        assert!(rules("crates/loom/src/lib.rs", src).is_empty());
    }

    #[test]
    fn relaxed_head_tail_needs_annotation() {
        let bad = "let h = self.head.load(Ordering::Relaxed);\n";
        assert_eq!(rules("crates/nic/src/ring.rs", bad), ["relaxed-head-tail"]);
        let ok = "// Own counter. lint: relaxed-ok\nlet h = self.head.load(Ordering::Relaxed);\n";
        assert!(rules("crates/nic/src/ring.rs", ok).is_empty());
        let inline = "let h = self.head.load(Ordering::Relaxed); // lint: relaxed-ok\n";
        assert!(rules("crates/nic/src/ring.rs", inline).is_empty());
    }

    #[test]
    fn sleep_flagged_only_on_hot_path() {
        let src = "fn idle() { std::thread::sleep(d); }\n";
        assert_eq!(rules("crates/nic/src/lcore.rs", src), ["sleep-ban"]);
        assert_eq!(rules("crates/pipeline/src/engine.rs", src), ["sleep-ban"]);
        assert!(rules("crates/mq/src/tcp.rs", src).is_empty());
    }

    #[test]
    fn raw_atomic_flagged_in_shimmed_crates_only() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        assert_eq!(
            rules("crates/nic/src/clock.rs", src),
            ["raw-atomic-import"]
        );
        assert_eq!(rules("crates/mq/src/chan.rs", src), ["raw-atomic-import"]);
        // The shim itself and unshimmed crates are exempt.
        assert!(rules("crates/nic/src/sync.rs", src).is_empty());
        assert!(rules("crates/tsdb/src/store.rs", src).is_empty());
    }

    #[test]
    fn test_regions_are_exempt_from_style_rules() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicU64;\n    fn t() { std::thread::sleep(d); }\n}\n";
        assert!(rules("crates/nic/src/lcore.rs", src).is_empty());
        // …but not from the unsafe allowlist (rule 1 is structural).
        let with_unsafe = "#[cfg(test)]\nmod tests {\n    fn t(p: *const u8) -> u8 { unsafe { *p } }\n}\n";
        assert_eq!(
            rules("crates/mq/src/chan.rs", with_unsafe),
            ["unsafe-allowlist"]
        );
    }

    #[test]
    fn integration_test_files_exempt_from_style_rules() {
        let src = "use std::sync::atomic::AtomicU64;\nfn f() { std::thread::sleep(d); }\n";
        assert!(rules("crates/nic/tests/prop_nic.rs", src).is_empty());
    }

    #[test]
    fn lexer_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nconst R: &str = r#\"unsafe SeqCst thread::sleep\"#;\nconst C: char = '\\'';\n";
        assert!(rules("crates/nic/src/port.rs", src).is_empty());
    }
}
