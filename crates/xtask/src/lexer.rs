//! A tiny hand-rolled Rust lexer shared by `lint` and `panic-check`.
//!
//! Produces a per-line [`FileView`]: the code with comments and string/char
//! literals blanked out (structure preserved), the comment text alone (for
//! `SAFETY:` / `lint: relaxed-ok` / `panic-ok:` annotations), and marks for
//! `#[cfg(test)] mod … { … }` regions. Keyword scans over `code` therefore
//! cannot be fooled by doc text or string contents.

use std::path::{Path, PathBuf};

/// Per-line view of a source file after lexing.
pub struct FileView {
    /// Source lines with comments and string/char literals removed.
    pub code: Vec<String>,
    /// Comment text per line (without the code).
    pub comments: Vec<String>,
    /// True for lines inside a `mod tests { … }` region.
    pub in_tests: Vec<bool>,
}

/// Strip comments and string/char/byte literals from `source`, keeping the
/// line structure. Handles `//`, nested `/* */`, `"…"` with escapes, raw
/// strings `r#"…"#`, byte strings, char literals (including `'\''`), and
/// lifetimes (`'a` is not a char literal).
pub fn lex(source: &str) -> FileView {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let mut state = State::Code;
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied().unwrap_or('\0');
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            code.push(String::new());
            comments.push(String::new());
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if next == '/' => {
                    state = State::LineComment;
                    comments.last_mut().unwrap().push_str("//");
                    i += 2;
                }
                '/' if next == '*' => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    code.last_mut().unwrap().push('"');
                    i += 1;
                }
                'r' | 'b' => {
                    // Possible raw/byte string start: r", r#", br", b"…
                    let mut j = i + 1;
                    if bytes.get(j) == Some(&'r') && c == 'b' {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') && (hashes > 0 || j > i + usize::from(c == 'b')) {
                        state = State::RawStr(hashes);
                        code.last_mut().unwrap().push('"');
                        i = j + 1;
                    } else if c == 'b' && bytes.get(i + 1) == Some(&'"') {
                        state = State::Str;
                        code.last_mut().unwrap().push('"');
                        i += 2;
                    } else {
                        code.last_mut().unwrap().push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs. lifetime: a lifetime is '<ident> not
                    // followed by a closing quote.
                    let is_char = match bytes.get(i + 1) {
                        Some('\\') => true,
                        Some(&d) => bytes.get(i + 2) == Some(&'\'') || !unicode_ident(d),
                        None => false,
                    };
                    if is_char {
                        state = State::Char;
                        code.last_mut().unwrap().push('\'');
                    } else {
                        code.last_mut().unwrap().push('\'');
                    }
                    i += 1;
                }
                _ => {
                    code.last_mut().unwrap().push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                comments.last_mut().unwrap().push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == '/' {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == '*' {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comments.last_mut().unwrap().push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    code.last_mut().unwrap().push('"');
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && bytes.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        state = State::Code;
                        code.last_mut().unwrap().push('"');
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    code.last_mut().unwrap().push('\'');
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    let in_tests = mark_test_regions(&code);
    FileView {
        code,
        comments,
        in_tests,
    }
}

/// True for characters that can be part of a Rust identifier.
pub fn unicode_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Mark the lines inside `mod tests { … }` (and `#[cfg(test)] mod … { … }`)
/// by brace counting on the comment-stripped code.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_tests = vec![false; code.len()];
    let mut depth: i32 = 0;
    let mut active = false;
    let mut saw_cfg_test = false;
    for (idx, line) in code.iter().enumerate() {
        if !active {
            let trimmed = line.trim();
            if trimmed.contains("#[cfg(test)]") {
                saw_cfg_test = true;
            }
            let is_mod_tests = trimmed.starts_with("mod tests")
                || trimmed.starts_with("pub mod tests")
                || (saw_cfg_test && trimmed.starts_with("mod "));
            if is_mod_tests && line.contains('{') {
                active = true;
                saw_cfg_test = false;
                depth = 0;
            } else if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                saw_cfg_test = false;
            }
        }
        if active {
            in_tests[idx] = true;
            for c in line.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            active = false;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    in_tests
}

/// True when the contiguous comment block directly above `idx` (or the
/// comment on `idx` itself) contains `needle`.
pub fn annotated_above(view: &FileView, idx: usize, needle: &str) -> bool {
    annotation_above(view, idx, needle).is_some()
}

/// Like [`annotated_above`], but returns the text following `needle` on the
/// matching comment line (trimmed), so callers can audit the reason given.
pub fn annotation_above(view: &FileView, idx: usize, needle: &str) -> Option<String> {
    annotation_above_at(view, idx, needle).map(|(_, r)| r)
}

/// Like [`annotation_above`], but also returns the 0-based line index of the
/// comment that carried the annotation (for used/unused auditing).
pub fn annotation_above_at(view: &FileView, idx: usize, needle: &str) -> Option<(usize, String)> {
    let reason = |comment: &str| {
        comment
            .find(needle)
            .map(|at| comment[at + needle.len()..].trim().to_string())
    };
    if let Some(r) = reason(&view.comments[idx]) {
        return Some((idx, r));
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let comment = &view.comments[i];
        if let Some(r) = reason(comment) {
            return Some((i, r));
        }
        // A line with no comment — whether blank or real code — ends the
        // attached comment block.
        if comment.is_empty() {
            return None;
        }
    }
    None
}

/// Recursively collect `.rs` files under `dir` (skipping `target/`).
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Locate the workspace root: walk up from this file's manifest.
pub fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/xtask at compile time; at run time
    // prefer the cwd cargo sets for `cargo run` (the invocation dir), so
    // fall back to walking up until a directory containing `crates/` and a
    // workspace Cargo.toml appears.
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        if let Some(root) = Path::new(&dir).ancestors().nth(2) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            panic!("workspace root not found");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_blanked() {
        let v = lex("let s = \"unsafe\"; // unsafe here\n/* unsafe */ let t = 1;\n");
        assert!(!v.code[0].contains("unsafe"));
        assert!(v.comments[0].contains("unsafe here"));
        assert!(!v.code[1].contains("unsafe"));
        assert!(v.code[1].contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_and_lifetimes_handled() {
        let v = lex("fn f<'a>(x: &'a str) { let r = r#\"panic!\"#; let c = '\\''; }\n");
        assert!(!v.code[0].contains("panic!"));
        assert!(v.code[0].contains("fn f<'a>"));
    }

    #[test]
    fn test_regions_marked() {
        let v = lex("fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n");
        // The trailing newline yields a final empty line.
        assert_eq!(
            v.in_tests,
            vec![false, false, true, true, true, false, false]
        );
    }

    #[test]
    fn annotation_reason_extracted() {
        let v = lex("// panic-ok: bounded by construction\nlet x = a[0];\n");
        assert_eq!(
            annotation_above(&v, 1, "panic-ok:").as_deref(),
            Some("bounded by construction")
        );
        let v = lex("let x = a[0]; // panic-ok: same line\n");
        assert_eq!(
            annotation_above(&v, 0, "panic-ok:").as_deref(),
            Some("same line")
        );
        let v = lex("// panic-ok: stale\n\nlet x = a[0];\n");
        assert_eq!(annotation_above(&v, 2, "panic-ok:"), None);
    }
}
