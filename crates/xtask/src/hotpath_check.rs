//! `cargo xtask hotpath-check` — hot-path hygiene analyzer.
//!
//! Two rule sets over the same [`crate::callgraph`] machinery panic-check
//! uses (DESIGN.md §14):
//!
//! **Allocation reachability.** Per-line classification of allocation
//! sources (`Box::new`, `Vec::with_capacity`/`vec!`, `String`/`format!`,
//! `.collect()`, `.to_vec()`/`.to_owned()`/`.clone()`, `Arc`/`Rc`/channel
//! construction, and container growth like `.push(`/`.insert(` when no
//! same-named workspace fn shadows the method) plus BFS from the
//! steady-state dataplane roots. A reachable allocation fails the build
//! unless annotated `// alloc-ok: <reason>`. Unlike panic-check's roots,
//! the allocation roots deliberately exclude construction-time and
//! serialization-boundary surfaces (`tsdb` ingest, `TcpPublisher` framing,
//! fault injection) — those allocate by design; the rule targets the
//! per-packet loop.
//!
//! **Lock discipline.** Guard liveness is tracked within each fn body: a
//! `.lock()`/`.read()`/`.write()` method acquisition or a workspace
//! `lock(..)`/`plock(..)` helper call starts a guard; a `let` binding
//! extends it to the innermost enclosing block (cut early by
//! `drop(name)`), an unbound temporary lives one line. A guard live
//! across a blocking call (`write_all`, `send`/`recv`, `park`, `join`,
//! I/O — directly or through the call graph via a may-block fixed point)
//! or an unsuppressed allocation site is flagged, suppressible with
//! `// lock-ok: <reason>` at the site or the acquisition line. Condvar
//! `wait(guard)` is exempt for the guard it atomically releases. Nested
//! and call-mediated acquisitions build the inter-procedural
//! lock-acquisition-order graph (nodes `crate/receiver`); any cycle —
//! including same-lock re-entry — is a potential deadlock and fails.
//!
//! Both annotation grammars are audited like `panic-ok`: empty reasons
//! and annotations that suppress nothing are themselves violations.
//!
//! Known soundness limits on top of the callgraph ones (DESIGN.md §14):
//! receiver identity is the last identifier before the acquisition, so
//! distinct locks reached through same-named fields alias and multi-line
//! method chains fall back to the previous line's trailing identifier; a
//! `let` on an earlier line than the acquisition is not seen (the guard
//! is treated as a one-line temporary — an under-approximation); method
//! growth patterns shadowed by a workspace fn name (`Ring::push`) are
//! delegated to the call graph and real `Vec::push` on an untyped
//! receiver is missed. The runtime counting-allocator audits
//! (`flow/tests/alloc_steady_state.rs`, telemetry/scaling) backstop the
//! allocation side dynamically.

use crate::callgraph::{word_positions, Finding, Workspace};
use crate::suppress::Suppressions;
use crate::lexer::unicode_ident;
use crate::panic_check::DATAPLANE_CRATES;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::process::ExitCode;

/// Steady-state allocation roots: the per-packet/per-burst surfaces that
/// must not heap-allocate after construction. Narrower than panic-check's
/// roots: constructors, fault injection (test harness), `tsdb` ingest and
/// `TcpPublisher` framing (serialization boundaries that allocate by
/// design, see module docs) are excluded.
const ALLOC_ROOTS: &[(&str, &str)] = &[
    ("wire", "*"),
    ("nic", "rx_burst"),
    ("nic", "push_burst"),
    ("nic", "pop_burst"),
    ("flow", "classify_mbuf"),
    ("flow", "process"),
    ("flow", "process_at"),
    ("flow", "process_burst"),
    ("flow", "housekeep_guarded"),
    ("flow", "lookup_burst"),
    ("flow", "insert_burst"),
    // Continuous in-flow RTT burst surface, pinned by type so coverage
    // survives if the unqualified names above are ever narrowed.
    ("flow", "InflowTracker::process"),
    ("flow", "InflowTracker::process_burst"),
    ("flow", "InflowTracker::housekeep_guarded"),
    ("flow", "encode"),
    ("flow", "encode_into"),
    ("flow", "decode"),
    ("mq", "Sender::send"),
    ("mq", "Sender::try_send"),
    ("mq", "Receiver::recv"),
    ("mq", "Receiver::recv_timeout"),
    ("mq", "Receiver::try_recv"),
    ("mq", "Push::send"),
    ("mq", "Push::send_batch"),
    ("mq", "Push::try_send"),
    ("mq", "Pull::recv"),
    ("mq", "Pull::try_recv"),
    ("mq", "Pull::recv_batch"),
    ("mq", "Pull::try_recv_batch"),
    ("mq", "Publisher::publish"),
    ("mq", "Publisher::publish_batch"),
    ("telemetry", "burst_begin"),
    ("telemetry", "burst_end"),
    ("telemetry", "counter_add"),
    ("telemetry", "gauge_store"),
    ("telemetry", "hist_record"),
    ("telemetry", "snapshot_into"),
    ("pipeline", "dataplane_worker"),
    ("pipeline", "run_to_completion_worker"),
    ("pipeline", "detector_loop"),
];

/// Allocation sources, classified. Leading `.` means method call (the dot
/// is the boundary); otherwise an identifier boundary is required before
/// the match, so `sync_channel(` does not double-hit `channel(`.
/// `Arc::clone(`/`Vec::new()` are deliberately absent: neither touches
/// the heap, and rewriting `x.clone()` to `Arc::clone(&x)` is the
/// sanctioned fix for refcount bumps the `.clone(` rule flags.
const ALLOC_PATTERNS: &[(&str, &str)] = &[
    ("alloc-box", "Box::new("),
    ("alloc-box", "Box::leak("),
    ("alloc-vec", "Vec::with_capacity("),
    ("alloc-vec", "Vec::from("),
    ("alloc-vec", "vec!["),
    ("alloc-str", "String::from("),
    ("alloc-str", "String::with_capacity("),
    ("alloc-str", "format!("),
    ("alloc-str", ".to_string("),
    ("alloc-collect", ".collect()"),
    ("alloc-collect", ".collect::<"),
    ("alloc-clone", ".to_vec("),
    ("alloc-clone", ".to_owned("),
    ("alloc-clone", ".clone("),
    ("alloc-arc", "Arc::new("),
    ("alloc-arc", "Rc::new("),
    ("alloc-chan", "channel("),
    ("alloc-chan", "sync_channel("),
];

/// Container-growth methods (`alloc-grow`). These are the only patterns
/// with workspace-fn delegation: when a scanned crate defines a fn of the
/// same name (`Ring::push`, `FlowTable::insert` — fixed-capacity, no
/// allocation), the method call on an untyped receiver is assumed to be
/// that fn and left to the call graph, whose scan of its body covers it.
const GROW_PATTERNS: &[&str] = &[
    ".push(",
    ".push_back(",
    ".push_front(",
    ".insert(",
    ".extend(",
    ".extend_from_slice(",
    ".append(",
    ".reserve(",
    ".resize(",
    ".entry(",
    ".or_insert(",
    ".or_insert_with(",
    ".or_default(",
];

/// Calls that can block the calling thread. `()`-suffixed patterns only
/// match the argless form (`.recv()` not `.recv_timeout(`, `.flush()` not
/// a buffer write); `park()` keeps `unpark()` out via the identifier
/// boundary. Bare nonblocking-socket `.write(` (tcp.rs drains peers with
/// `WouldBlock` short-circuit) is deliberately not listed.
const BLOCKING_PATTERNS: &[&str] = &[
    ".write_all(",
    ".read_exact(",
    ".read_to_end(",
    ".read_to_string(",
    ".read_line(",
    ".flush()",
    ".accept()",
    "connect(",
    ".join()",
    "park()",
    "park_timeout(",
    "sleep(",
    ".wait(",
    ".wait_timeout(",
    ".wait_while(",
    ".recv()",
    ".recv_timeout(",
    ".send(",
];

/// Guard-producing method calls (empty parens distinguish `RwLock::read`/
/// `write` from buffer I/O) and workspace helper fns that return a guard.
const GUARD_METHODS: &[&str] = &[".lock()", ".read()", ".write()"];
const GUARD_HELPERS: &[&str] = &["lock", "plock"];

/// Files exempt from the allocation-reachability rule (lock discipline
/// still applies): the tsdb's sealing/compression modules. Sealing is the
/// cold phase transition — it drains an active tail into a freshly
/// compressed chunk, inherently building buffers — and runs once per
/// `SEAL_THRESHOLD` points at merge boundaries, never per point. The
/// striped ingest path itself (`store.rs`, `sharded.rs`, `point.rs`)
/// carries no blanket exemption since the lock-free rework (ROADMAP
/// item 4): every allocation site reachable from the hot roots there is
/// individually audited with an `alloc-ok` reason.
const ALLOC_EXEMPT_FILES: &[&str] = &["crates/tsdb/src/seal.rs", "crates/tsdb/src/compress.rs"];

/// The full result of one `hotpath-check` run.
pub struct HotAnalysis {
    pub fn_count: usize,
    pub edge_count: usize,
    /// Unsuppressed allocations reachable from a steady-state root.
    pub alloc_violations: Vec<Finding>,
    /// Guard-across-blocking/alloc and lock-order-cycle findings.
    pub lock_violations: Vec<Finding>,
    /// `alloc-ok`/`lock-ok` audit failures (empty reason, unused).
    pub annotation_errors: Vec<Finding>,
    pub audited_alloc: usize,
    pub audited_lock: usize,
    /// Allocation sites in fns no root reaches (reported, not fatal).
    pub unreachable_alloc_sites: usize,
    pub guard_count: usize,
    pub lock_edge_count: usize,
    /// Per-crate (crate, fns, alloc-reachable fns, violations).
    pub per_crate: Vec<(String, usize, usize, usize)>,
}

/// CLI entry: `cargo xtask hotpath-check [--root DIR] [--json PATH]`.
pub fn run(args: &[String]) -> ExitCode {
    let cli = match crate::check_all::parse_cli("hotpath-check", args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    match analyze(&cli.root) {
        Ok(a) => {
            if let Some(path) = &cli.json {
                let section = json_section(&a);
                if let Err(e) = crate::callgraph::write_json_report(path, &[section]) {
                    eprintln!("hotpath-check: {e}");
                    return ExitCode::FAILURE;
                }
            }
            report(&a)
        }
        Err(e) => {
            eprintln!("hotpath-check: {e}");
            ExitCode::FAILURE
        }
    }
}

/// All fatal findings, ordered alloc-then-lock-then-annotation.
pub fn findings_of(a: &HotAnalysis) -> Vec<&Finding> {
    a.alloc_violations
        .iter()
        .chain(&a.lock_violations)
        .chain(&a.annotation_errors)
        .collect()
}

/// This analyzer's section of the shared `--json` report.
pub fn json_section(a: &HotAnalysis) -> String {
    crate::callgraph::analyzer_json(
        "hotpath-check",
        &findings_of(a),
        a.audited_alloc + a.audited_lock,
    )
}

/// Print the per-crate report and turn the analysis into an exit code.
fn report(a: &HotAnalysis) -> ExitCode {
    println!(
        "hotpath-check: {} fns, {} call edges, {} guards, {} lock-order edges across {}",
        a.fn_count,
        a.edge_count,
        a.guard_count,
        a.lock_edge_count,
        DATAPLANE_CRATES.join(", ")
    );
    for (name, fns, reachable, viols) in &a.per_crate {
        println!("  {name:<9} {fns:>4} fns  {reachable:>4} alloc-reachable  {viols:>3} violation(s)");
    }
    println!(
        "  audited alloc-ok: {}; audited lock-ok: {}; allocations outside the steady-state roots: {}",
        a.audited_alloc, a.audited_lock, a.unreachable_alloc_sites
    );
    let total = a.alloc_violations.len() + a.lock_violations.len() + a.annotation_errors.len();
    if total == 0 {
        println!("hotpath-check: clean");
        return ExitCode::SUCCESS;
    }
    for v in a
        .alloc_violations
        .iter()
        .chain(&a.lock_violations)
        .chain(&a.annotation_errors)
    {
        eprintln!("{v}");
    }
    eprintln!("hotpath-check: {total} violation(s)");
    ExitCode::FAILURE
}

/// Positions where `pat` matches `line` with a boundary before it: the
/// leading `.`/identifier-boundary rule from the pattern tables above.
fn pattern_positions(line: &str, pat: &str) -> Vec<usize> {
    line.match_indices(pat)
        .filter(|(pos, _)| {
            pat.starts_with('.') || !line[..*pos].chars().next_back().is_some_and(unicode_ident)
        })
        .map(|(pos, _)| pos)
        .collect()
}

/// A live lock guard inside one fn body.
struct Guard {
    /// `let` binding name; `None` for an unbound temporary (one-line span).
    name: Option<String>,
    /// Order-graph node: `crate/receiver`, trailing digits stripped
    /// (`peers2` is a clone of the `peers` Arc).
    identity: String,
    /// 0-based acquisition line and char position in the file's flat
    /// stream (for nesting order and block matching).
    line: usize,
    pos: usize,
    /// Last live line, inclusive.
    end_line: usize,
}

/// One deduplicated lock-order edge: `from` held while `to` is acquired.
struct LockEdge {
    from: String,
    to: String,
    file: usize,
    line: usize,
}

/// Run the analyzer over `<root>/crates/{wire,nic,flow,mq,tsdb,telemetry,pipeline}/src`.
pub fn analyze(root: &Path) -> Result<HotAnalysis, String> {
    let ws = Workspace::load(root, DATAPLANE_CRATES)?;
    let mut sup_alloc = Suppressions::new("alloc-ok:", "alloc-ok-empty", "alloc-ok-unused");
    let mut sup_lock = Suppressions::new("lock-ok:", "lock-ok-empty", "lock-ok-unused");

    // Growth patterns stay active only when no workspace fn shadows them.
    let grow_active: Vec<&str> = GROW_PATTERNS
        .iter()
        .copied()
        .filter(|p| {
            let name: String = p[1..].chars().take_while(|&c| unicode_ident(c)).collect();
            !ws.has_fn_named(&name)
        })
        .collect();

    // --- allocation line scan -------------------------------------------
    // (file, line) -> (owner fn, rules hit, alloc-ok suppressed).
    let mut alloc_lines: HashMap<(usize, usize), (usize, Vec<&'static str>, bool)> = HashMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (idx, line) in file.view.code.iter().enumerate() {
            if file.view.in_tests[idx] || line.trim_start().starts_with('#') {
                continue;
            }
            let mut rules: Vec<&'static str> = Vec::new();
            for (rule, pat) in ALLOC_PATTERNS {
                if !pattern_positions(line, pat).is_empty() && !rules.contains(rule) {
                    rules.push(rule);
                }
            }
            if grow_active.iter().any(|p| !pattern_positions(line, p).is_empty()) {
                rules.push("alloc-grow");
            }
            if rules.is_empty() {
                continue;
            }
            let Some(owner) = ws.innermost_fn(fi, idx) else {
                continue; // const/static item
            };
            let suppressed = sup_alloc.check(&ws, fi, idx, &ws.label(owner));
            alloc_lines.insert((fi, idx), (owner, rules, suppressed));
        }
    }

    // --- allocation reachability ----------------------------------------
    let reach = ws.reach(ALLOC_ROOTS);
    let mut alloc_violations = Vec::new();
    let mut unreachable_alloc_sites = 0usize;
    let mut crate_viols: HashMap<&str, usize> = HashMap::new();
    for (&(fi, idx), (owner, rules, suppressed)) in &alloc_lines {
        if *suppressed {
            continue;
        }
        if !reach.reachable[*owner] || ALLOC_EXEMPT_FILES.contains(&ws.files[fi].rel.as_str()) {
            unreachable_alloc_sites += rules.len();
            continue;
        }
        for rule in rules {
            *crate_viols.entry(crate_of(&ws.files[fi].rel)).or_default() += 1;
            alloc_violations.push(Finding {
                rule,
                path: ws.files[fi].rel.clone(),
                line: idx + 1,
                func: ws.label(*owner),
                snippet: ws.snippet(fi, idx),
                witness: reach.witness(&ws, *owner),
            });
        }
    }

    // --- precision-filtered edges for lock discipline -------------------
    // Method calls on unknown receivers resolving to several same-named
    // fns are reachability over-approximations (`.write(` is not
    // `tsdb::write`); following them would fabricate blocking/lock
    // evidence. Keep non-method calls and uniquely-named methods only.
    let mut hedges: Vec<Vec<usize>> = vec![Vec::new(); ws.fns.len()];
    for (fid, f) in ws.fns.iter().enumerate() {
        let mut out: HashSet<usize> = HashSet::new();
        for call in &ws.calls[fid] {
            let targets = ws.resolve(call, f);
            if call.is_method && targets.len() > 1 {
                continue;
            }
            for t in targets {
                if t != fid {
                    out.insert(t);
                }
            }
        }
        let mut v: Vec<usize> = out.into_iter().collect();
        v.sort_unstable();
        hedges[fid] = v;
    }

    // --- may-block / may-alloc fixed points -----------------------------
    let mut seed_block = vec![false; ws.fns.len()];
    for (fi, file) in ws.files.iter().enumerate() {
        for (idx, line) in file.view.code.iter().enumerate() {
            if file.view.in_tests[idx] {
                continue;
            }
            if BLOCKING_PATTERNS
                .iter()
                .any(|p| !pattern_positions(line, p).is_empty())
            {
                if let Some(owner) = ws.innermost_fn(fi, idx) {
                    seed_block[owner] = true;
                }
            }
        }
    }
    let mut seed_alloc = vec![false; ws.fns.len()];
    for ((_, _), (owner, _, suppressed)) in &alloc_lines {
        if !*suppressed {
            seed_alloc[*owner] = true; // alloc-ok'd sites do not cascade
        }
    }
    let (may_block, block_because) = ws.propagate_up_edges(&hedges, &seed_block);
    let (may_alloc, alloc_because) = ws.propagate_up_edges(&hedges, &seed_alloc);

    // --- guard extraction ------------------------------------------------
    let mut guards_of: Vec<Vec<Guard>> = Vec::with_capacity(ws.fns.len());
    for fid in 0..ws.fns.len() {
        guards_of.push(find_guards(&ws, fid));
    }
    let guard_count = guards_of.iter().map(Vec::len).sum();

    // --- guard-span violations ------------------------------------------
    // lock-ok suppression cache: `check` audits per call, so memoize per
    // line to keep repeated guard lookups from duplicating audit entries.
    let mut lock_ok: HashMap<(usize, usize), bool> = HashMap::new();
    let mut lock_violations: Vec<Finding> = Vec::new();
    let mut flagged: HashSet<(usize, usize, &'static str)> = HashSet::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut edge_keys: HashSet<(String, String)> = HashSet::new();

    // Transitive lockset per fn (identities acquired by it or callees).
    let locksets = transitive_locksets(&hedges, &guards_of);

    for (fid, guards) in guards_of.iter().enumerate() {
        let f = &ws.fns[fid];
        let fi = f.file;
        let func = ws.label(fid);
        for g in guards {
            let check_lock_ok = |sup: &mut Suppressions,
                                     cache: &mut HashMap<(usize, usize), bool>,
                                     idx: usize|
             -> bool {
                *cache
                    .entry((fi, idx))
                    .or_insert_with(|| sup.check(&ws, fi, idx, &func))
            };
            for l in g.line..=g.end_line {
                if ws.files[fi].view.in_tests[l] || ws.innermost_fn(fi, l) != Some(fid) {
                    continue;
                }
                let line = &ws.files[fi].view.code[l];
                // Direct blocking calls in the span.
                for pat in BLOCKING_PATTERNS {
                    for pos in pattern_positions(line, pat) {
                        // Condvar `wait(guard)` atomically releases the
                        // guard it is passed.
                        if pat.starts_with(".wait")
                            && g.name
                                .as_deref()
                                .is_some_and(|n| !word_positions(&line[pos..], n).is_empty())
                        {
                            continue;
                        }
                        if flagged.contains(&(fi, l, "lock-across-blocking"))
                            || check_lock_ok(&mut sup_lock, &mut lock_ok, l)
                            || check_lock_ok(&mut sup_lock, &mut lock_ok, g.line)
                        {
                            continue;
                        }
                        flagged.insert((fi, l, "lock-across-blocking"));
                        lock_violations.push(Finding {
                            rule: "lock-across-blocking",
                            path: ws.files[fi].rel.clone(),
                            line: l + 1,
                            func: func.clone(),
                            snippet: ws.snippet(fi, l),
                            witness: vec![format!("guard `{}` acquired line {}", g.identity, g.line + 1)],
                        });
                    }
                }
                // Direct allocation sites in the span.
                if let Some((_, _, suppressed)) = alloc_lines.get(&(fi, l)) {
                    if !*suppressed
                        && !flagged.contains(&(fi, l, "lock-across-alloc"))
                        && !check_lock_ok(&mut sup_lock, &mut lock_ok, l)
                        && !check_lock_ok(&mut sup_lock, &mut lock_ok, g.line)
                    {
                        flagged.insert((fi, l, "lock-across-alloc"));
                        lock_violations.push(Finding {
                            rule: "lock-across-alloc",
                            path: ws.files[fi].rel.clone(),
                            line: l + 1,
                            func: func.clone(),
                            snippet: ws.snippet(fi, l),
                            witness: vec![format!("guard `{}` acquired line {}", g.identity, g.line + 1)],
                        });
                    }
                }
            }
            // Call-mediated blocking/alloc and lock-order edges.
            for call in &ws.calls[fid] {
                if call.line < g.line
                    || call.line > g.end_line
                    || ws.innermost_fn(fi, call.line) != Some(fid)
                    || ws.files[fi].view.in_tests[call.line]
                {
                    continue;
                }
                let targets = ws.resolve(call, f);
                if call.is_method && targets.len() > 1 {
                    continue; // over-approximated method call: no evidence
                }
                for target in targets {
                    for (rule, marked, because) in [
                        ("lock-across-blocking", &may_block, &block_because),
                        ("lock-across-alloc", &may_alloc, &alloc_because),
                    ] {
                        if !marked[target] || flagged.contains(&(fi, call.line, rule)) {
                            continue;
                        }
                        if check_lock_ok(&mut sup_lock, &mut lock_ok, call.line)
                            || check_lock_ok(&mut sup_lock, &mut lock_ok, g.line)
                        {
                            continue;
                        }
                        flagged.insert((fi, call.line, rule));
                        let mut witness = vec![func.clone()];
                        witness.extend(ws.because_chain(because, target));
                        lock_violations.push(Finding {
                            rule,
                            path: ws.files[fi].rel.clone(),
                            line: call.line + 1,
                            func: func.clone(),
                            snippet: ws.snippet(fi, call.line),
                            witness,
                        });
                    }
                    // Locks the callee (transitively) acquires are taken
                    // while `g` is held: order-graph edges.
                    for ident in &locksets[target] {
                        if *ident != g.identity
                            && edge_keys.insert((g.identity.clone(), ident.clone()))
                        {
                            edges.push(LockEdge {
                                from: g.identity.clone(),
                                to: ident.clone(),
                                file: fi,
                                line: call.line,
                            });
                        }
                    }
                }
            }
            // Intra-fn nesting: any later acquisition inside g's span.
            for g2 in guards {
                if g2.pos > g.pos
                    && g2.line >= g.line
                    && g2.line <= g.end_line
                    && edge_keys.insert((g.identity.clone(), g2.identity.clone()))
                {
                    edges.push(LockEdge {
                        from: g.identity.clone(),
                        to: g2.identity.clone(),
                        file: fi,
                        line: g2.line,
                    });
                }
            }
        }
    }

    // --- lock-order cycles ----------------------------------------------
    for cycle in find_cycles(&edges) {
        let suppressed = cycle.iter().any(|&ei| {
            let e = &edges[ei];
            *lock_ok
                .entry((e.file, e.line))
                .or_insert_with(|| sup_lock.check(&ws, e.file, e.line, "-"))
        });
        if suppressed {
            continue;
        }
        let first = &edges[cycle[0]];
        let mut witness: Vec<String> = cycle.iter().map(|&ei| edges[ei].from.clone()).collect();
        witness.push(edges[cycle[0]].from.clone());
        *crate_viols
            .entry(crate_of(&ws.files[first.file].rel))
            .or_default() += 1;
        lock_violations.push(Finding {
            rule: "lock-order-cycle",
            path: ws.files[first.file].rel.clone(),
            line: first.line + 1,
            func: "-".into(),
            snippet: ws.snippet(first.file, first.line),
            witness,
        });
    }

    for v in &lock_violations {
        if v.rule != "lock-order-cycle" {
            *crate_viols.entry(crate_of(&v.path)).or_default() += 1;
        }
    }

    sup_alloc.audit_unused(&ws);
    sup_lock.audit_unused(&ws);
    let mut annotation_errors: Vec<Finding> = Vec::new();
    annotation_errors.append(&mut sup_alloc.errors);
    annotation_errors.append(&mut sup_lock.errors);

    alloc_violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    lock_violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    annotation_errors.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));

    let mut per_crate = Vec::new();
    for krate in DATAPLANE_CRATES {
        let ids: Vec<usize> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| ws.files[f.file].crate_name == *krate)
            .map(|(id, _)| id)
            .collect();
        let reachable = ids.iter().filter(|&&id| reach.reachable[id]).count();
        per_crate.push((
            krate.to_string(),
            ids.len(),
            reachable,
            crate_viols.get(krate).copied().unwrap_or(0),
        ));
    }

    Ok(HotAnalysis {
        fn_count: ws.fns.len(),
        edge_count: ws.edge_count,
        alloc_violations,
        lock_violations,
        annotation_errors,
        audited_alloc: sup_alloc.audited.len(),
        audited_lock: sup_lock.audited.len(),
        unreachable_alloc_sites,
        guard_count,
        lock_edge_count: edges.len(),
        per_crate,
    })
}

fn crate_of(rel: &str) -> &'static str {
    for krate in DATAPLANE_CRATES {
        if rel.starts_with(&format!("crates/{krate}/")) {
            return krate;
        }
    }
    "?"
}

// ---------------------------------------------------------------------------
// Guard extraction
// ---------------------------------------------------------------------------

/// Char offset of each line's start in the file's flat stream.
fn line_starts(ws: &Workspace, fi: usize) -> Vec<usize> {
    let mut starts = Vec::with_capacity(ws.files[fi].view.code.len());
    let mut acc = 0usize;
    for l in &ws.files[fi].view.code {
        starts.push(acc);
        acc += l.chars().count() + 1;
    }
    starts
}

/// All `{`..`}` pairs inside `[start, end]` of the flat char stream.
fn block_pairs(chars: &[char], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut out = Vec::new();
    for (i, &c) in chars.iter().enumerate().take(end.min(chars.len() - 1) + 1).skip(start) {
        match c {
            '{' => stack.push(i),
            '}' => {
                if let Some(o) = stack.pop() {
                    out.push((o, i));
                }
            }
            _ => {}
        }
    }
    out
}

/// Every guard acquisition in `fid`'s body with its liveness span.
fn find_guards(ws: &Workspace, fid: usize) -> Vec<Guard> {
    let f = &ws.fns[fid];
    let fi = f.file;
    let view = &ws.files[fi].view;
    let flat = &ws.flats[fi];
    let starts = line_starts(ws, fi);
    let pairs = block_pairs(&flat.chars, f.body_start, f.body_end);
    let krate = &ws.files[fi].crate_name;
    let mut out = Vec::new();

    // `idx` indexes three parallel per-line arrays; an iterator over any
    // one of them would still need the position for the other two.
    #[allow(clippy::needless_range_loop)]
    for idx in f.start_line..=f.end_line.min(view.code.len().saturating_sub(1)) {
        if view.in_tests[idx] || ws.innermost_fn(fi, idx) != Some(fid) {
            continue;
        }
        let line = &view.code[idx];
        let mut acquisitions: Vec<(usize, String)> = Vec::new(); // (byte pos, receiver)
        for pat in GUARD_METHODS {
            for pos in pattern_positions(line, pat) {
                let recv = trailing_ident(&line[..pos]);
                let recv = if recv.is_empty() {
                    // Multi-line method chain: the receiver is the trailing
                    // identifier of the previous non-empty code line.
                    prev_trailing_ident(view, idx)
                } else {
                    recv
                };
                if recv.is_empty() {
                    continue;
                }
                acquisitions.push((pos, recv));
            }
        }
        for helper in GUARD_HELPERS {
            if !ws.has_fn_named(helper) {
                continue;
            }
            for pos in word_positions(line, helper) {
                let rest = &line[pos + helper.len()..];
                if !rest.starts_with('(') {
                    continue;
                }
                let before = line[..pos].trim_end();
                if before.ends_with('.') || before.ends_with(':') || before.ends_with("fn") {
                    continue; // method form, qualified path, or definition
                }
                let recv = last_ident_of_first_arg(&rest[1..]);
                if recv.is_empty() {
                    continue;
                }
                acquisitions.push((pos, recv));
            }
        }
        for (pos, recv) in acquisitions {
            let name = let_binding_before(line, pos);
            let acq_char = starts[idx] + line[..pos].chars().count();
            let end_line = match &name {
                None => idx,
                Some(n) => {
                    let close = pairs
                        .iter()
                        .filter(|(o, c)| *o < acq_char && acq_char < *c)
                        .min_by_key(|(o, c)| c - o)
                        .map(|(_, c)| flat.line_of[*c])
                        .unwrap_or_else(|| flat.line_of[f.body_end]);
                    let mut end = close;
                    for l in idx + 1..=close.min(view.code.len() - 1) {
                        if drop_releases(&view.code[l], n) {
                            end = l;
                            break;
                        }
                    }
                    end
                }
            };
            let base: &str = recv.trim_end_matches(|c: char| c.is_ascii_digit());
            let base = if base.is_empty() { recv.as_str() } else { base };
            out.push(Guard {
                name,
                identity: format!("{krate}/{base}"),
                line: idx,
                pos: acq_char,
                end_line,
            });
        }
    }
    out
}

/// Trailing identifier of a string slice (the receiver before a `.call`).
fn trailing_ident(s: &str) -> String {
    s.chars()
        .rev()
        .take_while(|&c| unicode_ident(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect()
}

/// Trailing identifier of the nearest previous non-empty code line.
fn prev_trailing_ident(view: &crate::lexer::FileView, idx: usize) -> String {
    for l in (0..idx).rev() {
        let t = view.code[l].trim_end();
        if t.is_empty() {
            continue;
        }
        return trailing_ident(t);
    }
    String::new()
}

/// Last identifier of the first call argument (`&self.peers` → `peers`).
fn last_ident_of_first_arg(s: &str) -> String {
    let mut depth = 0i32;
    let mut cur = String::new();
    let mut last = String::new();
    for c in s.chars() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' if depth == 0 => break,
            ')' | ']' => depth -= 1,
            ',' if depth == 0 => break,
            _ => {}
        }
        if unicode_ident(c) {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                last = std::mem::take(&mut cur);
            }
        }
    }
    if !cur.is_empty() {
        last = cur;
    }
    last
}

/// The `let [mut] name =` binding governing an acquisition at `pos`.
fn let_binding_before(line: &str, pos: usize) -> Option<String> {
    let prefix = &line[..pos];
    let at = *word_positions(prefix, "let").last()?;
    let b: Vec<char> = prefix[at + 3..].chars().collect();
    let mut i = crate::callgraph::skip_ws_chars(&b, 0);
    let (first, after) = crate::callgraph::read_tok(&b, i);
    let name = if first == "mut" {
        i = crate::callgraph::skip_ws_chars(&b, after);
        crate::callgraph::read_tok(&b, i).0
    } else {
        first
    };
    if name.is_empty() || name == "_" {
        return None;
    }
    Some(name)
}

/// Does this line `drop(name)` (releasing the guard early)?
fn drop_releases(line: &str, name: &str) -> bool {
    for pos in word_positions(line, "drop") {
        let b: Vec<char> = line[pos + 4..].chars().collect();
        let mut i = crate::callgraph::skip_ws_chars(&b, 0);
        if b.get(i) != Some(&'(') {
            continue;
        }
        i = crate::callgraph::skip_ws_chars(&b, i + 1);
        if b.get(i) == Some(&'&') {
            i = crate::callgraph::skip_ws_chars(&b, i + 1);
        }
        let (ident, after) = crate::callgraph::read_tok(&b, i);
        let j = crate::callgraph::skip_ws_chars(&b, after);
        if ident == name && b.get(j) == Some(&')') {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Lock-order graph
// ---------------------------------------------------------------------------

/// Fixed point of "identities this fn (or anything it calls) acquires",
/// over the precision-filtered edge set.
fn transitive_locksets(hedges: &[Vec<usize>], guards_of: &[Vec<Guard>]) -> Vec<HashSet<String>> {
    let mut sets: Vec<HashSet<String>> = guards_of
        .iter()
        .map(|gs| gs.iter().map(|g| g.identity.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for fid in 0..hedges.len() {
            for &callee in &hedges[fid] {
                if sets[callee].is_empty() {
                    continue;
                }
                let add: Vec<String> = sets[callee]
                    .iter()
                    .filter(|i| !sets[fid].contains(*i))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    changed = true;
                    sets[fid].extend(add);
                }
            }
        }
        if !changed {
            return sets;
        }
    }
}

/// Cycles in the deduplicated edge list, each as edge indices. Every cycle
/// is reported once, from its lexicographically smallest node; self-loops
/// (same-lock re-entry) are length-1 cycles.
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<usize>> {
    let mut adj: HashMap<&str, Vec<usize>> = HashMap::new();
    for (ei, e) in edges.iter().enumerate() {
        adj.entry(e.from.as_str()).or_default().push(ei);
    }
    let mut nodes: Vec<&str> = adj.keys().copied().collect();
    nodes.sort_unstable();
    let mut out = Vec::new();
    for start in nodes {
        let mut path = Vec::new();
        let mut seen = HashSet::new();
        if search(start, start, &adj, edges, &mut path, &mut seen) {
            out.push(path);
        }
    }
    out
}

fn search(
    cur: &str,
    start: &str,
    adj: &HashMap<&str, Vec<usize>>,
    edges: &[LockEdge],
    path: &mut Vec<usize>,
    seen: &mut HashSet<String>,
) -> bool {
    let Some(outs) = adj.get(cur) else {
        return false;
    };
    for &ei in outs {
        let next = edges[ei].to.as_str();
        if next == start {
            path.push(ei);
            return true;
        }
        // Canonicalization: only walk nodes above `start`, so each cycle
        // is found exactly once (from its smallest node).
        if next < start || seen.contains(next) {
            continue;
        }
        seen.insert(next.to_string());
        path.push(ei);
        if search(next, start, adj, edges, path, seen) {
            return true;
        }
        path.pop();
    }
    false
}

#[cfg(test)]
mod tests;
