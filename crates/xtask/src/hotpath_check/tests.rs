use super::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Build a throwaway workspace fixture: `files` are (rel path, source).
fn fixture(files: &[(&str, &str)]) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let root = std::env::temp_dir().join(format!("ruru-hotpath-check-{}-{n}", std::process::id()));
    for (rel, content) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("fixture parent")).expect("mkdir");
        std::fs::write(path, content).expect("write fixture");
    }
    root
}

fn run_on(files: &[(&str, &str)]) -> HotAnalysis {
    let root = fixture(files);
    let a = analyze(&root).expect("analyze fixture");
    std::fs::remove_dir_all(&root).ok();
    a
}

fn alloc_rules(a: &HotAnalysis) -> Vec<&'static str> {
    a.alloc_violations.iter().map(|v| v.rule).collect()
}

fn lock_rules(a: &HotAnalysis) -> Vec<&'static str> {
    a.lock_violations.iter().map(|v| v.rule).collect()
}

// ---------------------------------------------------------------------------
// Allocation reachability
// ---------------------------------------------------------------------------

#[test]
fn alloc_classes_classified_in_rooted_wire_fn() {
    let a = run_on(&[(
        "crates/wire/src/lib.rs",
        "pub fn parse(v: Vec<u8>) {\n\
         \x20   let b = Box::new(1);\n\
         \x20   let w = vec![1, 2];\n\
         \x20   let s = format!(\"x\");\n\
         \x20   let c: Vec<u8> = v.iter().copied().collect();\n\
         \x20   let t = v.to_vec();\n\
         \x20   let a = std::sync::Arc::new(1);\n\
         \x20   let p = std::sync::mpsc::sync_channel(4);\n\
         }\n",
    )]);
    let mut rules = alloc_rules(&a);
    rules.sort_unstable();
    assert_eq!(
        rules,
        [
            "alloc-arc",
            "alloc-box",
            "alloc-chan",
            "alloc-clone",
            "alloc-collect",
            "alloc-str",
            "alloc-vec",
        ]
    );
    assert!(a.lock_violations.is_empty());
}

#[test]
fn alloc_witness_chain_reaches_helper_from_dataplane_root() {
    let a = run_on(&[(
        "crates/pipeline/src/engine.rs",
        "pub fn dataplane_worker() { setup() }\n\
         fn setup() { let _b = Box::new(0u64); }\n",
    )]);
    assert_eq!(alloc_rules(&a), ["alloc-box"]);
    assert_eq!(
        a.alloc_violations[0].witness,
        ["pipeline::dataplane_worker", "pipeline::setup"]
    );
}

#[test]
fn grow_pattern_fires_without_workspace_shadow() {
    let a = run_on(&[(
        "crates/wire/src/lib.rs",
        "pub fn parse(v: &mut Vec<u8>) { v.push(0); }\n",
    )]);
    assert_eq!(alloc_rules(&a), ["alloc-grow"]);
}

#[test]
fn grow_pattern_delegated_to_workspace_fn() {
    // `Ring::push` exists, so `.push(` on an untyped receiver is left to
    // the call graph (Ring::push's own body is scanned and clean).
    let a = run_on(&[(
        "crates/wire/src/lib.rs",
        "pub struct Ring;\n\
         impl Ring {\n\
         \x20   pub fn push(&mut self, _v: u8) {}\n\
         }\n\
         pub fn parse(r: &mut Ring) { r.push(0); }\n",
    )]);
    assert!(alloc_rules(&a).is_empty(), "got {:?}", a.alloc_violations);
}

#[test]
fn unreachable_alloc_reported_not_fatal() {
    let a = run_on(&[(
        "crates/flow/src/lib.rs",
        "fn debug_dump() -> String { format!(\"x\") }\n",
    )]);
    assert!(a.alloc_violations.is_empty());
    assert_eq!(a.unreachable_alloc_sites, 1);
}

#[test]
fn alloc_ok_suppresses_and_is_audited() {
    let a = run_on(&[(
        "crates/wire/src/lib.rs",
        "pub fn parse() {\n\
         \x20   // alloc-ok: scratch reused from a thread-local pool\n\
         \x20   let _b = Box::new(0u64);\n\
         }\n",
    )]);
    assert!(a.alloc_violations.is_empty());
    assert!(a.annotation_errors.is_empty());
    assert_eq!(a.audited_alloc, 1);
}

#[test]
fn empty_alloc_ok_reason_is_a_violation() {
    let a = run_on(&[(
        "crates/wire/src/lib.rs",
        "pub fn parse() {\n\
         \x20   // alloc-ok:\n\
         \x20   let _b = Box::new(0u64);\n\
         }\n",
    )]);
    assert_eq!(
        a.annotation_errors.iter().map(|v| v.rule).collect::<Vec<_>>(),
        ["alloc-ok-empty"]
    );
}

#[test]
fn unused_alloc_ok_is_a_violation() {
    let a = run_on(&[(
        "crates/wire/src/lib.rs",
        "// alloc-ok: stale claim, nothing allocates here\n\
         pub fn parse() -> u8 { 0 }\n",
    )]);
    assert_eq!(
        a.annotation_errors.iter().map(|v| v.rule).collect::<Vec<_>>(),
        ["alloc-ok-unused"]
    );
}

// ---------------------------------------------------------------------------
// Lock discipline: guards across blocking calls / allocation
// ---------------------------------------------------------------------------

#[test]
fn guard_across_write_all_fires_pr5_regression_shape() {
    // The TcpPublisher bug fixed by hand in PR 5: peers mutex held across
    // a blocking socket write.
    let a = run_on(&[(
        "crates/mq/src/tcp.rs",
        "pub struct Publisher;\n\
         impl Publisher {\n\
         \x20   pub fn publish(&self) {\n\
         \x20       let mut peers = self.peers.lock().unwrap();\n\
         \x20       for p in peers.iter_mut() {\n\
         \x20           p.stream.write_all(b\"frame\").ok();\n\
         \x20       }\n\
         \x20   }\n\
         }\n",
    )]);
    assert_eq!(lock_rules(&a), ["lock-across-blocking"]);
    assert_eq!(a.lock_violations[0].line, 6);
    assert_eq!(a.lock_violations[0].func, "mq::publish");
}

#[test]
fn guard_across_alloc_fires() {
    let a = run_on(&[(
        "crates/flow/src/lib.rs",
        "fn helper(m: &std::sync::Mutex<Vec<u64>>) {\n\
         \x20   let mut g = m.lock().unwrap();\n\
         \x20   let _b = Box::new(7u64);\n\
         }\n",
    )]);
    // Lock discipline applies even where allocation reachability does not
    // (fn is not reachable from a steady-state root).
    assert!(a.alloc_violations.is_empty());
    assert_eq!(a.unreachable_alloc_sites, 1);
    assert_eq!(lock_rules(&a), ["lock-across-alloc"]);
}

#[test]
fn drop_releases_guard_before_blocking_call() {
    let a = run_on(&[(
        "crates/mq/src/lib.rs",
        "pub fn f(m: &std::sync::Mutex<u32>) {\n\
         \x20   let g = m.lock().unwrap();\n\
         \x20   drop(g);\n\
         \x20   std::thread::park();\n\
         }\n",
    )]);
    assert!(lock_rules(&a).is_empty(), "got {:?}", a.lock_violations);
}

#[test]
fn block_scoped_guard_released_before_blocking_call() {
    // The pubsub publish shape: guard lives in an inner block, the
    // blocking call happens after it closes.
    let a = run_on(&[(
        "crates/mq/src/lib.rs",
        "pub fn publish(&self) {\n\
         \x20   {\n\
         \x20       let subs = self.subs.read();\n\
         \x20       deliver(&subs);\n\
         \x20   }\n\
         \x20   self.sock.write_all(b\"x\").ok();\n\
         }\n\
         fn deliver(_s: &u32) {}\n",
    )]);
    assert!(lock_rules(&a).is_empty(), "got {:?}", a.lock_violations);
}

#[test]
fn condvar_wait_on_own_guard_exempt() {
    let a = run_on(&[(
        "crates/mq/src/chan.rs",
        "pub struct Chan;\n\
         impl Chan {\n\
         \x20   pub fn recv(&self) {\n\
         \x20       let mut inner = self.m.lock().unwrap();\n\
         \x20       while inner.empty {\n\
         \x20           inner = self.cv.wait(inner).unwrap();\n\
         \x20       }\n\
         \x20   }\n\
         }\n",
    )]);
    assert!(lock_rules(&a).is_empty(), "got {:?}", a.lock_violations);
}

#[test]
fn interprocedural_blocking_through_callee() {
    let a = run_on(&[(
        "crates/nic/src/lib.rs",
        "pub fn outer(m: &std::sync::Mutex<u32>) {\n\
         \x20   let g = m.lock().unwrap();\n\
         \x20   helper();\n\
         }\n\
         fn helper() { std::thread::park(); }\n",
    )]);
    assert_eq!(lock_rules(&a), ["lock-across-blocking"]);
    assert_eq!(a.lock_violations[0].witness, ["nic::outer", "nic::helper"]);
}

#[test]
fn workspace_lock_helper_produces_a_guard() {
    // The tcp.rs `plock` idiom: a poison-recovering helper returns the
    // guard; the identity comes from the helper's argument.
    let a = run_on(&[(
        "crates/mq/src/tcp.rs",
        "fn plock(m: &std::sync::Mutex<u32>) -> u32 { m.lock().unwrap_or_else(|e| 0) }\n\
         pub fn publish(&self) {\n\
         \x20   let mut peers = plock(&self.peers);\n\
         \x20   self.stream.write_all(b\"x\").ok();\n\
         }\n",
    )]);
    assert_eq!(lock_rules(&a), ["lock-across-blocking"]);
    assert_eq!(a.lock_violations[0].line, 4);
}

#[test]
fn ambiguous_method_call_does_not_propagate_blocking() {
    // Two unrelated types both define `helper`; a method call on an
    // unknown receiver resolves to both, so the precision-filtered edge
    // set drops it — no fabricated lock-across-blocking witness.
    let a = run_on(&[(
        "crates/mq/src/lib.rs",
        "pub struct A;\n\
         impl A {\n\
         \x20   pub fn helper(&self) { std::thread::park(); }\n\
         }\n\
         pub struct B;\n\
         impl B {\n\
         \x20   pub fn helper(&self) {}\n\
         }\n\
         pub fn caller(&self, m: &std::sync::Mutex<u32>) {\n\
         \x20   let g = m.lock().unwrap();\n\
         \x20   self.x.helper();\n\
         \x20   drop(g);\n\
         }\n",
    )]);
    assert!(a.lock_violations.is_empty(), "{:?}", a.lock_violations);
}

#[test]
fn tsdb_sealing_files_exempt_but_ingest_path_is_checked() {
    // Only the cold sealing/compaction files (seal.rs, compress.rs) are
    // exempt from allocation *reachability* — their sites count as outside
    // the steady-state roots. The striped ingest path in the rest of the
    // tsdb crate is held to the same standard as any hot code, and lock
    // discipline applies everywhere in the crate.
    let a = run_on(&[
        (
            "crates/pipeline/src/lib.rs",
            "pub fn detector_loop() { seal_open_chunks(); write_point(); }\n",
        ),
        (
            "crates/tsdb/src/seal.rs",
            "pub fn seal_open_chunks() { let _v = vec![0u8; 4]; }\n",
        ),
        (
            "crates/tsdb/src/store.rs",
            "pub fn write_point() { let _v = vec![0u8; 4]; }\n\
             pub fn flush(m: &std::sync::Mutex<u32>) {\n\
             \x20   let g = m.lock().unwrap();\n\
             \x20   std::thread::park();\n\
             }\n",
        ),
    ]);
    // The sealing allocation is swallowed by the file exemption; the
    // ingest-path allocation in store.rs is reported.
    assert_eq!(alloc_rules(&a), ["alloc-vec"]);
    assert_eq!(
        a.alloc_violations[0].witness,
        ["pipeline::detector_loop", "tsdb::write_point"]
    );
    assert!(a.unreachable_alloc_sites >= 1);
    assert_eq!(lock_rules(&a), ["lock-across-blocking"]);
}

// ---------------------------------------------------------------------------
// Lock discipline: acquisition-order cycles
// ---------------------------------------------------------------------------

#[test]
fn lock_order_cycle_flagged() {
    let a = run_on(&[(
        "crates/mq/src/lib.rs",
        "pub struct S;\n\
         impl S {\n\
         \x20   pub fn a(&self) {\n\
         \x20       let g1 = self.x.lock().unwrap();\n\
         \x20       let g2 = self.y.lock().unwrap();\n\
         \x20   }\n\
         \x20   pub fn b(&self) {\n\
         \x20       let g1 = self.y.lock().unwrap();\n\
         \x20       let g2 = self.x.lock().unwrap();\n\
         \x20   }\n\
         }\n",
    )]);
    assert_eq!(lock_rules(&a), ["lock-order-cycle"]);
    let w = &a.lock_violations[0].witness;
    assert!(w.contains(&"mq/x".to_string()) && w.contains(&"mq/y".to_string()));
}

#[test]
fn benign_diamond_order_is_clean() {
    // Both fns take x before y: a consistent order, no cycle.
    let a = run_on(&[(
        "crates/mq/src/lib.rs",
        "pub struct S;\n\
         impl S {\n\
         \x20   pub fn a(&self) {\n\
         \x20       let g1 = self.x.lock().unwrap();\n\
         \x20       let g2 = self.y.lock().unwrap();\n\
         \x20   }\n\
         \x20   pub fn b(&self) {\n\
         \x20       let g1 = self.x.lock().unwrap();\n\
         \x20       let g2 = self.y.lock().unwrap();\n\
         \x20   }\n\
         }\n",
    )]);
    assert!(lock_rules(&a).is_empty(), "got {:?}", a.lock_violations);
    assert_eq!(a.lock_edge_count, 1);
}

#[test]
fn interprocedural_cycle_through_callee_lockset() {
    // a holds x and calls b, which takes y; c takes y then x: x→y→x.
    let a = run_on(&[(
        "crates/nic/src/lib.rs",
        "pub fn a(&self) {\n\
         \x20   let g = self.x.lock().unwrap();\n\
         \x20   b();\n\
         }\n\
         pub fn b(&self) {\n\
         \x20   let g = self.y.lock().unwrap();\n\
         }\n\
         pub fn c(&self) {\n\
         \x20   let g = self.y.lock().unwrap();\n\
         \x20   let h = self.x.lock().unwrap();\n\
         }\n",
    )]);
    assert_eq!(lock_rules(&a), ["lock-order-cycle"]);
}

// ---------------------------------------------------------------------------
// lock-ok suppression
// ---------------------------------------------------------------------------

#[test]
fn lock_ok_at_acquisition_covers_the_span() {
    let a = run_on(&[(
        "crates/mq/src/lib.rs",
        "pub fn shutdown(&self) {\n\
         \x20   // lock-ok: drop path, final blocking flush is intended\n\
         \x20   let g = self.peers.lock().unwrap();\n\
         \x20   self.stream.write_all(b\"bye\").ok();\n\
         }\n",
    )]);
    assert!(a.lock_violations.is_empty(), "got {:?}", a.lock_violations);
    assert!(a.annotation_errors.is_empty());
    assert_eq!(a.audited_lock, 1);
}

#[test]
fn empty_lock_ok_reason_is_a_violation() {
    let a = run_on(&[(
        "crates/mq/src/lib.rs",
        "pub fn shutdown(&self) {\n\
         \x20   // lock-ok:\n\
         \x20   let g = self.peers.lock().unwrap();\n\
         \x20   self.stream.write_all(b\"bye\").ok();\n\
         }\n",
    )]);
    assert_eq!(
        a.annotation_errors.iter().map(|v| v.rule).collect::<Vec<_>>(),
        ["lock-ok-empty"]
    );
}

#[test]
fn unused_lock_ok_is_a_violation() {
    let a = run_on(&[(
        "crates/mq/src/lib.rs",
        "// lock-ok: stale claim, no guard crosses anything here\n\
         pub fn f() -> u8 { 0 }\n",
    )]);
    assert_eq!(
        a.annotation_errors.iter().map(|v| v.rule).collect::<Vec<_>>(),
        ["lock-ok-unused"]
    );
}
