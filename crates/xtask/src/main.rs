//! `cargo xtask` — repo automation, dependency-free by design.
//!
//! Subcommands:
//!
//! - `lint` — the six concurrency invariants rustc cannot enforce
//!   (unsafe allowlist, SAFETY comments, SeqCst ban, relaxed-ok audit,
//!   sleep ban, sync-shim imports). See [`lint`] and DESIGN.md §9.
//! - `panic-check [--root DIR] [--json PATH]` — dataplane panic-freedom
//!   analyzer: call-graph reachability from the RX/parse/flow/codec/mq
//!   entry points to classified panic sites, with `panic-ok` annotation
//!   auditing and call-chain witnesses. See [`panic_check`] and
//!   DESIGN.md §10.
//! - `hotpath-check [--root DIR] [--json PATH]` — hot-path hygiene
//!   analyzer: allocation reachability from the steady-state dataplane
//!   roots and lock discipline (guards across blocking calls /
//!   allocation, inter-procedural lock-order cycles), with `alloc-ok` /
//!   `lock-ok` auditing. See [`hotpath_check`] and DESIGN.md §14.
//! - `account-check [--root DIR] [--json PATH]` — loss-accounting
//!   analyzer: every discard site (continue/break in record loops, `?` /
//!   early return, dropped match bindings, `let _ =` on sends) reachable
//!   from the dataplane roots must be paired with a reject/telemetry
//!   counter increment or carry an audited `account-ok` annotation, every
//!   declared metric must have a write site, and every term of the
//!   conservation manifest must be live. See [`account_check`] and
//!   DESIGN.md §15.
//! - `check-all [--root DIR] [--json PATH]` — run lint + panic-check +
//!   hotpath-check + account-check with per-step timing; the one entry
//!   point CI and `scripts/check.sh` invoke. With `--json`, writes every
//!   analyzer's findings into one combined report (`-` for stdout).
//!
//! All `--json` reports share one shape: `{"analyzers": [{"analyzer",
//! "findings": [{rule, path, line, func, snippet, witness}], "audited"}]}`.

// The clippy.toml disallowed-methods list bans hot-path footguns
// (wall-clock reads, per-record allocation); xtask is offline repo
// tooling where those methods are the idiomatic choice.
#![allow(clippy::disallowed_methods)]

mod account_check;
mod callgraph;
mod check_all;
mod hotpath_check;
mod lexer;
mod lint;
mod panic_check;
mod suppress;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::lint(&lexer::workspace_root()),
        Some("panic-check") => panic_check::run(&args[1..]),
        Some("hotpath-check") => hotpath_check::run(&args[1..]),
        Some("account-check") => account_check::run(&args[1..]),
        Some("check-all") => check_all::run(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask <lint | panic-check | hotpath-check | account-check | check-all> \
                 [--root DIR] [--json PATH]"
            );
            ExitCode::from(2)
        }
    }
}
