//! `cargo xtask` — repo automation, dependency-free by design.
//!
//! The one subcommand, `lint`, enforces the concurrency invariants that
//! rustc cannot (see DESIGN.md §9). Rules:
//!
//! 1. **unsafe-allowlist** — `unsafe` code may only appear in the modules
//!    that implement the two lock-free structures (`ruru-nic`'s `ring.rs`
//!    and `queue.rs`) and in the model checker itself (`crates/loom`).
//!    Everything else must stay safe Rust; new unsafe requires widening the
//!    allowlist in review, not sprinkling `unsafe` ad hoc.
//! 2. **safety-comment** — every `unsafe` block or `unsafe impl` must have
//!    a `// SAFETY:` comment on the same line or in the comment block
//!    immediately above it, stating the invariant that makes it sound.
//! 3. **seqcst-ban** — `Ordering::SeqCst` is banned: it is never needed in
//!    this codebase and usually papers over not knowing the real ordering.
//!    (`crates/loom` is exempt — it *dispatches on* user-passed orderings.)
//! 4. **relaxed-head-tail** — a `Relaxed` access on a line touching the
//!    ring's `head`/`tail` counters must carry a `lint: relaxed-ok` comment
//!    on the line or just above it, documenting why the weak ordering is
//!    sound (typically: it is the accessor's own single-writer counter).
//! 5. **sleep-ban** — `thread::sleep` may not appear in the poll-mode hot
//!    path (`crates/nic/src`, `crates/pipeline/src/engine.rs`); idle
//!    waiting there must go through `ruru_nic::backoff::Backoff` so the
//!    spin → yield → park policy stays uniform and loom-checkable.
//! 6. **raw-atomic-import** — inside the shimmed crates (`ruru-nic`,
//!    `ruru-mq`), production code must take atomics from the crate's
//!    `sync` shim, never `std::sync::atomic` directly, or a `--cfg loom`
//!    build silently stops instrumenting them.
//!
//! Test code (`mod tests` regions, `tests/` files, `benches/`) is exempt
//! from 4–6: tests may use bare std primitives freely.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();
    let mut violations = Vec::new();
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(check_file(&rel, &source));
    }
    if violations.is_empty() {
        println!("xtask lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Locate the workspace root: walk up from this file's manifest.
fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/xtask at compile time; at run time
    // prefer the cwd cargo sets for `cargo run` (the invocation dir), so
    // fall back to walking up until a directory containing `crates/` and a
    // workspace Cargo.toml appears.
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        if let Some(root) = Path::new(&dir).ancestors().nth(2) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            panic!("workspace root not found");
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// One lint finding, displayed as `path:line: [rule] message`.
#[derive(Debug, PartialEq, Eq)]
struct Violation {
    path: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Per-line view of a source file after lexing: the code with comments and
/// string/char literals blanked out (structure preserved), plus the comment
/// text alone (for SAFETY / relaxed-ok annotations), plus test-region marks.
struct FileView {
    code: Vec<String>,
    comments: Vec<String>,
    in_tests: Vec<bool>,
}

/// Strip comments and string/char/byte literals from `source`, keeping the
/// line structure, so keyword scans cannot be fooled by doc text or string
/// contents. A tiny hand-rolled lexer: handles `//`, nested `/* */`, `"…"`
/// with escapes, raw strings `r#"…"#`, byte strings, char literals
/// (including `'\''`), and lifetimes (`'a` is not a char literal).
fn lex(source: &str) -> FileView {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let mut state = State::Code;
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied().unwrap_or('\0');
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            code.push(String::new());
            comments.push(String::new());
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if next == '/' => {
                    state = State::LineComment;
                    comments.last_mut().unwrap().push_str("//");
                    i += 2;
                }
                '/' if next == '*' => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    code.last_mut().unwrap().push('"');
                    i += 1;
                }
                'r' | 'b' => {
                    // Possible raw/byte string start: r", r#", br", b"…
                    let mut j = i + 1;
                    if bytes.get(j) == Some(&'r') && c == 'b' {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') && (hashes > 0 || j > i + usize::from(c == 'b')) {
                        state = State::RawStr(hashes);
                        code.last_mut().unwrap().push('"');
                        i = j + 1;
                    } else if c == 'b' && bytes.get(i + 1) == Some(&'"') {
                        state = State::Str;
                        code.last_mut().unwrap().push('"');
                        i += 2;
                    } else {
                        code.last_mut().unwrap().push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs. lifetime: a lifetime is '<ident> not
                    // followed by a closing quote.
                    let is_char = match bytes.get(i + 1) {
                        Some('\\') => true,
                        Some(&d) => bytes.get(i + 2) == Some(&'\'') || !unicode_ident(d),
                        None => false,
                    };
                    if is_char {
                        state = State::Char;
                        code.last_mut().unwrap().push('\'');
                    } else {
                        code.last_mut().unwrap().push('\'');
                    }
                    i += 1;
                }
                _ => {
                    code.last_mut().unwrap().push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                comments.last_mut().unwrap().push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == '/' {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == '*' {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comments.last_mut().unwrap().push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    code.last_mut().unwrap().push('"');
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && bytes.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        state = State::Code;
                        code.last_mut().unwrap().push('"');
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    code.last_mut().unwrap().push('\'');
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    let in_tests = mark_test_regions(&code);
    FileView {
        code,
        comments,
        in_tests,
    }
}

fn unicode_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Mark the lines inside `mod tests { … }` (and `#[cfg(test)] mod … { … }`)
/// by brace counting on the comment-stripped code.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_tests = vec![false; code.len()];
    let mut depth: i32 = 0;
    let mut active = false;
    let mut saw_cfg_test = false;
    for (idx, line) in code.iter().enumerate() {
        if !active {
            let trimmed = line.trim();
            if trimmed.contains("#[cfg(test)]") {
                saw_cfg_test = true;
            }
            let is_mod_tests = trimmed.starts_with("mod tests")
                || trimmed.starts_with("pub mod tests")
                || (saw_cfg_test && trimmed.starts_with("mod "));
            if is_mod_tests && line.contains('{') {
                active = true;
                saw_cfg_test = false;
                depth = 0;
            } else if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                saw_cfg_test = false;
            }
        }
        if active {
            in_tests[idx] = true;
            for c in line.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            active = false;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    in_tests
}

/// Files allowed to contain `unsafe` (the audited lock-free cores and the
/// model checker).
fn unsafe_allowed(path: &str) -> bool {
    path == "crates/nic/src/ring.rs"
        || path == "crates/nic/src/queue.rs"
        || path.starts_with("crates/loom/")
        || path.starts_with("crates/xtask/")
}

/// Crates exempt from the SeqCst ban (the checker dispatches on orderings;
/// xtask's own sources spell them in lint rules and tests).
fn seqcst_allowed(path: &str) -> bool {
    path.starts_with("crates/loom/") || path.starts_with("crates/xtask/")
}

/// Production code of the shimmed crates: must import atomics via `sync`.
fn shimmed(path: &str) -> bool {
    (path.starts_with("crates/nic/src/") || path.starts_with("crates/mq/src/"))
        && !path.ends_with("/sync.rs")
}

/// Hot-path modules where `thread::sleep` is banned.
fn hot_path(path: &str) -> bool {
    path.starts_with("crates/nic/src/") || path == "crates/pipeline/src/engine.rs"
}

/// Integration-test / bench files: exempt from the style rules (4–6).
fn test_file(path: &str) -> bool {
    path.contains("/tests/") || path.contains("/benches/")
}

/// True when the contiguous comment block directly above `idx` (or the
/// comment on `idx` itself) contains `needle`.
fn annotated_above(view: &FileView, idx: usize, needle: &str) -> bool {
    if view.comments[idx].contains(needle) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let code = view.code[i].trim();
        let comment = &view.comments[i];
        if comment.contains(needle) {
            return true;
        }
        // Stop once a line has real code and no comment: the block ended.
        if !code.is_empty() && comment.is_empty() {
            return false;
        }
        if comment.is_empty() && code.is_empty() {
            // Blank line also ends the attached comment block.
            return false;
        }
    }
    false
}

fn check_file(path: &str, source: &str) -> Vec<Violation> {
    let view = lex(source);
    let mut out = Vec::new();
    let push = |out: &mut Vec<Violation>, line: usize, rule: &'static str, message: String| {
        out.push(Violation {
            path: path.to_string(),
            line: line + 1,
            rule,
            message,
        });
    };

    for (idx, line) in view.code.iter().enumerate() {
        let has_word = |w: &str| {
            line.match_indices(w).any(|(pos, _)| {
                let before = line[..pos].chars().next_back();
                let after = line[pos + w.len()..].chars().next();
                !before.is_some_and(unicode_ident) && !after.is_some_and(unicode_ident)
            })
        };

        // Rule 1 + 2: unsafe allowlist and SAFETY comments.
        if has_word("unsafe") {
            if !unsafe_allowed(path) {
                push(
                    &mut out,
                    idx,
                    "unsafe-allowlist",
                    "`unsafe` outside the audited lock-free modules (ring.rs, queue.rs, crates/loom)"
                        .into(),
                );
            } else if !annotated_above(&view, idx, "SAFETY:") {
                push(
                    &mut out,
                    idx,
                    "safety-comment",
                    "`unsafe` without a `// SAFETY:` comment on or directly above it".into(),
                );
            }
        }

        // Rule 3: SeqCst ban.
        if line.contains("SeqCst") && !seqcst_allowed(path) {
            push(
                &mut out,
                idx,
                "seqcst-ban",
                "`Ordering::SeqCst` is banned; use the weakest ordering that is provably sufficient"
                    .into(),
            );
        }

        let in_test_code = view.in_tests[idx] || test_file(path);

        // Rule 4: Relaxed on head/tail needs a relaxed-ok annotation.
        if !in_test_code
            && !seqcst_allowed(path)
            && line.contains("Relaxed")
            && (has_word("head") || has_word("tail"))
            && !annotated_above(&view, idx, "lint: relaxed-ok")
        {
            push(
                &mut out,
                idx,
                "relaxed-head-tail",
                "`Relaxed` access to a head/tail counter without a `lint: relaxed-ok` justification"
                    .into(),
            );
        }

        // Rule 5: no sleeping on the hot path.
        if !in_test_code && hot_path(path) && line.contains("thread::sleep") {
            push(
                &mut out,
                idx,
                "sleep-ban",
                "`thread::sleep` in a poll-mode hot module; use backoff::Backoff".into(),
            );
        }

        // Rule 6: shimmed crates must not bypass the sync shim.
        if !in_test_code && shimmed(path) && line.contains("std::sync::atomic") {
            push(
                &mut out,
                idx,
                "raw-atomic-import",
                "raw `std::sync::atomic` in a shimmed crate; import via the crate's `sync` module"
                    .into(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(path: &str, src: &str) -> Vec<&'static str> {
        check_file(path, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_file_passes() {
        let src = "use crate::sync::atomic::AtomicU64;\nfn f() -> u32 { 1 }\n";
        assert!(rules("crates/nic/src/port.rs", src).is_empty());
    }

    #[test]
    fn unsafe_outside_allowlist_flagged() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(rules("crates/mq/src/chan.rs", src), ["unsafe-allowlist"]);
        // Same code in an allowlisted file only wants a SAFETY comment.
        assert_eq!(rules("crates/nic/src/ring.rs", src), ["safety-comment"]);
    }

    #[test]
    fn safety_comment_satisfies_allowlisted_unsafe() {
        let src = "// SAFETY: p is valid for reads by contract.\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert!(rules("crates/nic/src/ring.rs", src).is_empty());
        let inline = "fn f(p: *const u8) -> u8 { unsafe { *p } } // SAFETY: contract\n";
        assert!(rules("crates/nic/src/queue.rs", inline).is_empty());
    }

    #[test]
    fn blank_line_detaches_safety_comment() {
        let src = "// SAFETY: stale justification.\n\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(rules("crates/nic/src/ring.rs", src), ["safety-comment"]);
    }

    #[test]
    fn unsafe_in_comments_and_strings_ignored() {
        let src = "//! This module avoids unsafe code.\nconst HINT: &str = \"unsafe\";\n/* unsafe */\n";
        assert!(rules("crates/flow/src/table.rs", src).is_empty());
    }

    #[test]
    fn seqcst_flagged_except_in_loom() {
        let src = "fn f(x: &std::sync::atomic::AtomicU32) { x.load(core::sync::atomic::Ordering::SeqCst); }\n";
        assert_eq!(
            rules("crates/tsdb/src/store.rs", src),
            ["seqcst-ban"]
        );
        assert!(rules("crates/loom/src/lib.rs", src).is_empty());
    }

    #[test]
    fn relaxed_head_tail_needs_annotation() {
        let bad = "let h = self.head.load(Ordering::Relaxed);\n";
        assert_eq!(rules("crates/nic/src/ring.rs", bad), ["relaxed-head-tail"]);
        let ok = "// Own counter. lint: relaxed-ok\nlet h = self.head.load(Ordering::Relaxed);\n";
        assert!(rules("crates/nic/src/ring.rs", ok).is_empty());
        let inline = "let h = self.head.load(Ordering::Relaxed); // lint: relaxed-ok\n";
        assert!(rules("crates/nic/src/ring.rs", inline).is_empty());
    }

    #[test]
    fn sleep_flagged_only_on_hot_path() {
        let src = "fn idle() { std::thread::sleep(d); }\n";
        assert_eq!(rules("crates/nic/src/lcore.rs", src), ["sleep-ban"]);
        assert_eq!(rules("crates/pipeline/src/engine.rs", src), ["sleep-ban"]);
        assert!(rules("crates/mq/src/tcp.rs", src).is_empty());
    }

    #[test]
    fn raw_atomic_flagged_in_shimmed_crates_only() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        assert_eq!(
            rules("crates/nic/src/clock.rs", src),
            ["raw-atomic-import"]
        );
        assert_eq!(rules("crates/mq/src/chan.rs", src), ["raw-atomic-import"]);
        // The shim itself and unshimmed crates are exempt.
        assert!(rules("crates/nic/src/sync.rs", src).is_empty());
        assert!(rules("crates/tsdb/src/store.rs", src).is_empty());
    }

    #[test]
    fn test_regions_are_exempt_from_style_rules() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicU64;\n    fn t() { std::thread::sleep(d); }\n}\n";
        assert!(rules("crates/nic/src/lcore.rs", src).is_empty());
        // …but not from the unsafe allowlist (rule 1 is structural).
        let with_unsafe = "#[cfg(test)]\nmod tests {\n    fn t(p: *const u8) -> u8 { unsafe { *p } }\n}\n";
        assert_eq!(
            rules("crates/mq/src/chan.rs", with_unsafe),
            ["unsafe-allowlist"]
        );
    }

    #[test]
    fn integration_test_files_exempt_from_style_rules() {
        let src = "use std::sync::atomic::AtomicU64;\nfn f() { std::thread::sleep(d); }\n";
        assert!(rules("crates/nic/tests/prop_nic.rs", src).is_empty());
    }

    #[test]
    fn lexer_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nconst R: &str = r#\"unsafe SeqCst thread::sleep\"#;\nconst C: char = '\\'';\n";
        assert!(rules("crates/nic/src/port.rs", src).is_empty());
    }
}
