//! `cargo xtask` — repo automation, dependency-free by design.
//!
//! Subcommands:
//!
//! - `lint` — the six concurrency invariants rustc cannot enforce
//!   (unsafe allowlist, SAFETY comments, SeqCst ban, relaxed-ok audit,
//!   sleep ban, sync-shim imports). See [`lint`] and DESIGN.md §9.
//! - `panic-check [--root DIR]` — dataplane panic-freedom analyzer:
//!   call-graph reachability from the RX/parse/flow/codec/mq entry points
//!   to classified panic sites, with `panic-ok` annotation auditing and
//!   call-chain witnesses. See [`panic_check`] and DESIGN.md §10.
//! - `hotpath-check [--root DIR]` — hot-path hygiene analyzer: allocation
//!   reachability from the steady-state dataplane roots and lock
//!   discipline (guards across blocking calls / allocation, inter-
//!   procedural lock-order cycles), with `alloc-ok` / `lock-ok` auditing.
//!   See [`hotpath_check`] and DESIGN.md §14.

mod callgraph;
mod hotpath_check;
mod lexer;
mod lint;
mod panic_check;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::lint(&lexer::workspace_root()),
        Some("panic-check") => panic_check::run(&args[1..]),
        Some("hotpath-check") => hotpath_check::run(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask <lint | panic-check [--root DIR] | hotpath-check [--root DIR]>"
            );
            ExitCode::from(2)
        }
    }
}
