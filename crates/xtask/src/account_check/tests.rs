use super::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Build a throwaway workspace fixture: `files` are (rel path, source).
fn fixture(files: &[(&str, &str)]) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let root = std::env::temp_dir().join(format!("ruru-account-check-{}-{n}", std::process::id()));
    for (rel, content) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("fixture parent")).expect("mkdir");
        std::fs::write(path, content).expect("write fixture");
    }
    root
}

fn run_on(files: &[(&str, &str)]) -> AccountAnalysis {
    let root = fixture(files);
    let a = analyze(&root).expect("analyze fixture");
    std::fs::remove_dir_all(&root).ok();
    a
}

fn rules(a: &AccountAnalysis) -> Vec<&'static str> {
    a.violations.iter().map(|v| v.rule).collect()
}

fn annotation_rules(a: &AccountAnalysis) -> Vec<&'static str> {
    a.annotation_errors.iter().map(|v| v.rule).collect()
}

// ---------------------------------------------------------------------------
// Discard-site detection
// ---------------------------------------------------------------------------

#[test]
fn unpaired_continue_in_rooted_loop_is_flagged() {
    let a = run_on(&[(
        "crates/pipeline/src/engine.rs",
        "pub fn dataplane_worker(xs: &[u8]) {\n\
         \x20   for x in xs {\n\
         \x20       if *x == 0 {\n\
         \x20           continue;\n\
         \x20       }\n\
         \x20   }\n\
         }\n",
    )]);
    assert_eq!(rules(&a), ["unaccounted-continue"]);
    assert_eq!(a.violations[0].witness, ["pipeline::dataplane_worker"]);
    assert_eq!(a.paired_sites, 0);
}

#[test]
fn continue_paired_with_counter_in_same_block_is_clean() {
    let a = run_on(&[(
        "crates/pipeline/src/engine.rs",
        "pub fn dataplane_worker(xs: &[u8]) {\n\
         \x20   for x in xs {\n\
         \x20       if *x == 0 {\n\
         \x20           r.counter_add(0, drops, 1);\n\
         \x20           continue;\n\
         \x20       }\n\
         \x20   }\n\
         }\n",
    )]);
    assert!(rules(&a).is_empty(), "{:?}", rules(&a));
    assert_eq!(a.paired_sites, 1);
}

#[test]
fn continue_paired_through_accounting_helper_is_clean() {
    let a = run_on(&[(
        "crates/pipeline/src/engine.rs",
        "pub fn dataplane_worker(xs: &[u8]) {\n\
         \x20   for x in xs {\n\
         \x20       if *x == 0 {\n\
         \x20           note_drop();\n\
         \x20           continue;\n\
         \x20       }\n\
         \x20   }\n\
         }\n\
         fn note_drop() {\n\
         \x20   r.counter_add(0, drops, 1);\n\
         }\n",
    )]);
    assert!(rules(&a).is_empty(), "{:?}", rules(&a));
    assert_eq!(a.paired_sites, 1);
}

#[test]
fn unpaired_try_is_flagged_with_call_chain_witness() {
    let a = run_on(&[(
        "crates/flow/src/lib.rs",
        "pub fn process_burst() {\n\
         \x20   let _x = helper();\n\
         }\n\
         fn helper() -> Option<u8> {\n\
         \x20   probe()?;\n\
         \x20   Some(1)\n\
         }\n\
         fn probe() -> Option<u8> {\n\
         \x20   Some(0)\n\
         }\n",
    )]);
    assert_eq!(rules(&a), ["unaccounted-try"]);
    assert_eq!(a.violations[0].witness, ["flow::process_burst", "flow::helper"]);
}

#[test]
fn typed_reject_is_the_accounting_currency() {
    // Propagating a typed `Reject` (or wire's `Error`, converted at the
    // classify boundary) is accounted by construction: the engine
    // catch-site records per-cause.
    let a = run_on(&[(
        "crates/flow/src/lib.rs",
        "pub fn process_burst(bad: bool) -> Result<(), Reject> {\n\
         \x20   if bad {\n\
         \x20       return Err(Reject::BadTcp);\n\
         \x20   }\n\
         \x20   other()?;\n\
         \x20   Ok(())\n\
         }\n\
         fn other() -> Result<(), u8> {\n\
         \x20   if true {\n\
         \x20       return Err(Error::Truncated);\n\
         \x20   }\n\
         \x20   Ok(())\n\
         }\n",
    )]);
    // The `other()?` at the call site is still a plain `?` on a non-Reject
    // line — only the typed-error lines themselves are exempt.
    assert_eq!(rules(&a), ["unaccounted-try"]);
    assert_eq!(a.violations[0].line, 5);
}

#[test]
fn let_underscore_on_send_result_is_flagged() {
    let a = run_on(&[(
        "crates/mq/src/lib.rs",
        "pub fn send_batch(x: u8) {\n\
         \x20   let _ = tx.send(x);\n\
         }\n",
    )]);
    assert_eq!(rules(&a), ["discarded-send"]);
}

#[test]
fn bus_closed_catch_site_shape_is_paired() {
    // The PR 1 regression shape: a failed batch send is caught by the
    // engine and recorded as Reject::BusClosed — the `Err(_)` arm is
    // paired by the `.record(` in its arm body.
    let a = run_on(&[(
        "crates/pipeline/src/engine.rs",
        "pub fn dataplane_worker() {\n\
         \x20   match bus.send_batch(batch) {\n\
         \x20       Ok(_) => {}\n\
         \x20       Err(_) => {\n\
         \x20           rejects.record(Reject::BusClosed);\n\
         \x20       }\n\
         \x20   }\n\
         }\n",
    )]);
    assert!(rules(&a).is_empty(), "{:?}", rules(&a));
    assert_eq!(a.paired_sites, 1);
}

#[test]
fn bus_closed_drop_without_record_regresses() {
    // Deleting the catch-site record reintroduces the silent-loss bug the
    // analyzer exists to catch.
    let a = run_on(&[(
        "crates/pipeline/src/engine.rs",
        "pub fn dataplane_worker() {\n\
         \x20   match bus.send_batch(batch) {\n\
         \x20       Ok(_) => {}\n\
         \x20       Err(_) => {}\n\
         \x20   }\n\
         }\n",
    )]);
    assert_eq!(rules(&a), ["match-drop"]);
    assert_eq!(a.violations[0].witness, ["pipeline::dataplane_worker"]);
}

#[test]
fn discards_outside_the_reachable_dataplane_are_not_fatal() {
    let a = run_on(&[(
        "crates/flow/src/lib.rs",
        "pub fn cold_path(xs: &[u8]) {\n\
         \x20   for x in xs {\n\
         \x20       if *x == 0 {\n\
         \x20           continue;\n\
         \x20       }\n\
         \x20   }\n\
         }\n",
    )]);
    assert!(rules(&a).is_empty(), "{:?}", rules(&a));
    assert_eq!(a.unreachable_sites, 1);
}

#[test]
fn baseline_and_tsdb_files_are_exempt() {
    let a = run_on(&[
        (
            "crates/flow/src/baseline/pping.rs",
            "pub fn process_burst(xs: &[u8]) {\n\
             \x20   for x in xs {\n\
             \x20       if *x == 0 {\n\
             \x20           continue;\n\
             \x20       }\n\
             \x20   }\n\
             }\n",
        ),
        (
            "crates/tsdb/src/lib.rs",
            "pub fn write() -> Option<u8> {\n\
             \x20   probe()?;\n\
             \x20   Some(1)\n\
             }\n",
        ),
    ]);
    assert!(rules(&a).is_empty(), "{:?}", rules(&a));
}

// ---------------------------------------------------------------------------
// Counter liveness + conservation manifest
// ---------------------------------------------------------------------------

/// A manifest file with no terms, so declaring metrics in a fixture does
/// not also trip the missing-manifest rule.
const EMPTY_MANIFEST: (&str, &str) = (
    "crates/pipeline/src/conservation.rs",
    "pub const IDENTITIES: u8 = 0;\n",
);

#[test]
fn declared_counter_with_no_write_site_is_dead() {
    let a = run_on(&[
        (
            "crates/telemetry/src/lib.rs",
            "pub fn build() {\n\
             \x20   let mut b = RegistryBuilder::new();\n\
             \x20   let dead = b.counter(\"never_written\");\n\
             }\n",
        ),
        EMPTY_MANIFEST,
    ]);
    assert_eq!(rules(&a), ["dead-counter"]);
    assert_eq!(a.violations[0].func, "metric `never_written`");
    assert_eq!(a.metrics_declared, 1);
}

#[test]
fn counter_with_reachable_write_site_is_live() {
    let a = run_on(&[
        (
            "crates/telemetry/src/lib.rs",
            "pub fn build() {\n\
             \x20   let mut b = RegistryBuilder::new();\n\
             \x20   let hits = b.counter(\"hits\");\n\
             }\n\
             pub fn snapshot_into() {\n\
             \x20   r.counter_add(0, hits, 1);\n\
             }\n",
        ),
        EMPTY_MANIFEST,
    ]);
    assert!(rules(&a).is_empty(), "{:?}", rules(&a));
}

#[test]
fn identity_term_without_declared_metric_is_flagged() {
    let a = run_on(&[
        (
            "crates/telemetry/src/lib.rs",
            "pub fn build() {\n\
             \x20   let mut b = RegistryBuilder::new();\n\
             \x20   let real = b.counter(\"real\");\n\
             }\n\
             pub fn snapshot_into() {\n\
             \x20   r.counter_add(0, real, 1);\n\
             }\n",
        ),
        (
            "crates/pipeline/src/conservation.rs",
            "pub const IDENTITIES: &[(u8, u8)] = &[\n\
             \x20   (Counter(\"real\"), Counter(\"ghost\")),\n\
             ];\n",
        ),
    ]);
    assert_eq!(rules(&a), ["identity-term-missing"]);
    assert_eq!(a.violations[0].func, "term `ghost`");
    assert_eq!(a.identity_terms, 2);
}

#[test]
fn declared_metrics_without_a_manifest_fail_loudly() {
    let a = run_on(&[(
        "crates/telemetry/src/lib.rs",
        "pub fn build() {\n\
         \x20   let mut b = RegistryBuilder::new();\n\
         \x20   let hits = b.counter(\"hits\");\n\
         }\n\
         pub fn snapshot_into() {\n\
         \x20   r.counter_add(0, hits, 1);\n\
         }\n",
    )]);
    assert_eq!(rules(&a), ["conservation-manifest"]);
}

// ---------------------------------------------------------------------------
// Annotation audit
// ---------------------------------------------------------------------------

#[test]
fn audited_annotation_suppresses_with_reason() {
    let a = run_on(&[(
        "crates/pipeline/src/engine.rs",
        "pub fn dataplane_worker(xs: &[u8]) {\n\
         \x20   for x in xs {\n\
         \x20       // account-ok: tail skip holds no record\n\
         \x20       continue;\n\
         \x20   }\n\
         }\n",
    )]);
    assert!(rules(&a).is_empty(), "{:?}", rules(&a));
    assert!(annotation_rules(&a).is_empty(), "{:?}", annotation_rules(&a));
    assert_eq!(a.audited.len(), 1);
    assert_eq!(a.audited[0].2, "tail skip holds no record");
}

#[test]
fn empty_reason_annotation_is_a_violation() {
    let a = run_on(&[(
        "crates/pipeline/src/engine.rs",
        "pub fn dataplane_worker(xs: &[u8]) {\n\
         \x20   for x in xs {\n\
         \x20       // account-ok:\n\
         \x20       continue;\n\
         \x20   }\n\
         }\n",
    )]);
    assert!(rules(&a).is_empty(), "{:?}", rules(&a));
    assert_eq!(annotation_rules(&a), ["account-ok-empty"]);
}

#[test]
fn unused_annotation_is_a_violation() {
    let a = run_on(&[(
        "crates/pipeline/src/engine.rs",
        "pub fn dataplane_worker() {\n\
         \x20   // account-ok: nothing here discards\n\
         \x20   let x = 1;\n\
         \x20   let _y = x;\n\
         }\n",
    )]);
    assert!(rules(&a).is_empty(), "{:?}", rules(&a));
    assert_eq!(annotation_rules(&a), ["account-ok-unused"]);
}

// ---------------------------------------------------------------------------
// Shared JSON report shape
// ---------------------------------------------------------------------------

#[test]
fn json_section_carries_findings_and_audit_count() {
    let a = run_on(&[(
        "crates/pipeline/src/engine.rs",
        "pub fn dataplane_worker(xs: &[u8]) {\n\
         \x20   for x in xs {\n\
         \x20       if *x == 0 {\n\
         \x20           continue;\n\
         \x20       }\n\
         \x20   }\n\
         }\n",
    )]);
    let json = json_section(&a);
    assert!(json.contains("\"analyzer\":\"account-check\""), "{json}");
    assert!(json.contains("\"rule\":\"unaccounted-continue\""), "{json}");
    assert!(json.contains("pipeline::dataplane_worker"), "{json}");
}
