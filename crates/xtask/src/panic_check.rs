//! `cargo xtask panic-check` — dataplane panic-freedom analyzer.
//!
//! Built on the shared [`crate::callgraph`] machinery: parses the hot-path
//! crates, builds the intra-workspace call graph, and walks reachability
//! from the dataplane entry points (RX burst loop, parser views, flow-table
//! ops, handshake machine, codec, mq send/recv).
//!
//! Panic sources classified in non-test code:
//!   - `unwrap` / `expect`
//!   - `panic!` / `unreachable!` / `todo!` / `unimplemented!` /
//!     `assert!` / `assert_eq!` / `assert_ne!` (debug_assert* exempt —
//!     compiled out of release dataplane builds)
//!   - slice/array indexing `x[i]` (`x[..]` exempt: infallible)
//!   - integer `/` and `%` with a non-literal divisor
//!   - bare `+` / `-` / `*` on the wire-arithmetic surface (`crates/wire`,
//!     `flow/src/measurement.rs`) outside `checked_*`/`wrapping_*` forms
//!     (debug builds panic on overflow; adversarial wire input controls
//!     these operands)
//!
//! A site reachable from a root fails the build unless annotated
//! `// panic-ok: <reason>` on the line or in the comment block directly
//! above it. Annotations are audited: an empty reason or an annotation that
//! suppresses nothing is itself a violation. Output is a per-crate report
//! with a call-chain witness (root → … → panic site) for each violation.
//!
//! Known soundness limits (documented in DESIGN.md §10): macro-expanded
//! code is invisible; trait-object and closure dispatch produce no edges;
//! calls qualified with external types (`HashMap::get`) are leaves;
//! multi-line expressions are classified line-by-line.

use crate::callgraph::{read_tok, skip_ws_chars, tok_ending_at, Finding, Workspace};
use crate::lexer::unicode_ident;
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

/// The crates whose steady-state code must be panic-free.
pub const DATAPLANE_CRATES: &[&str] =
    &["wire", "nic", "flow", "mq", "tsdb", "telemetry", "pipeline"];

/// Dataplane entry points: (crate, fn name); `"*"` roots every pub fn in
/// the crate. `new`/constructors are deliberately NOT rooted — init-time
/// config-validation panics are accepted policy; `wire` is wildcarded
/// because every parser view must be total on adversarial bytes.
const ROOTS: &[(&str, &str)] = &[
    ("wire", "*"),
    // RX burst loop + fault injection + RSS steering + SPSC ring ops.
    ("nic", "rx_burst"),
    ("nic", "inject"),
    ("nic", "inject_at"),
    ("nic", "apply"),
    ("nic", "hash_v4"),
    ("nic", "hash_v6"),
    ("nic", "hash_tuple"),
    ("nic", "queue_for"),
    ("nic", "parse_rss_tuple"),
    ("nic", "push"),
    ("nic", "pop"),
    ("nic", "push_burst"),
    ("nic", "pop_burst"),
    // Handshake state machine, flow table, classifier, codec.
    ("flow", "process"),
    ("flow", "process_at"),
    ("flow", "process_burst"),
    ("flow", "housekeep"),
    ("flow", "housekeep_guarded"),
    ("flow", "insert"),
    ("flow", "get"),
    ("flow", "get_mut"),
    ("flow", "remove"),
    ("flow", "expire"),
    ("flow", "classify"),
    ("flow", "classify_mbuf"),
    ("flow", "mix_hash"),
    // RSS-native flow-table burst surface.
    ("flow", "lookup_burst"),
    ("flow", "insert_burst"),
    ("flow", "prefetch"),
    // Continuous in-flow RTT surface (pinned by type so coverage survives
    // if the unqualified names above are ever narrowed), plus the pping
    // baseline the differential tests run against.
    ("flow", "InflowTracker::process"),
    ("flow", "InflowTracker::process_burst"),
    ("flow", "InflowTracker::housekeep_guarded"),
    ("flow", "Pping::process"),
    ("flow", "decode"),
    ("flow", "encode"),
    ("flow", "encode_into"),
    // Message-queue send/recv surface.
    ("mq", "send"),
    ("mq", "send_batch"),
    ("mq", "try_send"),
    ("mq", "recv"),
    ("mq", "recv_timeout"),
    ("mq", "try_recv"),
    ("mq", "recv_batch"),
    ("mq", "try_recv_batch"),
    ("mq", "publish"),
    ("mq", "publish_batch"),
    ("mq", "encode_frame"),
    ("mq", "read_frame"),
    // Time-series ingest/query path.
    ("tsdb", "write"),
    ("tsdb", "write_line"),
    ("tsdb", "parse"),
    ("tsdb", "encode"),
    ("tsdb", "query"),
    ("tsdb", "to_snapshot"),
    ("tsdb", "from_snapshot"),
    ("tsdb", "downsample"),
    ("tsdb", "compute"),
    ("tsdb", "percentile_sorted"),
    // Self-telemetry registry: worker-side writes and the collector's
    // epoch-validated snapshot both run on hot threads.
    ("telemetry", "burst_begin"),
    ("telemetry", "burst_end"),
    ("telemetry", "counter_add"),
    ("telemetry", "gauge_store"),
    ("telemetry", "hist_record"),
    ("telemetry", "snapshot_into"),
    // Engine worker + detector loops (named fns, not spawn closures).
    ("pipeline", "dataplane_worker"),
    ("pipeline", "run_to_completion_worker"),
    ("pipeline", "detector_loop"),
];

/// Files where bare `+`/`-`/`*` is a panic source (wire-derived operands).
fn arith_surface(path: &str) -> bool {
    path.starts_with("crates/wire/src/") || path == "crates/flow/src/measurement.rs"
}

/// The full result of one `panic-check` run.
pub struct Analysis {
    /// Functions extracted across the scanned crates.
    pub fn_count: usize,
    /// Resolved intra-workspace call edges.
    pub edge_count: usize,
    /// Unannotated panic sites reachable from a root — these fail the run.
    pub violations: Vec<Finding>,
    /// Suppressed sites: (path, 1-based line, audited reason).
    pub audited: Vec<(String, usize, String)>,
    /// `panic-ok` audit failures (empty reason, unused annotation).
    pub annotation_errors: Vec<Finding>,
    /// Panic sites in functions no root reaches (reported, not fatal).
    pub unreachable_sites: usize,
    /// Per-crate (crate, fns, reachable fns, violations).
    pub per_crate: Vec<(String, usize, usize, usize)>,
}

/// CLI entry: `cargo xtask panic-check [--root DIR] [--json PATH]`.
pub fn run(args: &[String]) -> ExitCode {
    let cli = match crate::check_all::parse_cli("panic-check", args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    match analyze(&cli.root) {
        Ok(a) => {
            if let Some(path) = &cli.json {
                let section = json_section(&a);
                if let Err(e) = crate::callgraph::write_json_report(path, &[section]) {
                    eprintln!("panic-check: {e}");
                    return ExitCode::FAILURE;
                }
            }
            report(&a)
        }
        Err(e) => {
            eprintln!("panic-check: {e}");
            ExitCode::FAILURE
        }
    }
}

/// All fatal findings, ordered violations-then-annotation-errors.
pub fn findings_of(a: &Analysis) -> Vec<&Finding> {
    a.violations.iter().chain(&a.annotation_errors).collect()
}

/// This analyzer's section of the shared `--json` report.
pub fn json_section(a: &Analysis) -> String {
    crate::callgraph::analyzer_json("panic-check", &findings_of(a), a.audited.len())
}

/// Print the per-crate report and turn the analysis into an exit code.
fn report(a: &Analysis) -> ExitCode {
    println!(
        "panic-check: {} fns, {} call edges across {}",
        a.fn_count,
        a.edge_count,
        DATAPLANE_CRATES.join(", ")
    );
    for (name, fns, reachable, viols) in &a.per_crate {
        println!("  {name:<9} {fns:>4} fns  {reachable:>4} reachable  {viols:>3} violation(s)");
    }
    println!(
        "  audited panic-ok sites: {}; panic sites outside the reachable dataplane: {}",
        a.audited.len(),
        a.unreachable_sites
    );
    let total = a.violations.len() + a.annotation_errors.len();
    if total == 0 {
        println!("panic-check: clean");
        return ExitCode::SUCCESS;
    }
    for v in a.violations.iter().chain(&a.annotation_errors) {
        eprintln!("{v}");
    }
    eprintln!("panic-check: {total} violation(s)");
    ExitCode::FAILURE
}

/// Run the analyzer over `<root>/crates/{wire,nic,flow,mq,tsdb,telemetry,pipeline}/src`.
pub fn analyze(root: &Path) -> Result<Analysis, String> {
    let ws = Workspace::load(root, DATAPLANE_CRATES)?;
    let reach = ws.reach(ROOTS);

    let mut violations = Vec::new();
    let mut annotation_errors = Vec::new();
    let mut unreachable_sites = 0usize;
    let mut crate_viols: HashMap<&str, usize> = HashMap::new();
    let mut sup = crate::suppress::Suppressions::new("panic-ok:", "panic-ok-empty", "panic-ok-unused");

    for (fi, file) in ws.files.iter().enumerate() {
        for (idx, line) in file.view.code.iter().enumerate() {
            if file.view.in_tests[idx] || line.trim_start().starts_with('#') {
                continue;
            }
            let mut rules: Vec<&'static str> = Vec::new();
            if line.contains(".unwrap()") {
                rules.push("unwrap");
            }
            if line.contains(".expect(") {
                rules.push("expect");
            }
            if has_panic_macro(line) {
                rules.push("panic-macro");
            }
            if has_panicking_index(line) {
                rules.push("index");
            }
            if has_unchecked_div(line) {
                rules.push("div");
            }
            if arith_surface(&file.rel) && has_unchecked_arith(line) {
                rules.push("arith");
            }
            if rules.is_empty() {
                continue;
            }
            let Some(owner) = ws.innermost_fn(fi, idx) else {
                continue; // const/static item: evaluated at compile time
            };
            // panic-ok suppression (covers every rule on the line).
            if sup.check(&ws, fi, idx, &ws.label(owner)) {
                continue;
            }
            if !reach.reachable[owner] {
                unreachable_sites += rules.len();
                continue;
            }
            for rule in rules {
                *crate_viols.entry(crate_of(&file.rel)).or_default() += 1;
                violations.push(Finding {
                    rule,
                    path: file.rel.clone(),
                    line: idx + 1,
                    func: ws.label(owner),
                    snippet: ws.snippet(fi, idx),
                    witness: reach.witness(&ws, owner),
                });
            }
        }
    }

    sup.audit_unused(&ws);
    annotation_errors.extend(sup.errors);

    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    annotation_errors.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));

    let mut per_crate = Vec::new();
    for krate in DATAPLANE_CRATES {
        let ids: Vec<usize> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| ws.files[f.file].crate_name == *krate)
            .map(|(id, _)| id)
            .collect();
        let reachable = ids.iter().filter(|&&id| reach.reachable[id]).count();
        per_crate.push((
            krate.to_string(),
            ids.len(),
            reachable,
            crate_viols.get(krate).copied().unwrap_or(0),
        ));
    }

    Ok(Analysis {
        fn_count: ws.fns.len(),
        edge_count: ws.edge_count,
        violations,
        audited: sup.audited,
        annotation_errors,
        unreachable_sites,
        per_crate,
    })
}

fn crate_of(rel: &str) -> &'static str {
    for krate in DATAPLANE_CRATES {
        if rel.starts_with(&format!("crates/{krate}/")) {
            return krate;
        }
    }
    "?"
}

// ---------------------------------------------------------------------------
// Per-line panic-source classification
// ---------------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &[
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

fn has_panic_macro(line: &str) -> bool {
    PANIC_MACROS.iter().any(|m| {
        line.match_indices(m).any(|(pos, _)| {
            // Word boundary on the left excludes `debug_assert!`.
            !line[..pos].chars().next_back().is_some_and(unicode_ident)
        })
    })
}

/// `x[i]` where `x` is a value (prev char ident/`)`/`]`). `x[..]` is
/// infallible and exempt; `#[attr]` lines are filtered by the caller.
fn has_panicking_index(line: &str) -> bool {
    let b: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < b.len() {
        if b[i] == '[' {
            let prev = b[..i].iter().rev().find(|c| !c.is_whitespace());
            let mut indexable = matches!(prev, Some(&c) if unicode_ident(c) || c == ')' || c == ']');
            if indexable && matches!(prev, Some(&c) if unicode_ident(c)) {
                // A keyword before `[` introduces a slice pattern or type
                // (`let [a, ..] =`, `&mut [u8]`), not an indexing expression.
                let mut k = i;
                while k > 0 && b[k - 1].is_whitespace() {
                    k -= 1;
                }
                let start = (0..k).rev().take_while(|&p| unicode_ident(b[p])).last();
                if let Some(s) = start {
                    let word: String = b[s..k].iter().collect();
                    if matches!(
                        word.as_str(),
                        "let" | "mut" | "ref" | "in" | "as" | "dyn" | "impl" | "const"
                            | "static" | "return" | "else" | "box" | "move" | "where"
                    ) || (s > 0 && b[s - 1] == '\'')
                    {
                        // Keyword before `[` introduces a slice pattern or
                        // type; a lifetime (`&'a [u8]`) precedes a type.
                        indexable = false;
                    }
                }
            }
            if indexable {
                let mut depth = 1i32;
                let mut j = i + 1;
                let mut content = String::new();
                while j < b.len() && depth > 0 {
                    match b[j] {
                        '[' => depth += 1,
                        ']' => depth -= 1,
                        _ => {}
                    }
                    if depth > 0 {
                        content.push(b[j]);
                    }
                    j += 1;
                }
                let t = content.trim();
                if !t.is_empty() && t != ".." {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}

/// Integer `/` or `%` whose divisor is not a numeric literal or ALL_CAPS
/// constant (compile-time-checked). Conservative: float division is
/// flagged too and needs a `panic-ok` annotation or a guard rewrite.
fn has_unchecked_div(line: &str) -> bool {
    let b: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c != '/' && c != '%' {
            i += 1;
            continue;
        }
        // Binary operator only: something divisible must precede it.
        let prev = b[..i].iter().rev().find(|c| !c.is_whitespace());
        if !matches!(prev, Some(&p) if unicode_ident(p) || p == ')' || p == ']') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if b.get(j) == Some(&'=') {
            j += 1; // compound `/=` `%=`
        }
        j = skip_ws_chars(&b, j);
        if j >= b.len() {
            return true; // divisor continues on the next line: conservative
        }
        if b[j].is_ascii_digit() {
            i = j;
            continue; // literal divisor: nonzero or a compile error
        }
        let (tok, _) = read_tok(&b, j);
        if !tok.is_empty()
            && tok
                .chars()
                .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
        {
            i = j + tok.len();
            continue; // ALL_CAPS constant: const-evaluated
        }
        return true;
    }
    false
}

/// Bare `+` / `-` / `*` on the arithmetic surface, outside signature-ish
/// lines. Both-literal operands are const-folded and exempt.
fn has_unchecked_arith(line: &str) -> bool {
    for kw in ["fn ", "impl ", "where ", "dyn ", "struct ", "enum ", "trait "] {
        if line.contains(kw) {
            return false;
        }
    }
    let b: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c != '+' && c != '-' && c != '*' {
            i += 1;
            continue;
        }
        if c == '-' && b.get(i + 1) == Some(&'>') {
            i += 2; // `->`
            continue;
        }
        let mut pi = i;
        let mut prev = None;
        while pi > 0 {
            pi -= 1;
            if !b[pi].is_whitespace() {
                prev = Some((b[pi], pi));
                break;
            }
        }
        let Some((p, p_at)) = prev else {
            i += 1;
            continue;
        };
        if !(unicode_ident(p) || p == ')' || p == ']') {
            i += 1;
            continue; // unary minus, deref, pattern, etc.
        }
        let prev_tok = tok_ending_at(&b, p_at);
        if prev_tok == "as" {
            i += 1;
            continue; // `x as *const u8`
        }
        // Lifetime bound `'a + 'b`.
        if p_at >= prev_tok.len() && !prev_tok.is_empty() {
            let before = p_at + 1 - prev_tok.len();
            if before > 0 && b[before - 1] == '\'' {
                i += 1;
                continue;
            }
        }
        let mut j = i + 1;
        if b.get(j) == Some(&'=') {
            j += 1; // compound `+=` `-=` `*=`
        }
        j = skip_ws_chars(&b, j);
        let (next_tok, _) = read_tok(&b, j);
        if c == '*' && (next_tok == "const" || next_tok == "mut") {
            i += 1;
            continue; // raw pointer type
        }
        if (is_numeric_tok(&prev_tok) || is_const_tok(&prev_tok))
            && (is_numeric_tok(&next_tok) || is_const_tok(&next_tok))
        {
            i = j;
            continue; // const-folded literal/constant arithmetic
        }
        return true;
    }
    false
}

fn is_numeric_tok(t: &str) -> bool {
    !t.is_empty() && t.chars().all(|c| c.is_ascii_digit() || c == '_')
}

/// An `ALL_CAPS` identifier: a named constant, whose arithmetic the compiler
/// const-folds and overflow-checks at build time.
fn is_const_tok(t: &str) -> bool {
    t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && t.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Build a throwaway workspace fixture: `files` are (rel path, source).
    fn fixture(files: &[(&str, &str)]) -> std::path::PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "ruru-panic-check-{}-{n}",
            std::process::id()
        ));
        for (rel, content) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().expect("fixture parent")).expect("mkdir");
            std::fs::write(path, content).expect("write fixture");
        }
        root
    }

    fn run_on(files: &[(&str, &str)]) -> Analysis {
        let root = fixture(files);
        let a = analyze(&root).expect("analyze fixture");
        std::fs::remove_dir_all(&root).ok();
        a
    }

    fn rules(a: &Analysis) -> Vec<&'static str> {
        a.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unwrap_in_rooted_wire_fn_is_a_violation() {
        let a = run_on(&[(
            "crates/wire/src/lib.rs",
            "pub fn parse(d: &[u8]) -> u8 { d.first().copied().ok_or(0u8).unwrap() }\n",
        )]);
        assert_eq!(rules(&a), ["unwrap"]);
        assert_eq!(a.violations[0].witness, ["wire::parse"]);
        assert_eq!(a.violations[0].func, "wire::parse");
    }

    #[test]
    fn call_chain_witness_reaches_helper() {
        let a = run_on(&[(
            "crates/flow/src/lib.rs",
            "pub fn classify(d: &[u8]) -> u8 { helper(d) }\n\
             fn helper(d: &[u8]) -> u8 { d.iter().next().copied().expect(\"x\") }\n",
        )]);
        assert_eq!(rules(&a), ["expect"]);
        assert_eq!(a.violations[0].witness, ["flow::classify", "flow::helper"]);
    }

    #[test]
    fn unreachable_fn_sites_reported_not_fatal() {
        let a = run_on(&[(
            "crates/flow/src/lib.rs",
            "fn debug_dump(d: &[u8]) -> u8 { d.first().copied().unwrap() }\n",
        )]);
        assert!(a.violations.is_empty());
        assert_eq!(a.unreachable_sites, 1);
    }

    #[test]
    fn panic_ok_annotation_suppresses_and_is_audited() {
        let a = run_on(&[(
            "crates/wire/src/lib.rs",
            "pub fn parse(d: &[u8]) -> u8 {\n\
             \x20   // panic-ok: length validated by new_checked above\n\
             \x20   d.first().copied().unwrap()\n\
             }\n",
        )]);
        assert!(a.violations.is_empty());
        assert!(a.annotation_errors.is_empty());
        assert_eq!(a.audited.len(), 1);
        assert_eq!(a.audited[0].2, "length validated by new_checked above");
    }

    #[test]
    fn empty_panic_ok_reason_is_a_violation() {
        let a = run_on(&[(
            "crates/wire/src/lib.rs",
            "pub fn parse(d: &[u8]) -> u8 {\n\
             \x20   // panic-ok:\n\
             \x20   d.first().copied().unwrap()\n\
             }\n",
        )]);
        assert_eq!(
            a.annotation_errors.iter().map(|v| v.rule).collect::<Vec<_>>(),
            ["panic-ok-empty"]
        );
    }

    #[test]
    fn unused_panic_ok_annotation_is_a_violation() {
        let a = run_on(&[(
            "crates/wire/src/lib.rs",
            "// panic-ok: stale claim about code that no longer panics\n\
             pub fn parse(d: &[u8]) -> u8 { d.first().copied().unwrap_or(0) }\n",
        )]);
        assert_eq!(
            a.annotation_errors.iter().map(|v| v.rule).collect::<Vec<_>>(),
            ["panic-ok-unused"]
        );
    }

    #[test]
    fn panic_macros_flagged_but_debug_assert_exempt() {
        let a = run_on(&[(
            "crates/wire/src/lib.rs",
            "pub fn parse(len: usize) {\n\
             \x20   debug_assert!(len > 0);\n\
             \x20   assert!(len < 65536);\n\
             }\n",
        )]);
        assert_eq!(rules(&a), ["panic-macro"]);
        assert_eq!(a.violations[0].line, 3);
    }

    #[test]
    fn indexing_flagged_full_range_exempt() {
        let a = run_on(&[(
            "crates/wire/src/lib.rs",
            "pub fn parse(d: &[u8]) -> u8 {\n\
             \x20   let all = &d[..];\n\
             \x20   all[0]\n\
             }\n",
        )]);
        assert_eq!(rules(&a), ["index"]);
        assert_eq!(a.violations[0].line, 3);
    }

    #[test]
    fn division_by_non_literal_flagged() {
        let a = run_on(&[(
            "crates/tsdb/src/lib.rs",
            "pub fn compute(total: u64, n: u64) -> u64 {\n\
             \x20   let half = total / 2;\n\
             \x20   half / n\n\
             }\n",
        )]);
        assert_eq!(rules(&a), ["div"]);
        assert_eq!(a.violations[0].line, 3);
    }

    #[test]
    fn arith_flagged_on_wire_surface_only() {
        let body = "pub fn parse(a: u16, b: u16) -> u16 {\n\
                    \x20   let c = a.wrapping_add(b);\n\
                    \x20   c + b\n\
                    }\n";
        let a = run_on(&[("crates/wire/src/lib.rs", body)]);
        assert_eq!(rules(&a), ["arith"]);
        assert_eq!(a.violations[0].line, 3);
        // The same code outside the arithmetic surface is not flagged
        // (reachable via the tsdb `parse` root, so it is scanned).
        let a = run_on(&[("crates/tsdb/src/lib.rs", body)]);
        assert!(rules(&a).is_empty());
    }

    #[test]
    fn test_regions_exempt() {
        let a = run_on(&[(
            "crates/wire/src/lib.rs",
            "pub fn parse(d: &[u8]) -> u8 { d.first().copied().unwrap_or(0) }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t(d: &[u8]) -> u8 { d.first().copied().unwrap() }\n\
             }\n",
        )]);
        assert!(rules(&a).is_empty());
        assert_eq!(a.unreachable_sites, 0);
    }

    #[test]
    fn qualified_constructor_does_not_over_approximate() {
        // `Backoff::new` in a rooted fn must NOT make `Table::new` (with
        // its assert) reachable; name-based resolution is narrowed by the
        // `Type::` qualifier.
        let a = run_on(&[
            (
                "crates/nic/src/backoff.rs",
                "pub struct Backoff;\n\
                 impl Backoff {\n\
                 \x20   pub fn new() -> Self { Backoff }\n\
                 }\n",
            ),
            (
                "crates/nic/src/rx.rs",
                "use crate::backoff::Backoff;\n\
                 pub fn rx_burst() { let _b = Backoff::new(); }\n",
            ),
            (
                "crates/flow/src/table.rs",
                "pub struct Table;\n\
                 impl Table {\n\
                 \x20   pub fn new(capacity: usize) -> Self { assert!(capacity > 0); Table }\n\
                 }\n",
            ),
        ]);
        assert!(rules(&a).is_empty(), "got {:?}", a.violations);
        assert_eq!(a.unreachable_sites, 1, "Table::new assert stays unreachable");
    }

    #[test]
    fn seeded_unwrap_in_parser_fails_with_witness() {
        // The acceptance-criteria scenario: an unwrap seeded into a parser
        // helper reachable from a root is caught and carries the chain.
        let a = run_on(&[(
            "crates/wire/src/tcp.rs",
            "pub fn parse(d: &[u8]) -> u16 { field(d) }\n\
             fn field(d: &[u8]) -> u16 {\n\
             \x20   let hi = d.get(0).copied().unwrap();\n\
             \x20   u16::from(hi)\n\
             }\n",
        )]);
        assert_eq!(rules(&a), ["unwrap"]);
        let w = &a.violations[0].witness;
        assert_eq!(w.first().map(String::as_str), Some("wire::parse"));
        assert_eq!(w.last().map(String::as_str), Some("wire::field"));
    }

    #[test]
    fn self_qualifier_resolves_within_impl() {
        let a = run_on(&[(
            "crates/mq/src/chan.rs",
            "pub struct Chan;\n\
             impl Chan {\n\
             \x20   pub fn send(&self) { Self::slot(); }\n\
             \x20   fn slot() { panic!(\"full\"); }\n\
             }\n",
        )]);
        assert_eq!(rules(&a), ["panic-macro"]);
        assert_eq!(a.violations[0].witness, ["mq::send", "mq::slot"]);
    }
}
