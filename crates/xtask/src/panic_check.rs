//! `cargo xtask panic-check` — dataplane panic-freedom analyzer.
//!
//! Parses the six hot-path crates (`wire`, `nic`, `flow`, `mq`, `tsdb`,
//! `pipeline`) with the shared hand-rolled lexer, extracts every function
//! with its span and enclosing `impl` type, builds an intra-workspace call
//! graph by name (qualified calls `Type::fn` resolve only to that type's
//! impl; unqualified calls over-approximate to every same-named function),
//! and walks reachability from the dataplane entry points (RX burst loop,
//! parser views, flow-table ops, handshake machine, codec, mq send/recv).
//!
//! Panic sources classified in non-test code:
//!   - `unwrap` / `expect`
//!   - `panic!` / `unreachable!` / `todo!` / `unimplemented!` /
//!     `assert!` / `assert_eq!` / `assert_ne!` (debug_assert* exempt —
//!     compiled out of release dataplane builds)
//!   - slice/array indexing `x[i]` (`x[..]` exempt: infallible)
//!   - integer `/` and `%` with a non-literal divisor
//!   - bare `+` / `-` / `*` on the wire-arithmetic surface (`crates/wire`,
//!     `flow/src/measurement.rs`) outside `checked_*`/`wrapping_*` forms
//!     (debug builds panic on overflow; adversarial wire input controls
//!     these operands)
//!
//! A site reachable from a root fails the build unless annotated
//! `// panic-ok: <reason>` on the line or in the comment block directly
//! above it. Annotations are audited: an empty reason or an annotation that
//! suppresses nothing is itself a violation. Output is a per-crate report
//! with a call-chain witness (root → … → panic site) for each violation.
//!
//! Known soundness limits (documented in DESIGN.md §10): macro-expanded
//! code is invisible; trait-object and closure dispatch produce no edges;
//! calls qualified with external types (`HashMap::get`) are leaves;
//! multi-line expressions are classified line-by-line.

use crate::lexer::{annotation_above_at, collect_rs_files, lex, unicode_ident, FileView};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::Path;
use std::process::ExitCode;

/// The crates whose steady-state code must be panic-free.
pub const DATAPLANE_CRATES: &[&str] =
    &["wire", "nic", "flow", "mq", "tsdb", "telemetry", "pipeline"];

/// Dataplane entry points: (crate, fn name); `"*"` roots every fn in the
/// crate. `new`/constructors are deliberately NOT rooted — init-time
/// config-validation panics are accepted policy; `wire` is wildcarded
/// because every parser view must be total on adversarial bytes.
const ROOTS: &[(&str, &str)] = &[
    ("wire", "*"),
    // RX burst loop + fault injection + RSS steering + SPSC ring ops.
    ("nic", "rx_burst"),
    ("nic", "inject"),
    ("nic", "inject_at"),
    ("nic", "apply"),
    ("nic", "hash_v4"),
    ("nic", "hash_v6"),
    ("nic", "hash_tuple"),
    ("nic", "queue_for"),
    ("nic", "parse_rss_tuple"),
    ("nic", "push"),
    ("nic", "pop"),
    ("nic", "push_burst"),
    ("nic", "pop_burst"),
    // Handshake state machine, flow table, classifier, codec.
    ("flow", "process"),
    ("flow", "process_at"),
    ("flow", "process_burst"),
    ("flow", "housekeep"),
    ("flow", "housekeep_guarded"),
    ("flow", "insert"),
    ("flow", "get"),
    ("flow", "get_mut"),
    ("flow", "remove"),
    ("flow", "expire"),
    ("flow", "classify"),
    ("flow", "classify_mbuf"),
    ("flow", "mix_hash"),
    // RSS-native flow-table burst surface.
    ("flow", "lookup_burst"),
    ("flow", "insert_burst"),
    ("flow", "prefetch"),
    ("flow", "decode"),
    ("flow", "encode"),
    ("flow", "encode_into"),
    // Message-queue send/recv surface.
    ("mq", "send"),
    ("mq", "send_batch"),
    ("mq", "try_send"),
    ("mq", "recv"),
    ("mq", "recv_timeout"),
    ("mq", "try_recv"),
    ("mq", "recv_batch"),
    ("mq", "try_recv_batch"),
    ("mq", "publish"),
    ("mq", "publish_batch"),
    ("mq", "encode_frame"),
    ("mq", "read_frame"),
    // Time-series ingest/query path.
    ("tsdb", "write"),
    ("tsdb", "write_line"),
    ("tsdb", "parse"),
    ("tsdb", "encode"),
    ("tsdb", "query"),
    ("tsdb", "to_snapshot"),
    ("tsdb", "from_snapshot"),
    ("tsdb", "downsample"),
    ("tsdb", "compute"),
    ("tsdb", "percentile_sorted"),
    // Self-telemetry registry: worker-side writes and the collector's
    // epoch-validated snapshot both run on hot threads.
    ("telemetry", "burst_begin"),
    ("telemetry", "burst_end"),
    ("telemetry", "counter_add"),
    ("telemetry", "gauge_store"),
    ("telemetry", "hist_record"),
    ("telemetry", "snapshot_into"),
    // Engine worker + detector loops (named fns, not spawn closures).
    ("pipeline", "dataplane_worker"),
    ("pipeline", "run_to_completion_worker"),
    ("pipeline", "detector_loop"),
];

/// Files where bare `+`/`-`/`*` is a panic source (wire-derived operands).
fn arith_surface(path: &str) -> bool {
    path.starts_with("crates/wire/src/") || path == "crates/flow/src/measurement.rs"
}

/// One panic-site finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired (`unwrap`, `expect`, `panic-macro`, `index`,
    /// `div`, `arith`, `panic-ok-empty`, `panic-ok-unused`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// `crate::fn` the site lives in.
    pub func: String,
    /// Trimmed source line.
    pub snippet: String,
    /// Call-chain witness: root → … → containing fn (`crate::fn` each).
    pub witness: Vec<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}:{}: [{}] in `{}`: {}",
            self.path, self.line, self.rule, self.func, self.snippet
        )?;
        write!(f, "    witness: {}", self.witness.join(" -> "))
    }
}

/// The full result of one `panic-check` run.
pub struct Analysis {
    /// Functions extracted across the scanned crates.
    pub fn_count: usize,
    /// Resolved intra-workspace call edges.
    pub edge_count: usize,
    /// Unannotated panic sites reachable from a root — these fail the run.
    pub violations: Vec<Finding>,
    /// Suppressed sites: (path, 1-based line, audited reason).
    pub audited: Vec<(String, usize, String)>,
    /// `panic-ok` audit failures (empty reason, unused annotation).
    pub annotation_errors: Vec<Finding>,
    /// Panic sites in functions no root reaches (reported, not fatal).
    pub unreachable_sites: usize,
    /// Per-crate (crate, fns, reachable fns, violations).
    pub per_crate: Vec<(String, usize, usize, usize)>,
}

/// CLI entry: `cargo xtask panic-check [--root DIR]`.
pub fn run(args: &[String]) -> ExitCode {
    let mut root = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(d) => root = Some(std::path::PathBuf::from(d)),
                None => {
                    eprintln!("panic-check: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("panic-check: unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(crate::lexer::workspace_root);
    match analyze(&root) {
        Ok(a) => report(&a),
        Err(e) => {
            eprintln!("panic-check: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Print the per-crate report and turn the analysis into an exit code.
fn report(a: &Analysis) -> ExitCode {
    println!(
        "panic-check: {} fns, {} call edges across {}",
        a.fn_count,
        a.edge_count,
        DATAPLANE_CRATES.join(", ")
    );
    for (name, fns, reachable, viols) in &a.per_crate {
        println!("  {name:<9} {fns:>4} fns  {reachable:>4} reachable  {viols:>3} violation(s)");
    }
    println!(
        "  audited panic-ok sites: {}; panic sites outside the reachable dataplane: {}",
        a.audited.len(),
        a.unreachable_sites
    );
    let total = a.violations.len() + a.annotation_errors.len();
    if total == 0 {
        println!("panic-check: clean");
        return ExitCode::SUCCESS;
    }
    for v in a.violations.iter().chain(&a.annotation_errors) {
        eprintln!("{v}");
    }
    eprintln!("panic-check: {total} violation(s)");
    ExitCode::FAILURE
}

// ---------------------------------------------------------------------------
// Source model
// ---------------------------------------------------------------------------

struct SourceFile {
    rel: String,
    crate_name: String,
    view: FileView,
    raw: Vec<String>,
}

/// Character stream of the comment/string-stripped code with a line map,
/// for scans that cross line boundaries (fn spans, impl headers, calls).
struct Flat {
    chars: Vec<char>,
    line_of: Vec<usize>,
}

fn flatten(view: &FileView) -> Flat {
    let mut chars = Vec::new();
    let mut line_of = Vec::new();
    for (ln, l) in view.code.iter().enumerate() {
        for c in l.chars() {
            chars.push(c);
            line_of.push(ln);
        }
        chars.push('\n');
        line_of.push(ln);
    }
    Flat { chars, line_of }
}

struct FnDef {
    file: usize,
    name: String,
    impl_type: Option<String>,
    is_pub: bool,
    start_line: usize,
    end_line: usize,
    body_start: usize,
    body_end: usize,
}

struct Call {
    name: String,
    qualifier: Option<String>,
}

/// Run the analyzer over `<root>/crates/{wire,nic,flow,mq,tsdb,pipeline}/src`.
pub fn analyze(root: &Path) -> Result<Analysis, String> {
    let mut files = Vec::new();
    for krate in DATAPLANE_CRATES {
        let src = root.join("crates").join(krate).join("src");
        let mut paths = Vec::new();
        collect_rs_files(&src, &mut paths);
        paths.sort();
        for path in paths {
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile {
                rel,
                crate_name: krate.to_string(),
                view: lex(&source),
                raw: source.lines().map(str::to_string).collect(),
            });
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no dataplane sources under {}/crates",
            root.display()
        ));
    }

    // --- extract fns (with impl context) per file ------------------------
    let flats: Vec<Flat> = files.iter().map(|f| flatten(&f.view)).collect();
    let mut fns: Vec<FnDef> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        let flat = &flats[fi];
        let impls = extract_impls(flat);
        for f in extract_fns(flat, &file.view, fi, &impls) {
            fns.push(f);
        }
    }

    // --- resolution indexes ---------------------------------------------
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut by_type: HashMap<(String, String), Vec<usize>> = HashMap::new();
    let mut impl_types: HashSet<&str> = HashSet::new();
    let mut by_module: HashMap<String, Vec<usize>> = HashMap::new();
    for (id, f) in fns.iter().enumerate() {
        by_name.entry(&f.name).or_default().push(id);
        if let Some(t) = &f.impl_type {
            impl_types.insert(t);
            by_type
                .entry((t.clone(), f.name.clone()))
                .or_default()
                .push(id);
        }
        let file = &files[f.file];
        if let Some(stem) = Path::new(&file.rel).file_stem().and_then(|s| s.to_str()) {
            if stem != "lib" && stem != "mod" {
                by_module.entry(stem.to_string()).or_default().push(id);
            }
        }
        by_module
            .entry(format!("ruru_{}", file.crate_name))
            .or_default()
            .push(id);
    }

    // --- call edges ------------------------------------------------------
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    let mut edge_count = 0usize;
    for (id, f) in fns.iter().enumerate() {
        let flat = &flats[f.file];
        let view = &files[f.file].view;
        let mut out: HashSet<usize> = HashSet::new();
        for call in extract_calls(flat, view, f.body_start, f.body_end) {
            for target in resolve(&call, f, &by_name, &by_type, &impl_types, &by_module) {
                if target != id {
                    out.insert(target);
                }
            }
        }
        let mut out: Vec<usize> = out.into_iter().collect();
        out.sort_unstable();
        edge_count += out.len();
        edges[id] = out;
    }

    // --- reachability (BFS with parent pointers for witnesses) ----------
    let mut parent: Vec<Option<usize>> = vec![None; fns.len()];
    let mut reachable = vec![false; fns.len()];
    let mut queue = VecDeque::new();
    for (id, f) in fns.iter().enumerate() {
        let krate = &files[f.file].crate_name;
        let rooted = ROOTS
            .iter()
            .any(|(c, n)| c == krate && ((*n == "*" && f.is_pub) || *n == f.name));
        if rooted {
            reachable[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for &next in &edges[id] {
            if !reachable[next] {
                reachable[next] = true;
                parent[next] = Some(id);
                queue.push_back(next);
            }
        }
    }
    let label = |id: usize| -> String {
        let f = &fns[id];
        format!("{}::{}", files[f.file].crate_name, f.name)
    };
    let witness = |id: usize| -> Vec<String> {
        let mut chain = vec![label(id)];
        let mut cur = id;
        while let Some(p) = parent[cur] {
            chain.push(label(p));
            cur = p;
        }
        chain.reverse();
        chain
    };

    // --- panic-site scan -------------------------------------------------
    // Innermost-fn attribution per file: fn ids sorted by span size.
    let mut fns_by_file: Vec<Vec<usize>> = vec![Vec::new(); files.len()];
    for (id, f) in fns.iter().enumerate() {
        fns_by_file[f.file].push(id);
    }
    let innermost = |file: usize, line: usize| -> Option<usize> {
        fns_by_file[file]
            .iter()
            .copied()
            .filter(|&id| fns[id].start_line <= line && line <= fns[id].end_line)
            .min_by_key(|&id| fns[id].end_line - fns[id].start_line)
    };

    let mut violations = Vec::new();
    let mut audited = Vec::new();
    let mut annotation_errors = Vec::new();
    let mut unreachable_sites = 0usize;
    let mut crate_viols: HashMap<&str, usize> = HashMap::new();
    let mut used_annotations: HashSet<(usize, usize)> = HashSet::new();

    for (fi, file) in files.iter().enumerate() {
        for (idx, line) in file.view.code.iter().enumerate() {
            if file.view.in_tests[idx] || line.trim_start().starts_with('#') {
                continue;
            }
            let mut rules: Vec<&'static str> = Vec::new();
            if line.contains(".unwrap()") {
                rules.push("unwrap");
            }
            if line.contains(".expect(") {
                rules.push("expect");
            }
            if has_panic_macro(line) {
                rules.push("panic-macro");
            }
            if has_panicking_index(line) {
                rules.push("index");
            }
            if has_unchecked_div(line) {
                rules.push("div");
            }
            if arith_surface(&file.rel) && has_unchecked_arith(line) {
                rules.push("arith");
            }
            if rules.is_empty() {
                continue;
            }
            let Some(owner) = innermost(fi, idx) else {
                continue; // const/static item: evaluated at compile time
            };
            // panic-ok suppression (covers every rule on the line).
            if let Some((ann_line, reason)) = annotation_above_at(&file.view, idx, "panic-ok:") {
                used_annotations.insert((fi, ann_line));
                if reason.is_empty() {
                    annotation_errors.push(Finding {
                        rule: "panic-ok-empty",
                        path: file.rel.clone(),
                        line: ann_line + 1,
                        func: label(owner),
                        snippet: snippet(file, ann_line),
                        witness: vec!["annotation audit".into()],
                    });
                } else {
                    audited.push((file.rel.clone(), idx + 1, reason));
                }
                continue;
            }
            if !reachable[owner] {
                unreachable_sites += rules.len();
                continue;
            }
            for rule in rules {
                *crate_viols.entry(crate_of(&file.rel)).or_default() += 1;
                violations.push(Finding {
                    rule,
                    path: file.rel.clone(),
                    line: idx + 1,
                    func: label(owner),
                    snippet: snippet(file, idx),
                    witness: witness(owner),
                });
            }
        }
    }

    // --- unused annotations ----------------------------------------------
    for (fi, file) in files.iter().enumerate() {
        for (idx, comment) in file.view.comments.iter().enumerate() {
            if file.view.in_tests[idx] || !comment.contains("panic-ok:") {
                continue;
            }
            if !used_annotations.contains(&(fi, idx)) {
                annotation_errors.push(Finding {
                    rule: "panic-ok-unused",
                    path: file.rel.clone(),
                    line: idx + 1,
                    func: "-".into(),
                    snippet: snippet(file, idx),
                    witness: vec!["annotation audit".into()],
                });
            }
        }
    }

    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    annotation_errors.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));

    let mut per_crate = Vec::new();
    for krate in DATAPLANE_CRATES {
        let ids: Vec<usize> = fns
            .iter()
            .enumerate()
            .filter(|(_, f)| files[f.file].crate_name == *krate)
            .map(|(id, _)| id)
            .collect();
        let reach = ids.iter().filter(|&&id| reachable[id]).count();
        per_crate.push((
            krate.to_string(),
            ids.len(),
            reach,
            crate_viols.get(krate).copied().unwrap_or(0),
        ));
    }

    Ok(Analysis {
        fn_count: fns.len(),
        edge_count,
        violations,
        audited,
        annotation_errors,
        unreachable_sites,
        per_crate,
    })
}

fn snippet(file: &SourceFile, idx: usize) -> String {
    file.raw.get(idx).map(|s| s.trim().to_string()).unwrap_or_default()
}

fn crate_of(rel: &str) -> &'static str {
    for krate in DATAPLANE_CRATES {
        if rel.starts_with(&format!("crates/{krate}/")) {
            return krate;
        }
    }
    "?"
}

// ---------------------------------------------------------------------------
// Extraction: impl blocks, fn spans, call sites
// ---------------------------------------------------------------------------

/// True when `chars[i..]` starts the word `w` with ident boundaries on both
/// sides.
fn word_at(chars: &[char], i: usize, w: &str) -> bool {
    if i > 0 && unicode_ident(chars[i - 1]) {
        return false;
    }
    let mut j = i;
    for wc in w.chars() {
        if chars.get(j) != Some(&wc) {
            return false;
        }
        j += 1;
    }
    !chars.get(j).copied().is_some_and(unicode_ident)
}

fn skip_ws(chars: &[char], mut i: usize) -> usize {
    while chars.get(i).copied().is_some_and(char::is_whitespace) {
        i += 1;
    }
    i
}

fn read_ident(chars: &[char], mut i: usize) -> (String, usize) {
    let mut s = String::new();
    while chars.get(i).copied().is_some_and(unicode_ident) {
        s.push(chars[i]);
        i += 1;
    }
    (s, i)
}

/// Skip a balanced `<…>` generic list starting at `i` (which must point at
/// `<`). Returns the index just past the closing `>`.
fn skip_angles(chars: &[char], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < chars.len() {
        match chars[i] {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            // `->` inside `Fn(..) -> T` bounds: the '>' belongs to the
            // arrow, not the generic list.
            '-' if chars.get(i + 1) == Some(&'>') => {
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Find the matching `}` for the `{` at `open`; returns its index.
fn match_brace(chars: &[char], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < chars.len() {
        match chars[i] {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    chars.len() - 1
}

/// `impl` blocks as (type name, span start char, span end char).
fn extract_impls(flat: &Flat) -> Vec<(String, usize, usize)> {
    let chars = &flat.chars;
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if !word_at(chars, i, "impl") {
            i += 1;
            continue;
        }
        let mut j = skip_ws(chars, i + 4);
        if chars.get(j) == Some(&'<') {
            j = skip_angles(chars, j);
        }
        // Collect the header text up to the body `{` (paren depth 0 —
        // where-clauses may contain `Fn(..)`).
        let mut header = String::new();
        let mut depth = 0i32;
        let mut k = j;
        while k < chars.len() {
            match chars[k] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => break,
                ';' if depth == 0 => break, // `impl Trait for T;` — not Rust, bail
                _ => {}
            }
            header.push(chars[k]);
            k += 1;
        }
        if chars.get(k) == Some(&'{') {
            let end = match_brace(chars, k);
            if let Some(name) = parse_impl_type(&header) {
                out.push((name, i, end));
            }
            // Do not jump past the block: nested impls are rare but legal.
        }
        i = k + 1;
    }
    out
}

/// Pull the implemented type's name out of an impl header (the text between
/// `impl<…>` and `{`): `Display for Packet<'a>` → `Packet`.
fn parse_impl_type(header: &str) -> Option<String> {
    let after_for = match header.find(" for ") {
        Some(at) => &header[at + 5..],
        None => header,
    };
    let before_where = match after_for.find(" where") {
        Some(at) => &after_for[..at],
        None => after_for,
    };
    let mut s = before_where.trim();
    for prefix in ["&", "mut ", "dyn "] {
        s = s.strip_prefix(prefix).unwrap_or(s).trim_start();
    }
    let head = s.split('<').next()?;
    let name = head.rsplit("::").next()?.trim();
    if name.is_empty() || !name.chars().all(unicode_ident) {
        return None;
    }
    Some(name.to_string())
}

/// Every named fn in the file with its body span; test-region fns skipped.
fn extract_fns(
    flat: &Flat,
    view: &FileView,
    file: usize,
    impls: &[(String, usize, usize)],
) -> Vec<FnDef> {
    let chars = &flat.chars;
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if !word_at(chars, i, "fn") {
            i += 1;
            continue;
        }
        let j = skip_ws(chars, i + 2);
        let (name, after_name) = read_ident(chars, j);
        if name.is_empty() {
            i = j + 1; // `fn(` pointer type
            continue;
        }
        // Find the body `{` at paren/bracket depth 0, or `;` (no body).
        let mut depth = 0i32;
        let mut k = after_name;
        let mut body = None;
        while k < chars.len() {
            match chars[k] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => {
                    body = Some(k);
                    break;
                }
                ';' if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = body else {
            i = k + 1;
            continue;
        };
        let end = match_brace(chars, open);
        let start_line = flat.line_of[i];
        if view.in_tests[start_line] {
            i = after_name;
            continue;
        }
        let impl_type = impls
            .iter()
            .filter(|(_, s, e)| *s <= i && i <= *e)
            .min_by_key(|(_, s, e)| e - s)
            .map(|(t, _, _)| t.clone());
        out.push(FnDef {
            file,
            name,
            impl_type,
            is_pub: is_pub_at(chars, i),
            start_line,
            end_line: flat.line_of[end],
            body_start: open,
            body_end: end,
        });
        i = after_name;
    }
    out
}

/// True when the `fn` keyword at `fn_kw` carries a `pub` (or `pub(...)`)
/// visibility, looking back through `const`/`unsafe`/`async`/`extern`.
fn is_pub_at(chars: &[char], fn_kw: usize) -> bool {
    let mut i = fn_kw;
    while i > 0 && chars[i - 1].is_whitespace() {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    if chars[i - 1] == ')' {
        // `pub(crate) fn` / `pub(super) fn`
        let mut j = i - 1;
        while j > 0 && chars[j] != '(' {
            j -= 1;
        }
        while j > 0 && chars[j - 1].is_whitespace() {
            j -= 1;
        }
        return j > 0 && tok_ending_at(chars, j - 1) == "pub";
    }
    if unicode_ident(chars[i - 1]) {
        let tok = tok_ending_at(chars, i - 1);
        if tok == "pub" {
            return true;
        }
        if matches!(tok.as_str(), "const" | "unsafe" | "async" | "extern") {
            return is_pub_at(chars, i - tok.len());
        }
    }
    false
}

const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "in", "as", "let", "else", "fn",
    "unsafe", "use", "mod", "pub", "where", "break", "continue", "yield", "await",
];

/// Scan a fn body for call sites `name(`, `qual::name(`, `.name(`,
/// `name::<T>(`; macros (`name!`) are excluded — panic macros are
/// classified separately and other macro bodies are a documented blind
/// spot.
fn extract_calls(flat: &Flat, view: &FileView, body_start: usize, body_end: usize) -> Vec<Call> {
    let chars = &flat.chars;
    let mut out = Vec::new();
    let mut i = body_start;
    while i < body_end {
        let c = chars[i];
        if !unicode_ident(c) || (i > 0 && unicode_ident(chars[i - 1])) {
            i += 1;
            continue;
        }
        // Lifetime `'a` is not an ident start.
        if i > 0 && chars[i - 1] == '\'' {
            i += 1;
            continue;
        }
        let (name, after) = read_ident(chars, i);
        if view.in_tests[flat.line_of[i]] || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            i = after;
            continue;
        }
        let mut j = skip_ws(chars, after);
        // Turbofish: `name::<T>(`.
        if chars.get(j) == Some(&':') && chars.get(j + 1) == Some(&':') {
            let k = skip_ws(chars, j + 2);
            if chars.get(k) == Some(&'<') {
                j = skip_ws(chars, skip_angles(chars, k));
            } else {
                i = after;
                continue; // path segment, not a call of `name`
            }
        }
        if chars.get(j) == Some(&'!') {
            i = after;
            continue; // macro
        }
        if chars.get(j) != Some(&'(') || CALL_KEYWORDS.contains(&name.as_str()) {
            i = after;
            continue;
        }
        // Qualifier: `qual::name(` — read the segment before a `::`.
        let mut qualifier = None;
        if i >= 2 && chars[i - 1] == ':' && chars[i - 2] == ':' {
            let mut q_end = i - 2;
            while q_end > 0 && chars[q_end - 1].is_whitespace() {
                q_end -= 1;
            }
            if q_end > 0 && chars[q_end - 1] == '>' {
                qualifier = Some(String::new()); // generic qualifier: unknown
            } else {
                let mut q_start = q_end;
                while q_start > 0 && unicode_ident(chars[q_start - 1]) {
                    q_start -= 1;
                }
                if q_start < q_end {
                    qualifier = Some(chars[q_start..q_end].iter().collect());
                }
            }
        }
        out.push(Call { name, qualifier });
        i = after;
    }
    out
}

/// Resolve a call to candidate fn ids. Qualified calls narrow to the
/// matching impl type or module; unknown qualifiers (std/external types)
/// are leaves; unqualified calls over-approximate to every fn of that
/// name in the scanned crates.
fn resolve(
    call: &Call,
    caller: &FnDef,
    by_name: &HashMap<&str, Vec<usize>>,
    by_type: &HashMap<(String, String), Vec<usize>>,
    impl_types: &HashSet<&str>,
    by_module: &HashMap<String, Vec<usize>>,
) -> Vec<usize> {
    match &call.qualifier {
        None => by_name.get(call.name.as_str()).cloned().unwrap_or_default(),
        Some(q) => {
            let q = if q == "Self" {
                match &caller.impl_type {
                    Some(t) => t.clone(),
                    None => return Vec::new(),
                }
            } else {
                q.clone()
            };
            if impl_types.contains(q.as_str()) {
                by_type
                    .get(&(q, call.name.clone()))
                    .cloned()
                    .unwrap_or_default()
            } else if let Some(in_module) = by_module.get(&q) {
                let named = by_name.get(call.name.as_str()).cloned().unwrap_or_default();
                named
                    .into_iter()
                    .filter(|id| in_module.contains(id))
                    .collect()
            } else {
                Vec::new() // external type/module: leaf
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-line panic-source classification
// ---------------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &[
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

fn has_panic_macro(line: &str) -> bool {
    PANIC_MACROS.iter().any(|m| {
        line.match_indices(m).any(|(pos, _)| {
            // Word boundary on the left excludes `debug_assert!`.
            !line[..pos].chars().next_back().is_some_and(unicode_ident)
        })
    })
}

/// `x[i]` where `x` is a value (prev char ident/`)`/`]`). `x[..]` is
/// infallible and exempt; `#[attr]` lines are filtered by the caller.
fn has_panicking_index(line: &str) -> bool {
    let b: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < b.len() {
        if b[i] == '[' {
            let prev = b[..i].iter().rev().find(|c| !c.is_whitespace());
            let mut indexable = matches!(prev, Some(&c) if unicode_ident(c) || c == ')' || c == ']');
            if indexable && matches!(prev, Some(&c) if unicode_ident(c)) {
                // A keyword before `[` introduces a slice pattern or type
                // (`let [a, ..] =`, `&mut [u8]`), not an indexing expression.
                let mut k = i;
                while k > 0 && b[k - 1].is_whitespace() {
                    k -= 1;
                }
                let start = (0..k).rev().take_while(|&p| unicode_ident(b[p])).last();
                if let Some(s) = start {
                    let word: String = b[s..k].iter().collect();
                    if matches!(
                        word.as_str(),
                        "let" | "mut" | "ref" | "in" | "as" | "dyn" | "impl" | "const"
                            | "static" | "return" | "else" | "box" | "move" | "where"
                    ) || (s > 0 && b[s - 1] == '\'')
                    {
                        // Keyword before `[` introduces a slice pattern or
                        // type; a lifetime (`&'a [u8]`) precedes a type.
                        indexable = false;
                    }
                }
            }
            if indexable {
                let mut depth = 1i32;
                let mut j = i + 1;
                let mut content = String::new();
                while j < b.len() && depth > 0 {
                    match b[j] {
                        '[' => depth += 1,
                        ']' => depth -= 1,
                        _ => {}
                    }
                    if depth > 0 {
                        content.push(b[j]);
                    }
                    j += 1;
                }
                let t = content.trim();
                if !t.is_empty() && t != ".." {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}

/// Integer `/` or `%` whose divisor is not a numeric literal or ALL_CAPS
/// constant (compile-time-checked). Conservative: float division is
/// flagged too and needs a `panic-ok` annotation or a guard rewrite.
fn has_unchecked_div(line: &str) -> bool {
    let b: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c != '/' && c != '%' {
            i += 1;
            continue;
        }
        // Binary operator only: something divisible must precede it.
        let prev = b[..i].iter().rev().find(|c| !c.is_whitespace());
        if !matches!(prev, Some(&p) if unicode_ident(p) || p == ')' || p == ']') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if b.get(j) == Some(&'=') {
            j += 1; // compound `/=` `%=`
        }
        j = skip_ws_chars(&b, j);
        if j >= b.len() {
            return true; // divisor continues on the next line: conservative
        }
        if b[j].is_ascii_digit() {
            i = j;
            continue; // literal divisor: nonzero or a compile error
        }
        let (tok, _) = read_tok(&b, j);
        if !tok.is_empty()
            && tok
                .chars()
                .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
        {
            i = j + tok.len();
            continue; // ALL_CAPS constant: const-evaluated
        }
        return true;
    }
    false
}

/// Bare `+` / `-` / `*` on the arithmetic surface, outside signature-ish
/// lines. Both-literal operands are const-folded and exempt.
fn has_unchecked_arith(line: &str) -> bool {
    for kw in ["fn ", "impl ", "where ", "dyn ", "struct ", "enum ", "trait "] {
        if line.contains(kw) {
            return false;
        }
    }
    let b: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c != '+' && c != '-' && c != '*' {
            i += 1;
            continue;
        }
        if c == '-' && b.get(i + 1) == Some(&'>') {
            i += 2; // `->`
            continue;
        }
        let mut pi = i;
        let mut prev = None;
        while pi > 0 {
            pi -= 1;
            if !b[pi].is_whitespace() {
                prev = Some((b[pi], pi));
                break;
            }
        }
        let Some((p, p_at)) = prev else {
            i += 1;
            continue;
        };
        if !(unicode_ident(p) || p == ')' || p == ']') {
            i += 1;
            continue; // unary minus, deref, pattern, etc.
        }
        let prev_tok = tok_ending_at(&b, p_at);
        if prev_tok == "as" {
            i += 1;
            continue; // `x as *const u8`
        }
        // Lifetime bound `'a + 'b`.
        if p_at >= prev_tok.len() && prev_tok.len() > 0 {
            let before = p_at + 1 - prev_tok.len();
            if before > 0 && b[before - 1] == '\'' {
                i += 1;
                continue;
            }
        }
        let mut j = i + 1;
        if b.get(j) == Some(&'=') {
            j += 1; // compound `+=` `-=` `*=`
        }
        j = skip_ws_chars(&b, j);
        let (next_tok, _) = read_tok(&b, j);
        if c == '*' && (next_tok == "const" || next_tok == "mut") {
            i += 1;
            continue; // raw pointer type
        }
        if (is_numeric_tok(&prev_tok) || is_const_tok(&prev_tok))
            && (is_numeric_tok(&next_tok) || is_const_tok(&next_tok))
        {
            i = j;
            continue; // const-folded literal/constant arithmetic
        }
        return true;
    }
    false
}

fn skip_ws_chars(b: &[char], mut i: usize) -> usize {
    while i < b.len() && b[i].is_whitespace() {
        i += 1;
    }
    i
}

fn read_tok(b: &[char], mut i: usize) -> (String, usize) {
    let mut s = String::new();
    while i < b.len() && unicode_ident(b[i]) {
        s.push(b[i]);
        i += 1;
    }
    (s, i)
}

fn tok_ending_at(b: &[char], end: usize) -> String {
    if !unicode_ident(b[end]) {
        return String::new();
    }
    let mut start = end;
    while start > 0 && unicode_ident(b[start - 1]) {
        start -= 1;
    }
    b[start..=end].iter().collect()
}

fn is_numeric_tok(t: &str) -> bool {
    !t.is_empty() && t.chars().all(|c| c.is_ascii_digit() || c == '_')
}

/// An `ALL_CAPS` identifier: a named constant, whose arithmetic the compiler
/// const-folds and overflow-checks at build time.
fn is_const_tok(t: &str) -> bool {
    t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && t.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Build a throwaway workspace fixture: `files` are (rel path, source).
    fn fixture(files: &[(&str, &str)]) -> std::path::PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "ruru-panic-check-{}-{n}",
            std::process::id()
        ));
        for (rel, content) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().expect("fixture parent")).expect("mkdir");
            std::fs::write(path, content).expect("write fixture");
        }
        root
    }

    fn run_on(files: &[(&str, &str)]) -> Analysis {
        let root = fixture(files);
        let a = analyze(&root).expect("analyze fixture");
        std::fs::remove_dir_all(&root).ok();
        a
    }

    fn rules(a: &Analysis) -> Vec<&'static str> {
        a.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unwrap_in_rooted_wire_fn_is_a_violation() {
        let a = run_on(&[(
            "crates/wire/src/lib.rs",
            "pub fn parse(d: &[u8]) -> u8 { d.first().copied().ok_or(0u8).unwrap() }\n",
        )]);
        assert_eq!(rules(&a), ["unwrap"]);
        assert_eq!(a.violations[0].witness, ["wire::parse"]);
        assert_eq!(a.violations[0].func, "wire::parse");
    }

    #[test]
    fn call_chain_witness_reaches_helper() {
        let a = run_on(&[(
            "crates/flow/src/lib.rs",
            "pub fn classify(d: &[u8]) -> u8 { helper(d) }\n\
             fn helper(d: &[u8]) -> u8 { d.iter().next().copied().expect(\"x\") }\n",
        )]);
        assert_eq!(rules(&a), ["expect"]);
        assert_eq!(a.violations[0].witness, ["flow::classify", "flow::helper"]);
    }

    #[test]
    fn unreachable_fn_sites_reported_not_fatal() {
        let a = run_on(&[(
            "crates/flow/src/lib.rs",
            "fn debug_dump(d: &[u8]) -> u8 { d.first().copied().unwrap() }\n",
        )]);
        assert!(a.violations.is_empty());
        assert_eq!(a.unreachable_sites, 1);
    }

    #[test]
    fn panic_ok_annotation_suppresses_and_is_audited() {
        let a = run_on(&[(
            "crates/wire/src/lib.rs",
            "pub fn parse(d: &[u8]) -> u8 {\n\
             \x20   // panic-ok: length validated by new_checked above\n\
             \x20   d.first().copied().unwrap()\n\
             }\n",
        )]);
        assert!(a.violations.is_empty());
        assert!(a.annotation_errors.is_empty());
        assert_eq!(a.audited.len(), 1);
        assert_eq!(a.audited[0].2, "length validated by new_checked above");
    }

    #[test]
    fn empty_panic_ok_reason_is_a_violation() {
        let a = run_on(&[(
            "crates/wire/src/lib.rs",
            "pub fn parse(d: &[u8]) -> u8 {\n\
             \x20   // panic-ok:\n\
             \x20   d.first().copied().unwrap()\n\
             }\n",
        )]);
        assert_eq!(
            a.annotation_errors.iter().map(|v| v.rule).collect::<Vec<_>>(),
            ["panic-ok-empty"]
        );
    }

    #[test]
    fn unused_panic_ok_annotation_is_a_violation() {
        let a = run_on(&[(
            "crates/wire/src/lib.rs",
            "// panic-ok: stale claim about code that no longer panics\n\
             pub fn parse(d: &[u8]) -> u8 { d.first().copied().unwrap_or(0) }\n",
        )]);
        assert_eq!(
            a.annotation_errors.iter().map(|v| v.rule).collect::<Vec<_>>(),
            ["panic-ok-unused"]
        );
    }

    #[test]
    fn panic_macros_flagged_but_debug_assert_exempt() {
        let a = run_on(&[(
            "crates/wire/src/lib.rs",
            "pub fn parse(len: usize) {\n\
             \x20   debug_assert!(len > 0);\n\
             \x20   assert!(len < 65536);\n\
             }\n",
        )]);
        assert_eq!(rules(&a), ["panic-macro"]);
        assert_eq!(a.violations[0].line, 3);
    }

    #[test]
    fn indexing_flagged_full_range_exempt() {
        let a = run_on(&[(
            "crates/wire/src/lib.rs",
            "pub fn parse(d: &[u8]) -> u8 {\n\
             \x20   let all = &d[..];\n\
             \x20   all[0]\n\
             }\n",
        )]);
        assert_eq!(rules(&a), ["index"]);
        assert_eq!(a.violations[0].line, 3);
    }

    #[test]
    fn division_by_non_literal_flagged() {
        let a = run_on(&[(
            "crates/tsdb/src/lib.rs",
            "pub fn compute(total: u64, n: u64) -> u64 {\n\
             \x20   let half = total / 2;\n\
             \x20   half / n\n\
             }\n",
        )]);
        assert_eq!(rules(&a), ["div"]);
        assert_eq!(a.violations[0].line, 3);
    }

    #[test]
    fn arith_flagged_on_wire_surface_only() {
        let body = "pub fn parse(a: u16, b: u16) -> u16 {\n\
                    \x20   let c = a.wrapping_add(b);\n\
                    \x20   c + b\n\
                    }\n";
        let a = run_on(&[("crates/wire/src/lib.rs", body)]);
        assert_eq!(rules(&a), ["arith"]);
        assert_eq!(a.violations[0].line, 3);
        // The same code outside the arithmetic surface is not flagged
        // (reachable via the tsdb `parse` root, so it is scanned).
        let a = run_on(&[("crates/tsdb/src/lib.rs", body)]);
        assert!(rules(&a).is_empty());
    }

    #[test]
    fn test_regions_exempt() {
        let a = run_on(&[(
            "crates/wire/src/lib.rs",
            "pub fn parse(d: &[u8]) -> u8 { d.first().copied().unwrap_or(0) }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t(d: &[u8]) -> u8 { d.first().copied().unwrap() }\n\
             }\n",
        )]);
        assert!(rules(&a).is_empty());
        assert_eq!(a.unreachable_sites, 0);
    }

    #[test]
    fn qualified_constructor_does_not_over_approximate() {
        // `Backoff::new` in a rooted fn must NOT make `Table::new` (with
        // its assert) reachable; name-based resolution is narrowed by the
        // `Type::` qualifier.
        let a = run_on(&[
            (
                "crates/nic/src/backoff.rs",
                "pub struct Backoff;\n\
                 impl Backoff {\n\
                 \x20   pub fn new() -> Self { Backoff }\n\
                 }\n",
            ),
            (
                "crates/nic/src/rx.rs",
                "use crate::backoff::Backoff;\n\
                 pub fn rx_burst() { let _b = Backoff::new(); }\n",
            ),
            (
                "crates/flow/src/table.rs",
                "pub struct Table;\n\
                 impl Table {\n\
                 \x20   pub fn new(capacity: usize) -> Self { assert!(capacity > 0); Table }\n\
                 }\n",
            ),
        ]);
        assert!(rules(&a).is_empty(), "got {:?}", a.violations);
        assert_eq!(a.unreachable_sites, 1, "Table::new assert stays unreachable");
    }

    #[test]
    fn seeded_unwrap_in_parser_fails_with_witness() {
        // The acceptance-criteria scenario: an unwrap seeded into a parser
        // helper reachable from a root is caught and carries the chain.
        let a = run_on(&[(
            "crates/wire/src/tcp.rs",
            "pub fn parse(d: &[u8]) -> u16 { field(d) }\n\
             fn field(d: &[u8]) -> u16 {\n\
             \x20   let hi = d.get(0).copied().unwrap();\n\
             \x20   u16::from(hi)\n\
             }\n",
        )]);
        assert_eq!(rules(&a), ["unwrap"]);
        let w = &a.violations[0].witness;
        assert_eq!(w.first().map(String::as_str), Some("wire::parse"));
        assert_eq!(w.last().map(String::as_str), Some("wire::field"));
    }

    #[test]
    fn impl_type_parsed_through_trait_impls() {
        let flat = flatten(&lex(
            "impl<'a> Iterator for OptionsIter<'a> {\n    fn next(&mut self) {}\n}\n",
        ));
        let impls = extract_impls(&flat);
        assert_eq!(impls.len(), 1);
        assert_eq!(impls[0].0, "OptionsIter");
    }

    #[test]
    fn self_qualifier_resolves_within_impl() {
        let a = run_on(&[(
            "crates/mq/src/chan.rs",
            "pub struct Chan;\n\
             impl Chan {\n\
             \x20   pub fn send(&self) { Self::slot(); }\n\
             \x20   fn slot() { panic!(\"full\"); }\n\
             }\n",
        )]);
        assert_eq!(rules(&a), ["panic-macro"]);
        assert_eq!(a.violations[0].witness, ["mq::send", "mq::slot"]);
    }
}
