//! Shared whole-workspace call-graph machinery for the static analyzers.
//!
//! Both `cargo xtask panic-check` (panic reachability, DESIGN.md §10) and
//! `cargo xtask hotpath-check` (allocation reachability + lock discipline,
//! DESIGN.md §14) need the same core: parse every hot-crate source with the
//! hand-rolled lexer, extract functions with spans and enclosing `impl`
//! types, build an intra-workspace call graph by name (qualified calls
//! `Type::fn` resolve only to that type's impl; unqualified calls
//! over-approximate to every same-named function), walk reachability from a
//! root set with parent pointers for call-chain witnesses, and audit
//! line-annotation suppressions (`panic-ok:` / `alloc-ok:` / `lock-ok:`)
//! for empty reasons and stale annotations that no longer suppress
//! anything. That core lives here; the analyzers keep only their
//! classifiers, root sets, and reporting.
//!
//! Known soundness limits (documented in DESIGN.md §10/§14): macro-expanded
//! code is invisible; trait-object and closure dispatch produce no edges;
//! calls qualified with external types (`HashMap::get`) are leaves;
//! multi-line expressions are classified line-by-line.

use crate::lexer::{collect_rs_files, lex, unicode_ident, FileView};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::Path;

/// One source file of a scanned crate.
pub struct SourceFile {
    /// Workspace-relative path (`crates/<name>/src/...`).
    pub rel: String,
    /// The crate the file belongs to (directory name under `crates/`).
    pub crate_name: String,
    /// Lexed per-line view (comments/strings blanked, test regions marked).
    pub view: FileView,
    /// The raw source lines, for report snippets.
    pub raw: Vec<String>,
}

/// Character stream of the comment/string-stripped code with a line map,
/// for scans that cross line boundaries (fn spans, impl headers, calls).
pub struct Flat {
    pub chars: Vec<char>,
    pub line_of: Vec<usize>,
}

fn flatten(view: &FileView) -> Flat {
    let mut chars = Vec::new();
    let mut line_of = Vec::new();
    for (ln, l) in view.code.iter().enumerate() {
        for c in l.chars() {
            chars.push(c);
            line_of.push(ln);
        }
        chars.push('\n');
        line_of.push(ln);
    }
    Flat { chars, line_of }
}

/// A named function with its span and enclosing `impl` type.
pub struct FnDef {
    /// Index into [`Workspace::files`].
    pub file: usize,
    pub name: String,
    /// The `impl` type the fn is defined on, if any.
    pub impl_type: Option<String>,
    /// Carries a `pub` (or `pub(...)`) visibility.
    pub is_pub: bool,
    /// 0-based line span of the whole item.
    pub start_line: usize,
    pub end_line: usize,
    /// Char span (into the file's [`Flat`]) of the `{ ... }` body.
    pub body_start: usize,
    pub body_end: usize,
}

/// One call site inside a fn body.
pub struct Call {
    pub name: String,
    /// `qual::name(...)` qualifier; `Some("")` for an unknown generic
    /// qualifier (`T::<..>::f`), `None` for unqualified / method calls.
    pub qualifier: Option<String>,
    /// `.name(...)` method-call form: the receiver's type is unknown, so
    /// name-based resolution over-approximates. Analyzers that need
    /// precision (lock discipline) drop method calls resolving to more
    /// than one candidate; reachability keeps them (conservative).
    pub is_method: bool,
    /// 0-based line the call starts on.
    pub line: usize,
}

/// A finding reported by an analyzer: a rule hit with a call-chain witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// `crate::fn` the site lives in.
    pub func: String,
    /// Trimmed source line.
    pub snippet: String,
    /// Call-chain witness (`crate::fn` each), root first.
    pub witness: Vec<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}:{}: [{}] in `{}`: {}",
            self.path, self.line, self.rule, self.func, self.snippet
        )?;
        write!(f, "    witness: {}", self.witness.join(" -> "))
    }
}

/// Reachability from a root set, with parent pointers for witnesses.
pub struct Reach {
    pub reachable: Vec<bool>,
    parent: Vec<Option<usize>>,
}

impl Reach {
    /// Call chain root → … → `id` (inclusive), as `crate::fn` labels.
    pub fn witness(&self, ws: &Workspace, id: usize) -> Vec<String> {
        let mut chain = vec![ws.label(id)];
        let mut cur = id;
        while let Some(p) = self.parent[cur] {
            chain.push(ws.label(p));
            cur = p;
        }
        chain.reverse();
        chain
    }
}

/// The parsed workspace: files, fns, and the resolved call graph.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub flats: Vec<Flat>,
    pub fns: Vec<FnDef>,
    /// Outgoing call edges per fn (sorted, deduped).
    pub edges: Vec<Vec<usize>>,
    pub edge_count: usize,
    /// Extracted call sites per fn (same order the body yields them).
    pub calls: Vec<Vec<Call>>,
    fns_by_file: Vec<Vec<usize>>,
    by_name: HashMap<String, Vec<usize>>,
    by_type: HashMap<(String, String), Vec<usize>>,
    impl_types: HashSet<String>,
    by_module: HashMap<String, Vec<usize>>,
}

impl Workspace {
    /// Parse `<root>/crates/<crate>/src` for each named crate and build the
    /// call graph.
    pub fn load(root: &Path, crates: &[&str]) -> Result<Workspace, String> {
        let mut files = Vec::new();
        for krate in crates {
            let src = root.join("crates").join(krate).join("src");
            let mut paths = Vec::new();
            collect_rs_files(&src, &mut paths);
            paths.sort();
            for path in paths {
                let source = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push(SourceFile {
                    rel,
                    crate_name: krate.to_string(),
                    view: lex(&source),
                    raw: source.lines().map(str::to_string).collect(),
                });
            }
        }
        if files.is_empty() {
            return Err(format!("no sources under {}/crates", root.display()));
        }

        // --- extract fns (with impl context) per file --------------------
        let flats: Vec<Flat> = files.iter().map(|f| flatten(&f.view)).collect();
        let mut fns: Vec<FnDef> = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            let flat = &flats[fi];
            let impls = extract_impls(flat);
            for f in extract_fns(flat, &file.view, fi, &impls) {
                fns.push(f);
            }
        }

        // --- resolution indexes ------------------------------------------
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut by_type: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut impl_types: HashSet<String> = HashSet::new();
        let mut by_module: HashMap<String, Vec<usize>> = HashMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(id);
            if let Some(t) = &f.impl_type {
                impl_types.insert(t.clone());
                by_type
                    .entry((t.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
            }
            let file = &files[f.file];
            if let Some(stem) = Path::new(&file.rel).file_stem().and_then(|s| s.to_str()) {
                if stem != "lib" && stem != "mod" {
                    by_module.entry(stem.to_string()).or_default().push(id);
                }
            }
            by_module
                .entry(format!("ruru_{}", file.crate_name))
                .or_default()
                .push(id);
        }

        let mut fns_by_file: Vec<Vec<usize>> = vec![Vec::new(); files.len()];
        for (id, f) in fns.iter().enumerate() {
            fns_by_file[f.file].push(id);
        }

        let mut ws = Workspace {
            files,
            flats,
            fns,
            edges: Vec::new(),
            edge_count: 0,
            calls: Vec::new(),
            fns_by_file,
            by_name,
            by_type,
            impl_types,
            by_module,
        };

        // --- call sites and edges ----------------------------------------
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); ws.fns.len()];
        let mut calls: Vec<Vec<Call>> = Vec::new();
        let mut edge_count = 0usize;
        for (id, f) in ws.fns.iter().enumerate() {
            let flat = &ws.flats[f.file];
            let view = &ws.files[f.file].view;
            let sites = extract_calls(flat, view, f.body_start, f.body_end);
            let mut out: HashSet<usize> = HashSet::new();
            for call in &sites {
                for target in ws.resolve(call, f) {
                    if target != id {
                        out.insert(target);
                    }
                }
            }
            let mut out: Vec<usize> = out.into_iter().collect();
            out.sort_unstable();
            edge_count += out.len();
            edges[id] = out;
            calls.push(sites);
        }
        ws.edges = edges;
        ws.edge_count = edge_count;
        ws.calls = calls;
        Ok(ws)
    }

    /// `crate::fn` display label.
    pub fn label(&self, id: usize) -> String {
        let f = &self.fns[id];
        format!("{}::{}", self.files[f.file].crate_name, f.name)
    }

    /// Resolve one call site from inside `caller` to candidate fn ids.
    /// Qualified calls narrow to the matching impl type or module; unknown
    /// qualifiers (std/external types) are leaves; unqualified calls
    /// over-approximate to every fn of that name in the scanned crates.
    pub fn resolve(&self, call: &Call, caller: &FnDef) -> Vec<usize> {
        match &call.qualifier {
            None => self
                .by_name
                .get(call.name.as_str())
                .cloned()
                .unwrap_or_default(),
            Some(q) => {
                let q = if q == "Self" {
                    match &caller.impl_type {
                        Some(t) => t.clone(),
                        None => return Vec::new(),
                    }
                } else {
                    q.clone()
                };
                if self.impl_types.contains(q.as_str()) {
                    self.by_type
                        .get(&(q, call.name.clone()))
                        .cloned()
                        .unwrap_or_default()
                } else if let Some(in_module) = self.by_module.get(&q) {
                    let named = self
                        .by_name
                        .get(call.name.as_str())
                        .cloned()
                        .unwrap_or_default();
                    named
                        .into_iter()
                        .filter(|id| in_module.contains(id))
                        .collect()
                } else {
                    Vec::new() // external type/module: leaf
                }
            }
        }
    }

    /// True when any workspace fn is named `name` — used by classifiers to
    /// delegate method-call patterns (`.push(`) to the call graph when a
    /// same-named workspace fn exists (its own body gets scanned instead).
    pub fn has_fn_named(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Does `(crate, spec)` root this fn? `spec` is `"*"` (every pub fn in
    /// the crate), `"name"`, or `"Type::name"` (narrowed to one impl).
    fn is_root(&self, id: usize, krate: &str, spec: &str) -> bool {
        let f = &self.fns[id];
        if self.files[f.file].crate_name != krate {
            return false;
        }
        if spec == "*" {
            return f.is_pub;
        }
        match spec.split_once("::") {
            Some((ty, name)) => f.impl_type.as_deref() == Some(ty) && f.name == name,
            None => f.name == spec,
        }
    }

    /// BFS reachability from `(crate, spec)` roots, with parent pointers.
    pub fn reach(&self, roots: &[(&str, &str)]) -> Reach {
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut reachable = vec![false; self.fns.len()];
        let mut queue = VecDeque::new();
        for (id, seen) in reachable.iter_mut().enumerate() {
            if roots.iter().any(|(c, n)| self.is_root(id, c, n)) {
                *seen = true;
                queue.push_back(id);
            }
        }
        while let Some(id) = queue.pop_front() {
            for &next in &self.edges[id] {
                if !reachable[next] {
                    reachable[next] = true;
                    parent[next] = Some(id);
                    queue.push_back(next);
                }
            }
        }
        Reach { reachable, parent }
    }

    /// Propagate a per-fn property from callees up to callers (fixed point
    /// over reverse edges) using a caller-supplied edge set — usually
    /// [`Workspace::edges`] itself, or a precision-filtered subset of it.
    /// `marked[id]` starts from `seed` and becomes true when any callee is
    /// marked. Returns the mark vector and, for propagated marks, the
    /// callee that caused them (for witnesses).
    pub fn propagate_up_edges(
        &self,
        edges: &[Vec<usize>],
        seed: &[bool],
    ) -> (Vec<bool>, Vec<Option<usize>>) {
        let mut marked: Vec<bool> = seed.to_vec();
        let mut because: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.fns.len()];
        for (id, outs) in edges.iter().enumerate() {
            for &out in outs {
                rev[out].push(id);
            }
        }
        let mut queue: VecDeque<usize> = (0..self.fns.len()).filter(|&i| marked[i]).collect();
        while let Some(id) = queue.pop_front() {
            for &caller in &rev[id] {
                if !marked[caller] {
                    marked[caller] = true;
                    because[caller] = Some(id);
                    queue.push_back(caller);
                }
            }
        }
        (marked, because)
    }

    /// Chain `id` → … → seeded fn, following `because` pointers from
    /// [`Workspace::propagate_up_edges`].
    pub fn because_chain(&self, because: &[Option<usize>], id: usize) -> Vec<String> {
        let mut chain = vec![self.label(id)];
        let mut cur = id;
        while let Some(b) = because[cur] {
            chain.push(self.label(b));
            cur = b;
        }
        chain
    }

    /// The innermost fn whose span contains `(file, line)` — attribution
    /// for sites inside nested fns.
    pub fn innermost_fn(&self, file: usize, line: usize) -> Option<usize> {
        self.fns_by_file[file]
            .iter()
            .copied()
            .filter(|&id| self.fns[id].start_line <= line && line <= self.fns[id].end_line)
            .min_by_key(|&id| self.fns[id].end_line - self.fns[id].start_line)
    }

    /// Trimmed raw source line for reports.
    pub fn snippet(&self, file: usize, line: usize) -> String {
        self.files[file]
            .raw
            .get(line)
            .map(|s| s.trim().to_string())
            .unwrap_or_default()
    }
}

// ---------------------------------------------------------------------------
// Machine-readable output (`--json`)
// ---------------------------------------------------------------------------

/// Minimal JSON string escape (quotes, backslashes, control chars) — the
/// xtask crate is dependency-free by design, so no serde.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One finding as a JSON object: rule, file:line, owning fn, snippet, and
/// the call-chain witness (root first).
pub fn finding_json(f: &Finding) -> String {
    let witness: Vec<String> = f
        .witness
        .iter()
        .map(|w| format!("\"{}\"", json_escape(w)))
        .collect();
    format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"func\":\"{}\",\"snippet\":\"{}\",\"witness\":[{}]}}",
        json_escape(f.rule),
        json_escape(&f.path),
        f.line,
        json_escape(&f.func),
        json_escape(&f.snippet),
        witness.join(",")
    )
}

/// One analyzer's section of the shared JSON report: `{"analyzer": name,
/// "findings": [...], "audited": n}`. `check-all` concatenates sections
/// into one artifact; standalone runs emit a single-element array.
pub fn analyzer_json(analyzer: &str, findings: &[&Finding], audited: usize) -> String {
    let items: Vec<String> = findings.iter().map(|f| finding_json(f)).collect();
    format!(
        "{{\"analyzer\":\"{}\",\"findings\":[{}],\"audited\":{}}}",
        json_escape(analyzer),
        items.join(","),
        audited
    )
}

/// Write `sections` (each from [`analyzer_json`]) as one JSON document to
/// `path`, or to stdout when `path` is `-`.
pub fn write_json_report(path: &str, sections: &[String]) -> Result<(), String> {
    let doc = format!("{{\"analyzers\":[{}]}}\n", sections.join(","));
    if path == "-" {
        print!("{doc}");
        Ok(())
    } else {
        std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Extraction: impl blocks, fn spans, call sites
// ---------------------------------------------------------------------------

/// True when `chars[i..]` starts the word `w` with ident boundaries on both
/// sides.
pub fn word_at(chars: &[char], i: usize, w: &str) -> bool {
    if i > 0 && unicode_ident(chars[i - 1]) {
        return false;
    }
    let mut j = i;
    for wc in w.chars() {
        if chars.get(j) != Some(&wc) {
            return false;
        }
        j += 1;
    }
    !chars.get(j).copied().is_some_and(unicode_ident)
}

pub fn skip_ws(chars: &[char], mut i: usize) -> usize {
    while chars.get(i).copied().is_some_and(char::is_whitespace) {
        i += 1;
    }
    i
}

pub fn read_ident(chars: &[char], mut i: usize) -> (String, usize) {
    let mut s = String::new();
    while chars.get(i).copied().is_some_and(unicode_ident) {
        s.push(chars[i]);
        i += 1;
    }
    (s, i)
}

/// Skip a balanced `<…>` generic list starting at `i` (which must point at
/// `<`). Returns the index just past the closing `>`.
pub fn skip_angles(chars: &[char], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < chars.len() {
        match chars[i] {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            // `->` inside `Fn(..) -> T` bounds: the '>' belongs to the
            // arrow, not the generic list.
            '-' if chars.get(i + 1) == Some(&'>') => {
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Find the matching `}` for the `{` at `open`; returns its index.
pub fn match_brace(chars: &[char], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < chars.len() {
        match chars[i] {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    chars.len() - 1
}

/// `impl` blocks as (type name, span start char, span end char).
fn extract_impls(flat: &Flat) -> Vec<(String, usize, usize)> {
    let chars = &flat.chars;
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if !word_at(chars, i, "impl") {
            i += 1;
            continue;
        }
        let mut j = skip_ws(chars, i + 4);
        if chars.get(j) == Some(&'<') {
            j = skip_angles(chars, j);
        }
        // Collect the header text up to the body `{` (paren depth 0 —
        // where-clauses may contain `Fn(..)`).
        let mut header = String::new();
        let mut depth = 0i32;
        let mut k = j;
        while k < chars.len() {
            match chars[k] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => break,
                ';' if depth == 0 => break, // `impl Trait for T;` — not Rust, bail
                _ => {}
            }
            header.push(chars[k]);
            k += 1;
        }
        if chars.get(k) == Some(&'{') {
            let end = match_brace(chars, k);
            if let Some(name) = parse_impl_type(&header) {
                out.push((name, i, end));
            }
            // Do not jump past the block: nested impls are rare but legal.
        }
        i = k + 1;
    }
    out
}

/// Pull the implemented type's name out of an impl header (the text between
/// `impl<…>` and `{`): `Display for Packet<'a>` → `Packet`.
fn parse_impl_type(header: &str) -> Option<String> {
    let after_for = match header.find(" for ") {
        Some(at) => &header[at + 5..],
        None => header,
    };
    let before_where = match after_for.find(" where") {
        Some(at) => &after_for[..at],
        None => after_for,
    };
    let mut s = before_where.trim();
    for prefix in ["&", "mut ", "dyn "] {
        s = s.strip_prefix(prefix).unwrap_or(s).trim_start();
    }
    let head = s.split('<').next()?;
    let name = head.rsplit("::").next()?.trim();
    if name.is_empty() || !name.chars().all(unicode_ident) {
        return None;
    }
    Some(name.to_string())
}

/// Every named fn in the file with its body span; test-region fns skipped.
fn extract_fns(
    flat: &Flat,
    view: &FileView,
    file: usize,
    impls: &[(String, usize, usize)],
) -> Vec<FnDef> {
    let chars = &flat.chars;
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if !word_at(chars, i, "fn") {
            i += 1;
            continue;
        }
        let j = skip_ws(chars, i + 2);
        let (name, after_name) = read_ident(chars, j);
        if name.is_empty() {
            i = j + 1; // `fn(` pointer type
            continue;
        }
        // Find the body `{` at paren/bracket depth 0, or `;` (no body).
        let mut depth = 0i32;
        let mut k = after_name;
        let mut body = None;
        while k < chars.len() {
            match chars[k] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => {
                    body = Some(k);
                    break;
                }
                ';' if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = body else {
            i = k + 1;
            continue;
        };
        let end = match_brace(chars, open);
        let start_line = flat.line_of[i];
        if view.in_tests[start_line] {
            i = after_name;
            continue;
        }
        let impl_type = impls
            .iter()
            .filter(|(_, s, e)| *s <= i && i <= *e)
            .min_by_key(|(_, s, e)| e - s)
            .map(|(t, _, _)| t.clone());
        out.push(FnDef {
            file,
            name,
            impl_type,
            is_pub: is_pub_at(chars, i),
            start_line,
            end_line: flat.line_of[end],
            body_start: open,
            body_end: end,
        });
        i = after_name;
    }
    out
}

/// True when the `fn` keyword at `fn_kw` carries a `pub` (or `pub(...)`)
/// visibility, looking back through `const`/`unsafe`/`async`/`extern`.
fn is_pub_at(chars: &[char], fn_kw: usize) -> bool {
    let mut i = fn_kw;
    while i > 0 && chars[i - 1].is_whitespace() {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    if chars[i - 1] == ')' {
        // `pub(crate) fn` / `pub(super) fn`
        let mut j = i - 1;
        while j > 0 && chars[j] != '(' {
            j -= 1;
        }
        while j > 0 && chars[j - 1].is_whitespace() {
            j -= 1;
        }
        return j > 0 && tok_ending_at(chars, j - 1) == "pub";
    }
    if unicode_ident(chars[i - 1]) {
        let tok = tok_ending_at(chars, i - 1);
        if tok == "pub" {
            return true;
        }
        if matches!(tok.as_str(), "const" | "unsafe" | "async" | "extern") {
            return is_pub_at(chars, i - tok.len());
        }
    }
    false
}

// `drop` is excluded too: `drop(guard)` is a destructor invocation, not a
// call of a named workspace fn — resolving it to every `Drop::drop` impl
// would wire unrelated lock/blocking edges into the graph.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "in", "as", "let", "else", "fn",
    "unsafe", "use", "mod", "pub", "where", "break", "continue", "yield", "await", "drop",
];

/// Scan a fn body for call sites `name(`, `qual::name(`, `.name(`,
/// `name::<T>(`; macros (`name!`) are excluded — panic macros are
/// classified separately and other macro bodies are a documented blind
/// spot.
fn extract_calls(flat: &Flat, view: &FileView, body_start: usize, body_end: usize) -> Vec<Call> {
    let chars = &flat.chars;
    let mut out = Vec::new();
    let mut i = body_start;
    while i < body_end {
        let c = chars[i];
        if !unicode_ident(c) || (i > 0 && unicode_ident(chars[i - 1])) {
            i += 1;
            continue;
        }
        // Lifetime `'a` is not an ident start.
        if i > 0 && chars[i - 1] == '\'' {
            i += 1;
            continue;
        }
        let (name, after) = read_ident(chars, i);
        if view.in_tests[flat.line_of[i]] || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            i = after;
            continue;
        }
        let mut j = skip_ws(chars, after);
        // Turbofish: `name::<T>(`.
        if chars.get(j) == Some(&':') && chars.get(j + 1) == Some(&':') {
            let k = skip_ws(chars, j + 2);
            if chars.get(k) == Some(&'<') {
                j = skip_ws(chars, skip_angles(chars, k));
            } else {
                i = after;
                continue; // path segment, not a call of `name`
            }
        }
        if chars.get(j) == Some(&'!') {
            i = after;
            continue; // macro
        }
        if chars.get(j) != Some(&'(') || CALL_KEYWORDS.contains(&name.as_str()) {
            i = after;
            continue;
        }
        // Qualifier: `qual::name(` — read the segment before a `::`.
        let mut qualifier = None;
        if i >= 2 && chars[i - 1] == ':' && chars[i - 2] == ':' {
            let mut q_end = i - 2;
            while q_end > 0 && chars[q_end - 1].is_whitespace() {
                q_end -= 1;
            }
            if q_end > 0 && chars[q_end - 1] == '>' {
                qualifier = Some(String::new()); // generic qualifier: unknown
            } else {
                let mut q_start = q_end;
                while q_start > 0 && unicode_ident(chars[q_start - 1]) {
                    q_start -= 1;
                }
                if q_start < q_end {
                    qualifier = Some(chars[q_start..q_end].iter().collect());
                }
            }
        }
        out.push(Call {
            name,
            qualifier,
            is_method: i > 0 && chars[i - 1] == '.',
            line: flat.line_of[i],
        });
        i = after;
    }
    out
}

// ---------------------------------------------------------------------------
// Token helpers shared by the per-line classifiers
// ---------------------------------------------------------------------------

pub fn skip_ws_chars(b: &[char], mut i: usize) -> usize {
    while i < b.len() && b[i].is_whitespace() {
        i += 1;
    }
    i
}

pub fn read_tok(b: &[char], mut i: usize) -> (String, usize) {
    let mut s = String::new();
    while i < b.len() && unicode_ident(b[i]) {
        s.push(b[i]);
        i += 1;
    }
    (s, i)
}

pub fn tok_ending_at(b: &[char], end: usize) -> String {
    if !unicode_ident(b[end]) {
        return String::new();
    }
    let mut start = end;
    while start > 0 && unicode_ident(b[start - 1]) {
        start -= 1;
    }
    b[start..=end].iter().collect()
}

/// Word-boundary substring search on a code line: every position where
/// `needle` occurs with no identifier character on either side.
pub fn word_positions(line: &str, needle: &str) -> Vec<usize> {
    line.match_indices(needle)
        .filter(|(pos, _)| {
            let before = line[..*pos].chars().next_back();
            let after = line[pos + needle.len()..].chars().next();
            !before.is_some_and(unicode_ident) && !after.is_some_and(unicode_ident)
        })
        .map(|(pos, _)| pos)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impl_type_parsed_through_trait_impls() {
        let flat = flatten(&lex(
            "impl<'a> Iterator for OptionsIter<'a> {\n    fn next(&mut self) {}\n}\n",
        ));
        let impls = extract_impls(&flat);
        assert_eq!(impls.len(), 1);
        assert_eq!(impls[0].0, "OptionsIter");
    }

    #[test]
    fn typed_root_spec_narrows_to_one_impl() {
        let root = std::env::temp_dir().join(format!("ruru-callgraph-{}", std::process::id()));
        std::fs::create_dir_all(root.join("crates/mq/src")).expect("mkdir");
        std::fs::write(
            root.join("crates/mq/src/lib.rs"),
            "pub struct Bus;\n\
             impl Bus {\n\
             \x20   pub fn publish(&self) { fan() }\n\
             }\n\
             pub struct Tcp;\n\
             impl Tcp {\n\
             \x20   pub fn publish(&self) { frame() }\n\
             }\n\
             fn fan() {}\n\
             fn frame() {}\n",
        )
        .expect("write");
        let ws = Workspace::load(&root, &["mq"]).expect("load");
        std::fs::remove_dir_all(&root).ok();
        let reach = ws.reach(&[("mq", "Bus::publish")]);
        let reached: Vec<String> = (0..ws.fns.len())
            .filter(|&id| reach.reachable[id])
            .map(|id| format!("{}::{}", ws.fns[id].impl_type.clone().unwrap_or_default(), ws.fns[id].name))
            .collect();
        assert!(reached.contains(&"Bus::publish".to_string()));
        assert!(reached.contains(&"::fan".to_string()));
        assert!(!reached.contains(&"Tcp::publish".to_string()));
        assert!(!reached.contains(&"::frame".to_string()));
    }

    #[test]
    fn propagate_up_marks_callers_with_witness_chain() {
        let root = std::env::temp_dir().join(format!("ruru-propagate-{}", std::process::id()));
        std::fs::create_dir_all(root.join("crates/mq/src")).expect("mkdir");
        std::fs::write(
            root.join("crates/mq/src/lib.rs"),
            "pub fn outer() { middle() }\n\
             fn middle() { leaf() }\n\
             fn leaf() {}\n\
             fn unrelated() {}\n",
        )
        .expect("write");
        let ws = Workspace::load(&root, &["mq"]).expect("load");
        std::fs::remove_dir_all(&root).ok();
        let leaf = ws.fns.iter().position(|f| f.name == "leaf").expect("leaf");
        let outer = ws.fns.iter().position(|f| f.name == "outer").expect("outer");
        let unrelated = ws
            .fns
            .iter()
            .position(|f| f.name == "unrelated")
            .expect("unrelated");
        let mut seed = vec![false; ws.fns.len()];
        seed[leaf] = true;
        let (marked, because) = ws.propagate_up_edges(&ws.edges, &seed);
        assert!(marked[outer]);
        assert!(!marked[unrelated]);
        let chain = ws.because_chain(&because, outer);
        assert_eq!(chain, ["mq::outer", "mq::middle", "mq::leaf"]);
    }
}
