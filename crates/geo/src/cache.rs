//! A fixed-capacity O(1) LRU cache.
//!
//! Live traffic concentrates on few prefixes, so each enrichment worker
//! fronts the (shared, read-only) database with a private LRU — the
//! standard IP2Location integration pattern. Implemented as a hash map into
//! a slab with an intrusive doubly-linked recency list; no allocation after
//! construction.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache with fixed capacity.
pub struct LruCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    head: usize, // most recent
    tail: usize, // least recent
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Get a value, marking it most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key) {
            Some(&idx) => {
                self.hits += 1;
                if idx != self.head {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                Some(&self.slab[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) a value, evicting the least-recently-used entry
    /// at capacity.
    pub fn put(&mut self, key: K, value: V) {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            if idx != self.head {
                self.unlink(idx);
                self.push_front(idx);
            }
            return;
        }
        let idx = if self.map.len() < self.capacity {
            self.slab.push(Node {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        } else {
            // Recycle the tail slot.
            let idx = self.tail;
            self.unlink(idx);
            let old_key = std::mem::replace(&mut self.slab[idx].key, key.clone());
            self.map.remove(&old_key);
            self.slab[idx].value = value;
            idx
        };
        self.push_front(idx);
        self.map.insert(key, idx);
    }

    /// Fetch through the cache: on a miss, compute with `load` and insert.
    /// `None` results are not cached (negative caching would pin misses).
    pub fn get_or_insert_with(&mut self, key: &K, load: impl FnOnce() -> Option<V>) -> Option<&V>
    where
        V: Clone,
    {
        // Split borrow dance: check presence first.
        if self.map.contains_key(key) {
            return self.get(key);
        }
        self.misses += 1;
        let value = load()?;
        self.put(key.clone(), value);
        self.map.get(key).map(|&idx| &self.slab[idx].value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_get_put() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        assert!(c.get(&1).is_none());
        c.put(1, "a");
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_order_is_lru() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.get(&1); // 1 is now most recent
        c.put(3, 30); // evicts 2
        assert_eq!(c.get(&1), Some(&10));
        assert!(c.get(&2).is_none());
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_refreshes_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.put(1, 11); // update + refresh
        c.put(3, 30); // evicts 2, not 1
        assert_eq!(c.get(&1), Some(&11));
        assert!(c.get(&2).is_none());
    }

    #[test]
    fn capacity_one() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.put(1, 10);
        c.put(2, 20);
        assert!(c.get(&1).is_none());
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    fn get_or_insert_with_loads_once() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        let mut loads = 0;
        for _ in 0..3 {
            let v = *c
                .get_or_insert_with(&7, || {
                    loads += 1;
                    Some(49)
                })
                .unwrap();
            assert_eq!(v, 49);
        }
        assert_eq!(loads, 1);
    }

    #[test]
    fn negative_results_not_cached() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        let mut loads = 0;
        for _ in 0..3 {
            assert!(c
                .get_or_insert_with(&7, || {
                    loads += 1;
                    None
                })
                .is_none());
        }
        assert_eq!(loads, 3, "misses must retry the loader");
        assert!(c.is_empty());
    }

    #[test]
    fn heavy_churn_is_consistent() {
        let mut c: LruCache<u64, u64> = LruCache::new(64);
        for i in 0..10_000u64 {
            c.put(i % 200, i);
            if let Some(&v) = c.get(&(i % 200)) {
                assert_eq!(v, i);
            }
        }
        assert_eq!(c.len(), 64);
        // The most recent 64 distinct keys must all hit with correct values.
        // (keys cycle 0..200, so last inserted keys are (9999-63..=9999)%200)
        for i in 9936..10_000u64 {
            assert_eq!(c.get(&(i % 200)), Some(&i));
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u8, u8>::new(0);
    }
}
