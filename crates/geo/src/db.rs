//! The range-table geolocation database.
//!
//! IP2Location ships databases as sorted, non-overlapping address ranges
//! pointing at location rows. [`GeoDb`] is exactly that over a u128 key
//! space (IPv4 addresses live in the IPv4-mapped range, so one table serves
//! both families), with `O(log n)` binary-search lookup.

/// One location row: what an IP2Location DB24-style record carries, plus AS
/// information (IP2Location ASN database fields).
#[derive(Debug, Clone, PartialEq)]
pub struct Location {
    /// ISO 3166-1 alpha-2 country code.
    pub country_code: [u8; 2],
    /// Country name.
    pub country: String,
    /// Region / state.
    pub region: String,
    /// City name.
    pub city: String,
    /// Latitude in degrees.
    pub lat: f32,
    /// Longitude in degrees.
    pub lon: f32,
    /// Autonomous system number.
    pub asn: u32,
    /// Autonomous system name.
    pub as_name: String,
}

impl Location {
    /// The country code as a `&str`.
    pub fn country_code_str(&self) -> &str {
        core::str::from_utf8(&self.country_code).unwrap_or("??")
    }
}

/// An address range `[start, end]` (inclusive, like IP2Location rows)
/// mapped to a location row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// First address of the range (u128 key space).
    pub start: u128,
    /// Last address (inclusive).
    pub end: u128,
    /// Index into the location table.
    pub location: u32,
}

/// Errors from database construction or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Ranges overlap or are unsorted after normalization.
    Overlap {
        /// Row index (after sorting) where the overlap was found.
        at: usize,
    },
    /// A range's location index is out of bounds.
    BadLocationIndex {
        /// Offending row index.
        at: usize,
    },
    /// A range has `end < start`.
    InvertedRange {
        /// Offending row index.
        at: usize,
    },
    /// The serialized form is malformed.
    Corrupt(&'static str),
}

impl core::fmt::Display for DbError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DbError::Overlap { at } => write!(f, "overlapping ranges at row {at}"),
            DbError::BadLocationIndex { at } => write!(f, "bad location index at row {at}"),
            DbError::InvertedRange { at } => write!(f, "inverted range at row {at}"),
            DbError::Corrupt(what) => write!(f, "corrupt database: {what}"),
        }
    }
}

impl std::error::Error for DbError {}

const MAGIC: &[u8; 6] = b"RGEOv1";

/// The geolocation database: a location table plus sorted ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoDb {
    locations: Vec<Location>,
    ranges: Vec<Range>,
}

impl GeoDb {
    /// Build a database, sorting the ranges and validating that they do not
    /// overlap and reference valid locations.
    pub fn new(locations: Vec<Location>, mut ranges: Vec<Range>) -> Result<GeoDb, DbError> {
        ranges.sort_unstable_by_key(|r| r.start);
        for (i, r) in ranges.iter().enumerate() {
            if r.end < r.start {
                return Err(DbError::InvertedRange { at: i });
            }
            if r.location as usize >= locations.len() {
                return Err(DbError::BadLocationIndex { at: i });
            }
            if i > 0 && ranges[i - 1].end >= r.start {
                return Err(DbError::Overlap { at: i });
            }
        }
        Ok(GeoDb { locations, ranges })
    }

    /// Number of ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Number of location rows.
    pub fn location_count(&self) -> usize {
        self.locations.len()
    }

    /// The location table.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// The sorted range table.
    pub fn ranges(&self) -> &[Range] {
        &self.ranges
    }

    /// Look up an address key (see `ruru_wire::IpAddress::as_u128`).
    pub fn lookup_key(&self, key: u128) -> Option<&Location> {
        // partition_point: first range with start > key; the candidate is
        // the one before it.
        let idx = self.ranges.partition_point(|r| r.start <= key);
        if idx == 0 {
            return None;
        }
        let r = &self.ranges[idx - 1];
        if key <= r.end {
            Some(&self.locations[r.location as usize])
        } else {
            None
        }
    }

    /// Serialize to the compact binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.locations.len() as u32).to_le_bytes());
        let put_str = |out: &mut Vec<u8>, s: &str| {
            let b = s.as_bytes();
            out.extend_from_slice(&(b.len() as u16).to_le_bytes());
            out.extend_from_slice(b);
        };
        for loc in &self.locations {
            out.extend_from_slice(&loc.country_code);
            put_str(&mut out, &loc.country);
            put_str(&mut out, &loc.region);
            put_str(&mut out, &loc.city);
            out.extend_from_slice(&loc.lat.to_le_bytes());
            out.extend_from_slice(&loc.lon.to_le_bytes());
            out.extend_from_slice(&loc.asn.to_le_bytes());
            put_str(&mut out, &loc.as_name);
        }
        out.extend_from_slice(&(self.ranges.len() as u32).to_le_bytes());
        for r in &self.ranges {
            out.extend_from_slice(&r.start.to_le_bytes());
            out.extend_from_slice(&r.end.to_le_bytes());
            out.extend_from_slice(&r.location.to_le_bytes());
        }
        out
    }

    /// Deserialize from [`GeoDb::to_bytes`] output.
    pub fn from_bytes(data: &[u8]) -> Result<GeoDb, DbError> {
        struct Cursor<'a> {
            data: &'a [u8],
            at: usize,
        }
        impl<'a> Cursor<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], DbError> {
                if self.at + n > self.data.len() {
                    return Err(DbError::Corrupt("truncated"));
                }
                let s = &self.data[self.at..self.at + n];
                self.at += n;
                Ok(s)
            }
            fn u16(&mut self) -> Result<u16, DbError> {
                Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
            }
            fn u32(&mut self) -> Result<u32, DbError> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn u128(&mut self) -> Result<u128, DbError> {
                Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
            }
            fn f32(&mut self) -> Result<f32, DbError> {
                Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn string(&mut self) -> Result<String, DbError> {
                let len = self.u16()? as usize;
                let b = self.take(len)?;
                String::from_utf8(b.to_vec()).map_err(|_| DbError::Corrupt("bad utf8"))
            }
        }
        let mut c = Cursor { data, at: 0 };
        if c.take(6)? != MAGIC {
            return Err(DbError::Corrupt("bad magic"));
        }
        let n_loc = c.u32()? as usize;
        if n_loc > 16_000_000 {
            return Err(DbError::Corrupt("absurd location count"));
        }
        let mut locations = Vec::with_capacity(n_loc);
        for _ in 0..n_loc {
            let cc = c.take(2)?;
            locations.push(Location {
                country_code: [cc[0], cc[1]],
                country: c.string()?,
                region: c.string()?,
                city: c.string()?,
                lat: c.f32()?,
                lon: c.f32()?,
                asn: c.u32()?,
                as_name: c.string()?,
            });
        }
        let n_ranges = c.u32()? as usize;
        if n_ranges > 256_000_000 {
            return Err(DbError::Corrupt("absurd range count"));
        }
        let mut ranges = Vec::with_capacity(n_ranges);
        for _ in 0..n_ranges {
            ranges.push(Range {
                start: c.u128()?,
                end: c.u128()?,
                location: c.u32()?,
            });
        }
        if c.at != data.len() {
            return Err(DbError::Corrupt("trailing bytes"));
        }
        GeoDb::new(locations, ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(cc: &str, city: &str, asn: u32) -> Location {
        Location {
            country_code: cc.as_bytes().try_into().unwrap(),
            country: format!("Country-{cc}"),
            region: "Region".into(),
            city: city.into(),
            lat: 1.5,
            lon: -2.5,
            asn,
            as_name: format!("AS-{asn}"),
        }
    }

    fn sample_db() -> GeoDb {
        GeoDb::new(
            vec![loc("NZ", "Auckland", 9500), loc("US", "Los Angeles", 7018)],
            vec![
                Range {
                    start: 100,
                    end: 199,
                    location: 0,
                },
                Range {
                    start: 300,
                    end: 399,
                    location: 1,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn lookup_hits_and_misses() {
        let db = sample_db();
        assert_eq!(db.lookup_key(100).unwrap().city, "Auckland");
        assert_eq!(db.lookup_key(150).unwrap().city, "Auckland");
        assert_eq!(db.lookup_key(199).unwrap().city, "Auckland");
        assert_eq!(db.lookup_key(399).unwrap().asn, 7018);
        assert!(db.lookup_key(99).is_none());
        assert!(db.lookup_key(200).is_none());
        assert!(db.lookup_key(250).is_none());
        assert!(db.lookup_key(u128::MAX).is_none());
        assert!(db.lookup_key(0).is_none());
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let db = GeoDb::new(
            vec![loc("NZ", "A", 1)],
            vec![
                Range {
                    start: 500,
                    end: 599,
                    location: 0,
                },
                Range {
                    start: 100,
                    end: 199,
                    location: 0,
                },
            ],
        )
        .unwrap();
        assert!(db.lookup_key(550).is_some());
        assert!(db.lookup_key(150).is_some());
    }

    #[test]
    fn overlap_rejected() {
        let err = GeoDb::new(
            vec![loc("NZ", "A", 1)],
            vec![
                Range {
                    start: 100,
                    end: 250,
                    location: 0,
                },
                Range {
                    start: 200,
                    end: 300,
                    location: 0,
                },
            ],
        )
        .unwrap_err();
        assert_eq!(err, DbError::Overlap { at: 1 });
    }

    #[test]
    fn touching_ranges_allowed() {
        // [100,199] and [200,299] are adjacent, not overlapping.
        let db = GeoDb::new(
            vec![loc("NZ", "A", 1)],
            vec![
                Range {
                    start: 100,
                    end: 199,
                    location: 0,
                },
                Range {
                    start: 200,
                    end: 299,
                    location: 0,
                },
            ],
        )
        .unwrap();
        assert!(db.lookup_key(199).is_some());
        assert!(db.lookup_key(200).is_some());
    }

    #[test]
    fn inverted_range_rejected() {
        let err = GeoDb::new(
            vec![loc("NZ", "A", 1)],
            vec![Range {
                start: 200,
                end: 100,
                location: 0,
            }],
        )
        .unwrap_err();
        assert_eq!(err, DbError::InvertedRange { at: 0 });
    }

    #[test]
    fn bad_location_index_rejected() {
        let err = GeoDb::new(
            vec![loc("NZ", "A", 1)],
            vec![Range {
                start: 1,
                end: 2,
                location: 5,
            }],
        )
        .unwrap_err();
        assert_eq!(err, DbError::BadLocationIndex { at: 0 });
    }

    #[test]
    fn serialization_roundtrip() {
        let db = sample_db();
        let bytes = db.to_bytes();
        let back = GeoDb::from_bytes(&bytes).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn corrupt_serializations_rejected() {
        let db = sample_db();
        let bytes = db.to_bytes();
        assert!(GeoDb::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(GeoDb::from_bytes(&[]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(GeoDb::from_bytes(&bad_magic).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            GeoDb::from_bytes(&trailing).unwrap_err(),
            DbError::Corrupt("trailing bytes")
        );
    }

    #[test]
    fn single_address_range() {
        let db = GeoDb::new(
            vec![loc("NZ", "A", 1)],
            vec![Range {
                start: 42,
                end: 42,
                location: 0,
            }],
        )
        .unwrap();
        assert!(db.lookup_key(42).is_some());
        assert!(db.lookup_key(41).is_none());
        assert!(db.lookup_key(43).is_none());
    }

    #[test]
    fn empty_db_always_misses() {
        let db = GeoDb::new(vec![], vec![]).unwrap();
        assert!(db.lookup_key(0).is_none());
        assert!(db.lookup_key(12345).is_none());
    }

    #[test]
    fn country_code_str() {
        assert_eq!(loc("NZ", "A", 1).country_code_str(), "NZ");
    }
}
