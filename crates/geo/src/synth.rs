//! A deterministic synthetic world — the substitute for the proprietary
//! IP2Location LITE data.
//!
//! Real city coordinates (so great-circle distances, and therefore the
//! traffic generator's propagation delays and the frontend's arcs, are
//! realistic), synthetic address blocks and AS numbers. Everything is a
//! pure function of the seed, so experiments reproduce bit-for-bit.

use crate::db::{DbError, GeoDb, Location, Range};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One city of the synthetic world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct City {
    /// City name.
    pub name: &'static str,
    /// ISO country code.
    pub cc: [u8; 2],
    /// Country name.
    pub country: &'static str,
    /// Region / state.
    pub region: &'static str,
    /// Latitude (degrees).
    pub lat: f32,
    /// Longitude (degrees).
    pub lon: f32,
}

const fn city(
    name: &'static str,
    cc: &'static [u8; 2],
    country: &'static str,
    region: &'static str,
    lat: f32,
    lon: f32,
) -> City {
    City {
        name,
        cc: *cc,
        country,
        region,
        lat,
        lon,
    }
}

/// The cities of the synthetic world. Auckland and Los Angeles first: the
/// paper's deployment taps the link between them.
pub const CITIES: &[City] = &[
    city("Auckland", b"NZ", "New Zealand", "Auckland", -36.85, 174.76),
    city("Los Angeles", b"US", "United States", "California", 34.05, -118.24),
    city("Wellington", b"NZ", "New Zealand", "Wellington", -41.29, 174.78),
    city("Christchurch", b"NZ", "New Zealand", "Canterbury", -43.53, 172.64),
    city("Sydney", b"AU", "Australia", "New South Wales", -33.87, 151.21),
    city("Melbourne", b"AU", "Australia", "Victoria", -37.81, 144.96),
    city("San Francisco", b"US", "United States", "California", 37.77, -122.42),
    city("Seattle", b"US", "United States", "Washington", 47.61, -122.33),
    city("New York", b"US", "United States", "New York", 40.71, -74.01),
    city("Chicago", b"US", "United States", "Illinois", 41.88, -87.63),
    city("Dallas", b"US", "United States", "Texas", 32.78, -96.80),
    city("Ashburn", b"US", "United States", "Virginia", 39.04, -77.49),
    city("Honolulu", b"US", "United States", "Hawaii", 21.31, -157.86),
    city("Tokyo", b"JP", "Japan", "Tokyo", 35.68, 139.69),
    city("Osaka", b"JP", "Japan", "Osaka", 34.69, 135.50),
    city("Seoul", b"KR", "South Korea", "Seoul", 37.57, 126.98),
    city("Singapore", b"SG", "Singapore", "Singapore", 1.35, 103.82),
    city("Hong Kong", b"HK", "Hong Kong", "Hong Kong", 22.32, 114.17),
    city("Taipei", b"TW", "Taiwan", "Taipei", 25.03, 121.57),
    city("Mumbai", b"IN", "India", "Maharashtra", 19.08, 72.88),
    city("Chennai", b"IN", "India", "Tamil Nadu", 13.08, 80.27),
    city("London", b"GB", "United Kingdom", "England", 51.51, -0.13),
    city("Glasgow", b"GB", "United Kingdom", "Scotland", 55.86, -4.25),
    city("Amsterdam", b"NL", "Netherlands", "North Holland", 52.37, 4.90),
    city("Frankfurt", b"DE", "Germany", "Hesse", 50.11, 8.68),
    city("Paris", b"FR", "France", "Île-de-France", 48.86, 2.35),
    city("Madrid", b"ES", "Spain", "Madrid", 40.42, -3.70),
    city("Milan", b"IT", "Italy", "Lombardy", 45.46, 9.19),
    city("Stockholm", b"SE", "Sweden", "Stockholm", 59.33, 18.07),
    city("Warsaw", b"PL", "Poland", "Masovia", 52.23, 21.01),
    city("Moscow", b"RU", "Russia", "Moscow", 55.76, 37.62),
    city("Dubai", b"AE", "UAE", "Dubai", 25.20, 55.27),
    city("Johannesburg", b"ZA", "South Africa", "Gauteng", -26.20, 28.05),
    city("Cairo", b"EG", "Egypt", "Cairo", 30.04, 31.24),
    city("São Paulo", b"BR", "Brazil", "São Paulo", -23.55, -46.63),
    city("Buenos Aires", b"AR", "Argentina", "Buenos Aires", -34.60, -58.38),
    city("Santiago", b"CL", "Chile", "Santiago", -33.45, -70.67),
    city("Mexico City", b"MX", "Mexico", "CDMX", 19.43, -99.13),
    city("Toronto", b"CA", "Canada", "Ontario", 43.65, -79.38),
    city("Vancouver", b"CA", "Canada", "British Columbia", 49.28, -123.12),
    city("Suva", b"FJ", "Fiji", "Central", -18.14, 178.44),
    city("Nouméa", b"NC", "New Caledonia", "South", -22.26, 166.45),
];

/// Index of Auckland in [`CITIES`].
pub const AUCKLAND: usize = 0;
/// Index of Los Angeles in [`CITIES`].
pub const LOS_ANGELES: usize = 1;

/// Great-circle distance between two coordinates, in kilometres (haversine).
pub fn distance_km(lat1: f32, lon1: f32, lat2: f32, lon2: f32) -> f64 {
    const R_EARTH_KM: f64 = 6371.0;
    let (lat1, lon1, lat2, lon2) = (
        (lat1 as f64).to_radians(),
        (lon1 as f64).to_radians(),
        (lat2 as f64).to_radians(),
        (lon2 as f64).to_radians(),
    );
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * R_EARTH_KM * a.sqrt().asin()
}

/// The IPv4-mapped offset of the u128 key space.
const V4_BASE: u128 = 0xffff_0000_0000;

/// The synthetic world: a [`GeoDb`] plus the address plan needed to sample
/// addresses from a given city (used by the traffic generator).
pub struct SynthWorld {
    db: GeoDb,
    providers_per_city: usize,
}

impl SynthWorld {
    /// Build the world: each city gets `providers_per_city` providers, each
    /// provider one IPv4 /16 and one IPv6 /96-equivalent block.
    pub fn generate(providers_per_city: usize) -> SynthWorld {
        assert!(
            (1..=8).contains(&providers_per_city),
            "1..=8 providers per city supported"
        );
        let mut locations = Vec::new();
        let mut ranges = Vec::new();
        for (ci, c) in CITIES.iter().enumerate() {
            for p in 0..providers_per_city {
                let asn = 64000 + (ci * 8 + p) as u32;
                let loc_idx = locations.len() as u32;
                locations.push(Location {
                    country_code: c.cc,
                    country: c.country.into(),
                    region: c.region.into(),
                    city: c.name.into(),
                    lat: c.lat,
                    lon: c.lon,
                    asn,
                    as_name: format!("SYNTH-{}-{}", c.name.to_uppercase().replace(' ', ""), p),
                });
                // IPv4: 100.(ci*8+p).0.0/16 mapped into the u128 space.
                let v4_start = V4_BASE | ((100u128) << 24) | (((ci * 8 + p) as u128) << 16);
                ranges.push(Range {
                    start: v4_start,
                    end: v4_start + 0xffff,
                    location: loc_idx,
                });
                // IPv6: 2400:10xx:yy00::/40-ish block, disjoint per provider.
                let v6_start = (0x2400u128 << 112)
                    | (0x1000u128 + ci as u128) << 96
                    | (p as u128) << 88;
                ranges.push(Range {
                    start: v6_start,
                    end: v6_start | ((1u128 << 88) - 1),
                    location: loc_idx,
                });
            }
        }
        let db = GeoDb::new(locations, ranges).expect("synthetic plan is disjoint");
        SynthWorld {
            db,
            providers_per_city,
        }
    }

    /// The database.
    pub fn db(&self) -> &GeoDb {
        &self.db
    }

    /// Consume the world, returning its database.
    pub fn into_db(self) -> GeoDb {
        self.db
    }

    /// Number of cities.
    pub fn city_count(&self) -> usize {
        CITIES.len()
    }

    /// Providers allocated per city.
    pub fn providers_per_city(&self) -> usize {
        self.providers_per_city
    }

    /// A uniformly random IPv4 address (as wire bytes) belonging to `city`.
    pub fn sample_v4(&self, city: usize, rng: &mut impl Rng) -> [u8; 4] {
        assert!(city < CITIES.len(), "city index out of range");
        let p = rng.gen_range(0..self.providers_per_city);
        let host: u16 = rng.gen_range(2..0xfffe); // avoid .0.0 and broadcast
        // Same block arithmetic as the range plan: for city*8+p ≥ 256 the
        // block index carries into the first octet (101.x, 102.x, …).
        let block = (100u32 << 24) | (((city * 8 + p) as u32) << 16);
        (block | host as u32).to_be_bytes()
    }

    /// A uniformly random IPv6 address (as wire bytes) belonging to `city`.
    pub fn sample_v6(&self, city: usize, rng: &mut impl Rng) -> [u8; 16] {
        assert!(city < CITIES.len(), "city index out of range");
        let p = rng.gen_range(0..self.providers_per_city);
        let host: u64 = rng.gen();
        let addr = (0x2400u128 << 112)
            | (0x1000u128 + city as u128) << 96
            | (p as u128) << 88
            | host as u128;
        addr.to_be_bytes()
    }

    /// The location of `city` as stored in the database (provider 0).
    pub fn city_location(&self, city: usize) -> &Location {
        let key = V4_BASE | (100u128 << 24) | (((city * 8) as u128) << 16) | 2;
        self.db.lookup_key(key).expect("city block exists")
    }

    /// A copy of the database with every IPv4 block split into `fragments`
    /// consecutive ranges (all pointing at the same location).
    ///
    /// Real IP2Location databases hold millions of rows because allocations
    /// are fragmented; lookups there walk a much deeper binary search. This
    /// models that row count so cache-vs-no-cache comparisons (E6) are run
    /// against a realistically sized table, not our compact city plan.
    pub fn fragmented(&self, fragments: u32) -> Result<GeoDb, DbError> {
        assert!(fragments >= 1, "need at least one fragment");
        let locations = self.db.locations().to_vec();
        let mut ranges = Vec::new();
        for r in self.db.ranges() {
            let span = r.end - r.start + 1;
            if span < fragments as u128 * 2 {
                ranges.push(*r);
                continue;
            }
            let step = span / fragments as u128;
            for f in 0..fragments as u128 {
                let start = r.start + f * step;
                let end = if f == fragments as u128 - 1 {
                    r.end
                } else {
                    start + step - 1
                };
                ranges.push(Range {
                    start,
                    end,
                    location: r.location,
                });
            }
        }
        GeoDb::new(locations, ranges)
    }

    /// A copy of the database with a fraction `error_rate` of the ranges
    /// pointing at a *wrong* location — used to reproduce the paper's "98%
    /// country-level accuracy" claim (experiment E6).
    pub fn perturbed(&self, error_rate: f64, seed: u64) -> Result<GeoDb, DbError> {
        assert!((0.0..=1.0).contains(&error_rate), "rate out of range");
        let mut rng = StdRng::seed_from_u64(seed);
        let locations = self.db.locations().to_vec();
        let n_loc = locations.len() as u32;
        let ranges = self
            .db
            .ranges()
            .iter()
            .map(|r| {
                if rng.gen_bool(error_rate) {
                    // Point at a different location (wrap around by one to
                    // guarantee it differs; locations are per-provider so a
                    // +providers_per_city step changes the city).
                    let step = (self.providers_per_city as u32).max(1);
                    Range {
                        location: (r.location + step) % n_loc,
                        ..*r
                    }
                } else {
                    *r
                }
            })
            .collect();
        GeoDb::new(locations, ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn world_is_queryable() {
        let w = SynthWorld::generate(2);
        assert_eq!(w.db().location_count(), CITIES.len() * 2);
        assert_eq!(w.db().range_count(), CITIES.len() * 2 * 2); // v4 + v6
        let akl = w.city_location(AUCKLAND);
        assert_eq!(akl.city, "Auckland");
        assert_eq!(akl.country_code_str(), "NZ");
        let lax = w.city_location(LOS_ANGELES);
        assert_eq!(lax.city, "Los Angeles");
    }

    #[test]
    fn sampled_addresses_geolocate_to_their_city() {
        let w = SynthWorld::generate(3);
        let mut rng = StdRng::seed_from_u64(1);
        for (city, info) in CITIES.iter().enumerate() {
            for _ in 0..20 {
                let addr = w.sample_v4(city, &mut rng);
                let key = V4_BASE | u32::from_be_bytes(addr) as u128;
                let loc = w.db().lookup_key(key).expect("sampled address in db");
                assert_eq!(loc.city, info.name);
            }
        }
    }

    #[test]
    fn sampled_v6_addresses_geolocate_to_their_city() {
        let w = SynthWorld::generate(3);
        let mut rng = StdRng::seed_from_u64(8);
        for city in [0usize, 1, 20, 41] {
            for _ in 0..20 {
                let addr = w.sample_v6(city, &mut rng);
                let key = u128::from_be_bytes(addr);
                let loc = w.db().lookup_key(key).expect("sampled v6 in db");
                assert_eq!(loc.city, CITIES[city].name);
            }
        }
    }

    #[test]
    fn ipv6_blocks_geolocate() {
        let w = SynthWorld::generate(1);
        // An address inside Auckland's provider-0 v6 block.
        let key = (0x2400u128 << 112) | (0x1000u128 << 96) | 42;
        let loc = w.db().lookup_key(key).unwrap();
        assert_eq!(loc.city, "Auckland");
    }

    #[test]
    fn asns_are_distinct_per_provider() {
        let w = SynthWorld::generate(2);
        let mut asns: Vec<u32> = w.db().locations().iter().map(|l| l.asn).collect();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(asns.len(), CITIES.len() * 2);
    }

    #[test]
    fn auckland_la_distance_is_about_10480_km() {
        let akl = &CITIES[AUCKLAND];
        let lax = &CITIES[LOS_ANGELES];
        let d = distance_km(akl.lat, akl.lon, lax.lat, lax.lon);
        assert!((10_300.0..10_650.0).contains(&d), "distance {d}");
    }

    #[test]
    fn distance_properties() {
        let a = &CITIES[AUCKLAND];
        let b = &CITIES[4]; // Sydney
        assert_eq!(distance_km(a.lat, a.lon, a.lat, a.lon), 0.0);
        let ab = distance_km(a.lat, a.lon, b.lat, b.lon);
        let ba = distance_km(b.lat, b.lon, a.lat, a.lon);
        assert!((ab - ba).abs() < 1e-9, "symmetric");
        assert!((2_100.0..2_250.0).contains(&ab), "AKL-SYD ~2156km, got {ab}");
    }

    #[test]
    fn perturbation_rate_is_respected() {
        let w = SynthWorld::generate(1);
        let perturbed = w.perturbed(0.02, 7).unwrap();
        let total = w.db().range_count();
        let wrong = w
            .db()
            .ranges()
            .iter()
            .zip(perturbed.ranges())
            .filter(|(a, b)| a.location != b.location)
            .count();
        let rate = wrong as f64 / total as f64;
        assert!(rate > 0.0 && rate < 0.10, "rate {rate}");
        // Perturbed ranges must point at a DIFFERENT city (country check in E6).
        for (a, b) in w.db().ranges().iter().zip(perturbed.ranges()) {
            if a.location != b.location {
                let la = &w.db().locations()[a.location as usize];
                let lb = &perturbed.locations()[b.location as usize];
                assert_ne!(la.city, lb.city);
            }
        }
    }

    #[test]
    fn fragmented_db_preserves_lookups() {
        let w = SynthWorld::generate(2);
        let frag = w.fragmented(64).unwrap();
        assert!(frag.range_count() > w.db().range_count() * 32);
        let mut rng = StdRng::seed_from_u64(5);
        for city in [AUCKLAND, LOS_ANGELES, 20, 41] {
            for _ in 0..50 {
                let addr = w.sample_v4(city, &mut rng);
                let key = V4_BASE | u32::from_be_bytes(addr) as u128;
                assert_eq!(
                    frag.lookup_key(key).map(|l| &l.city),
                    w.db().lookup_key(key).map(|l| &l.city)
                );
            }
        }
    }

    #[test]
    fn fragmented_one_is_identity() {
        let w = SynthWorld::generate(1);
        assert_eq!(&w.fragmented(1).unwrap(), w.db());
    }

    #[test]
    fn zero_perturbation_is_identity() {
        let w = SynthWorld::generate(1);
        let p = w.perturbed(0.0, 1).unwrap();
        assert_eq!(&p, w.db());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SynthWorld::generate(2);
        let b = SynthWorld::generate(2);
        assert_eq!(a.db(), b.db());
        assert_eq!(a.perturbed(0.05, 9).unwrap(), b.perturbed(0.05, 9).unwrap());
    }

    #[test]
    #[should_panic(expected = "city index out of range")]
    fn sample_bad_city_panics() {
        let w = SynthWorld::generate(1);
        let mut rng = StdRng::seed_from_u64(0);
        w.sample_v4(9999, &mut rng);
    }
}
