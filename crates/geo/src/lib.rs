#![warn(missing_docs)]

//! # ruru-geo — IP geolocation and AS lookup
//!
//! Ruru Analytics *"retrieve\[s\] geographical locations (coordinates, country
//! and city information) and AS information for the source and destination
//! IPs"* from an IP2Location LITE database. IP2Location databases are
//! range tables: rows of `(from_ip, to_ip) → location`. This crate
//! reproduces that faithfully:
//!
//! * [`db`] — the range database over a unified u128 address space (IPv4
//!   mapped into `::ffff:0:0/96`), with binary-search lookup, a compact
//!   binary serialization, and overlap validation.
//! * [`synth`] — a deterministic synthetic world: real cities with real
//!   coordinates and plausible AS numbers, allocated address blocks; the
//!   substitute for the proprietary IP2Location data. Includes a
//!   `perturb`ed variant so the paper's "98% country-level accuracy" claim
//!   can be reproduced as experiment E6.
//! * [`cache`] — a fixed-capacity O(1) LRU, one per enrichment worker
//!   thread (lookups in live traffic are highly repetitive).

pub mod cache;
pub mod db;
pub mod synth;

pub use cache::LruCache;
pub use db::{GeoDb, Location};
pub use synth::SynthWorld;
